//! Cross-crate property-based tests: random database networks, checked
//! against the paper's invariants and the brute-force oracles.

use proptest::prelude::*;
use theme_communities::core::{
    maximal_pattern_truss, oracle, DatabaseNetwork, DatabaseNetworkBuilder, Miner, TcfaMiner,
    TcfiMiner, TcsMiner, ThemeNetwork, TrussDecomposition,
};
use theme_communities::index::TcTreeBuilder;
use theme_communities::txdb::{Item, Pattern};

/// Strategy: a random small database network.
///
/// - up to `n` vertices and `n·2` candidate edges;
/// - up to 4 items; each vertex gets 1-5 transactions of 1-3 items.
fn arb_network(n: u32) -> impl Strategy<Value = DatabaseNetwork> {
    let edges = prop::collection::vec((0..n, 0..n), 1..(n as usize * 2));
    let dbs = prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0u32..4, 1..4), 1..6),
        1..=(n as usize),
    );
    (edges, dbs).prop_map(move |(edges, dbs)| {
        let mut b = DatabaseNetworkBuilder::new();
        for i in 0..4 {
            b.intern_item(&format!("it{i}"));
        }
        for (v, transactions) in dbs.into_iter().enumerate() {
            for t in transactions {
                let items: Vec<Item> = t.into_iter().map(Item).collect();
                b.add_transaction(v as u32, &items);
            }
        }
        for (u, v) in edges {
            if u != v {
                b.add_edge(u, v);
            }
        }
        b.ensure_vertex(n - 1);
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The three exact miners agree with each other and the brute-force
    /// oracle, at several thresholds.
    #[test]
    fn miners_equal_oracle(net in arb_network(8), alpha in 0.0f64..1.5) {
        let tcfi = TcfiMiner::default().mine(&net, alpha);
        let tcfa = TcfaMiner::default().mine(&net, alpha);
        let tcs = TcsMiner::with_epsilon(0.0).mine(&net, alpha);
        prop_assert!(tcfi.same_trusses(&tcfa));
        prop_assert!(tcfi.same_trusses(&tcs));

        let truth = oracle::exhaustive_mine(&net, alpha, usize::MAX);
        prop_assert_eq!(tcfi.np(), truth.len());
        for (p, edges) in &truth {
            let t = tcfi.truss_of(p);
            prop_assert!(t.is_some(), "missing {}", p);
            prop_assert_eq!(&t.unwrap().edges, edges);
        }
    }

    /// MPTD output equals the definitional fixpoint for every single-item
    /// theme network.
    #[test]
    fn mptd_equals_fixpoint(net in arb_network(8), alpha in 0.0f64..2.0) {
        for item in net.items_in_use() {
            let p = Pattern::singleton(item);
            let theme = ThemeNetwork::induce(&net, &p);
            let fast = maximal_pattern_truss(&theme, alpha);
            let brute = oracle::brute_force_truss(&net, &p, alpha);
            prop_assert_eq!(fast.edges, brute);
        }
    }

    /// Theorem 5.1 on random data: sub-pattern trusses contain
    /// super-pattern trusses.
    #[test]
    fn graph_anti_monotonicity(net in arb_network(8), alpha in 0.0f64..1.0) {
        let items = net.items_in_use();
        for &a in items.iter().take(3) {
            for &b in items.iter().take(3) {
                if a >= b { continue; }
                let pa = Pattern::singleton(a);
                let pab = Pattern::new(vec![a, b]);
                let ca = maximal_pattern_truss(&ThemeNetwork::induce(&net, &pa), alpha);
                let cab = maximal_pattern_truss(&ThemeNetwork::induce(&net, &pab), alpha);
                prop_assert!(cab.is_subgraph_of(&ca));
            }
        }
    }

    /// Decomposition reconstruction (Equation 1) matches direct MPTD at
    /// random thresholds, including level boundaries.
    #[test]
    fn decomposition_reconstructs(net in arb_network(8), probe in 0.0f64..2.0) {
        for item in net.items_in_use().into_iter().take(3) {
            let p = Pattern::singleton(item);
            let theme = ThemeNetwork::induce(&net, &p);
            let d = TrussDecomposition::decompose(&theme);
            // Random probe plus every level boundary.
            let mut alphas = vec![probe, 0.0];
            alphas.extend(d.levels.iter().map(|l| l.alpha));
            for alpha in alphas {
                let direct = maximal_pattern_truss(&theme, alpha);
                prop_assert_eq!(d.edges_at(alpha), direct.edges, "alpha={}", alpha);
            }
            // Levels strictly ascend and are disjoint.
            for w in d.levels.windows(2) {
                prop_assert!(w[0].alpha < w[1].alpha);
            }
            let total: usize = d.levels.iter().map(|l| l.edges.len()).sum();
            let mut all: Vec<_> = d.levels.iter().flat_map(|l| l.edges.iter()).collect();
            all.sort();
            all.dedup();
            prop_assert_eq!(all.len(), total, "levels overlap");
        }
    }

    /// The TC-Tree indexes exactly the qualified patterns and answers QBA
    /// queries identically to fresh mining.
    #[test]
    fn tree_equals_mining(net in arb_network(7), alpha in 0.0f64..1.0) {
        let tree = TcTreeBuilder { threads: 1, max_len: usize::MAX }.build(&net);
        let mined0 = TcfiMiner::default().mine(&net, 0.0);
        prop_assert_eq!(tree.num_nodes(), mined0.np(), "tree nodes = qualified patterns at 0");

        let mined = TcfiMiner::default().mine(&net, alpha);
        let answered = tree.query_by_alpha(alpha);
        prop_assert_eq!(answered.retrieved_nodes, mined.np());
    }

    /// TCS with positive ε returns a subset of the exact answer, and each
    /// returned truss is bit-exact.
    #[test]
    fn tcs_prefilter_is_sound(net in arb_network(8), eps in 0.05f64..0.6, alpha in 0.0f64..0.8) {
        let exact = TcfiMiner::default().mine(&net, alpha);
        let lossy = TcsMiner::with_epsilon(eps).mine(&net, alpha);
        prop_assert!(lossy.np() <= exact.np());
        for t in &lossy.trusses {
            let reference = exact.truss_of(&t.pattern);
            prop_assert!(reference.is_some(), "TCS invented {}", t.pattern);
            prop_assert_eq!(&reference.unwrap().edges, &t.edges);
        }
    }

    /// Every reported truss satisfies the pattern-truss definition: all
    /// edge cohesions strictly exceed α within the truss.
    #[test]
    fn trusses_satisfy_definition(net in arb_network(8), alpha in 0.0f64..1.0) {
        let result = TcfiMiner::default().mine(&net, alpha);
        for truss in &result.trusses {
            let cohesions = oracle::cohesions_of_edge_set(&net, &truss.pattern, &truss.edges);
            for (&e, &eco) in &cohesions {
                prop_assert!(
                    eco > alpha - 1e-9,
                    "edge {:?} cohesion {} ≤ α {} in truss {}",
                    e, eco, alpha, truss.pattern
                );
            }
        }
    }

    /// Communities partition each truss: vertex and edge counts add up,
    /// and every community is connected.
    #[test]
    fn communities_partition_trusses(net in arb_network(8)) {
        let result = TcfiMiner::default().mine(&net, 0.0);
        for truss in &result.trusses {
            let communities = theme_communities::core::extract_communities(truss);
            let nv: usize = communities.iter().map(|c| c.num_vertices()).sum();
            let ne: usize = communities.iter().map(|c| c.num_edges()).sum();
            prop_assert_eq!(nv, truss.num_vertices());
            prop_assert_eq!(ne, truss.num_edges());
            for c in &communities {
                // Connectivity: union-find over the community's own edges.
                let verts = &c.vertices;
                let mut uf = theme_communities::graph::UnionFind::new(verts.len());
                for &(u, v) in &c.edges {
                    let iu = verts.binary_search(&u).unwrap() as u32;
                    let iv = verts.binary_search(&v).unwrap() as u32;
                    uf.union(iu, iv);
                }
                prop_assert_eq!(uf.num_sets(), 1, "community not connected");
            }
        }
    }
}
