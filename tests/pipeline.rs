//! End-to-end pipeline tests: generate → mine → decompose → index → query
//! → persist → reload, across all three generators.

use theme_communities::core::{Miner, TcfaMiner, TcfiMiner, TcsMiner};
use theme_communities::data::{
    generate_checkin, generate_coauthor, generate_planted, generate_synthetic, CheckinConfig,
    CoauthorConfig, PlantedConfig, SynConfig,
};
use theme_communities::index::{TcTree, TcTreeBuilder};

fn small_checkin() -> theme_communities::core::DatabaseNetwork {
    generate_checkin(&CheckinConfig {
        users: 50,
        groups: 5,
        group_size: 7,
        locations: 40,
        locations_per_group: 3,
        periods: 15,
        ..CheckinConfig::default()
    })
    .network
}

#[test]
fn three_miners_agree_on_checkin_data() {
    let net = small_checkin();
    for alpha in [0.0, 0.4, 1.0] {
        let tcfi = TcfiMiner::default().mine(&net, alpha);
        let tcfa = TcfaMiner::default().mine(&net, alpha);
        let tcs_exact = TcsMiner::with_epsilon(0.0).mine(&net, alpha);
        assert!(tcfi.same_trusses(&tcfa), "TCFI ≠ TCFA at α = {alpha}");
        assert!(
            tcfi.same_trusses(&tcs_exact),
            "TCFI ≠ TCS(0) at α = {alpha}"
        );
    }
}

#[test]
fn tcs_with_epsilon_is_subset_of_exact() {
    let net = small_checkin();
    let exact = TcfiMiner::default().mine(&net, 0.2);
    for eps in [0.1, 0.2, 0.3] {
        let lossy = TcsMiner::with_epsilon(eps).mine(&net, 0.2);
        assert!(lossy.np() <= exact.np(), "ε = {eps}");
        // Every truss TCS finds must match the exact one bit for bit.
        for truss in &lossy.trusses {
            let reference = exact
                .truss_of(&truss.pattern)
                .unwrap_or_else(|| panic!("TCS found extra pattern {}", truss.pattern));
            assert_eq!(truss.edges, reference.edges);
        }
    }
}

#[test]
fn tree_query_equals_mining_on_all_generators() {
    let nets = [
        small_checkin(),
        generate_coauthor(&CoauthorConfig {
            groups: 4,
            authors_per_group: 8,
            interdisciplinary_authors: 2,
            papers_per_author: 12,
            ..CoauthorConfig::default()
        })
        .network,
        generate_synthetic(&SynConfig {
            vertices: 250,
            edges_per_vertex: 3,
            seeds: 6,
            items: 60,
            max_transactions: 16,
            max_transaction_len: 8,
            ..SynConfig::default()
        }),
    ];
    for (i, net) in nets.iter().enumerate() {
        let tree = TcTreeBuilder::default().build(net);
        for alpha in [0.0, 0.5, 1.5] {
            let mined = TcfiMiner::default().mine(net, alpha);
            let answered = tree.query_by_alpha(alpha);
            assert_eq!(
                answered.retrieved_nodes,
                mined.np(),
                "generator #{i}, α = {alpha}"
            );
            let mut got: Vec<_> = answered
                .trusses
                .iter()
                .map(|t| (t.pattern.clone(), t.edges.clone()))
                .collect();
            got.sort();
            let mut want: Vec<_> = mined
                .trusses
                .iter()
                .map(|t| (t.pattern.clone(), t.edges.clone()))
                .collect();
            want.sort();
            assert_eq!(got, want, "generator #{i}, α = {alpha}");
        }
    }
}

#[test]
fn network_and_tree_persistence_roundtrip() {
    let net = small_checkin();
    let dir = std::env::temp_dir().join("tc_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();

    // Network roundtrip.
    let net_path = dir.join("pipeline.dbnet");
    theme_communities::data::save_network_to_path(&net, &net_path).unwrap();
    let net2 = theme_communities::data::load_network_from_path(&net_path).unwrap();
    assert_eq!(net.stats(), net2.stats());

    // Tree roundtrip on the reloaded network.
    let tree = TcTreeBuilder::default().build(&net2);
    let tree_path = dir.join("pipeline.tct");
    tree.save_to_path(&tree_path).unwrap();
    let tree2 = TcTree::load_from_path(&tree_path).unwrap();
    assert_eq!(tree.num_nodes(), tree2.num_nodes());
    for alpha in [0.0, 0.5, 1.0] {
        assert_eq!(
            tree.query_by_alpha(alpha).retrieved_nodes,
            tree2.query_by_alpha(alpha).retrieved_nodes
        );
    }
    // Mining the original and querying the reloaded tree agree.
    let mined = TcfiMiner::default().mine(&net, 0.5);
    assert_eq!(tree2.query_by_alpha(0.5).retrieved_nodes, mined.np());

    std::fs::remove_file(&net_path).ok();
    std::fs::remove_file(&tree_path).ok();
}

#[test]
fn planted_communities_recovered_end_to_end() {
    let planted = generate_planted(&PlantedConfig {
        communities: 3,
        community_size: 7,
        overlap: 2,
        freq: 0.85,
        ..PlantedConfig::default()
    });
    // Mine.
    let result = TcfiMiner::default().mine(&planted.network, 1.0);
    for truth in &planted.truth {
        let truss = result
            .truss_of(&truth.pattern)
            .unwrap_or_else(|| panic!("planted {} missing", truth.pattern));
        assert_eq!(truss.vertices, truth.vertices, "exact recovery expected");
    }
    // Index and query the same communities.
    let tree = TcTreeBuilder::default().build(&planted.network);
    for truth in &planted.truth {
        let answer = tree.query(&truth.pattern, 1.0);
        assert!(
            answer
                .trusses
                .iter()
                .any(|t| t.pattern == truth.pattern && t.vertices == truth.vertices),
            "tree query missed planted community {}",
            truth.pattern
        );
    }
}

#[test]
fn sampled_subnetwork_mining_consistent() {
    // Mining a BFS sample equals mining the sample-induced subnetwork
    // (the Figure 4 methodology is self-consistent).
    let net = small_checkin();
    let edges = theme_communities::graph::bfs_edge_sample(net.graph(), 0, 60);
    assert!(!edges.is_empty());
    let sub = net.induced_subnetwork(&edges);
    assert_eq!(sub.num_edges(), edges.len());
    let r = TcfiMiner::default().mine(&sub, 0.3);
    // Every truss's vertices exist in the subnetwork.
    for t in &r.trusses {
        for &v in &t.vertices {
            assert!((v as usize) < sub.num_vertices());
        }
    }
    // And the subnetwork preserves frequencies of its vertices.
    let mapped_back = theme_communities::graph::ktruss::edge_set_vertices(&edges);
    for (new_id, &old_id) in mapped_back.iter().enumerate() {
        for item in sub.items_in_use().into_iter().take(5) {
            let p = theme_communities::txdb::Pattern::singleton(item);
            assert!((sub.frequency(new_id as u32, &p) - net.frequency(old_id, &p)).abs() < 1e-12);
        }
    }
}
