//! Property tests for the §8 edge-database-network extension, validated
//! against a definitional fixpoint oracle written independently here.

use proptest::prelude::*;
use theme_communities::core::{EdgeDatabaseNetwork, EdgeDatabaseNetworkBuilder, EdgeTcfiMiner};
use theme_communities::graph::EdgeKey;
use theme_communities::txdb::{Item, Pattern};

/// Brute-force oracle: fixpoint removal of edges with cohesion ≤ α, where
/// cohesion sums `min(f_ij, f_ik, f_jk)` over triangles fully inside the
/// surviving themed edge set. Recomputed from scratch every round.
fn oracle_truss(net: &EdgeDatabaseNetwork, pattern: &Pattern, alpha: f64) -> Vec<EdgeKey> {
    let mut current: Vec<EdgeKey> = net
        .edges()
        .iter()
        .copied()
        .filter(|&(u, v)| net.frequency(u, v, pattern) > 0.0)
        .collect();
    loop {
        let set: std::collections::HashSet<EdgeKey> = current.iter().copied().collect();
        let freq = |u: u32, v: u32| net.frequency(u, v, pattern);
        let survivors: Vec<EdgeKey> = current
            .iter()
            .copied()
            .filter(|&(u, v)| {
                // Enumerate triangles through (u, v) within `set`.
                let mut eco = 0.0;
                let verts: std::collections::HashSet<u32> =
                    set.iter().flat_map(|&(a, b)| [a, b]).collect();
                for &w in &verts {
                    if w == u || w == v {
                        continue;
                    }
                    let e1 = theme_communities::graph::edge_key(u, w);
                    let e2 = theme_communities::graph::edge_key(v, w);
                    if set.contains(&e1) && set.contains(&e2) {
                        eco += freq(u, v).min(freq(e1.0, e1.1)).min(freq(e2.0, e2.1));
                    }
                }
                eco > alpha + 1e-9
            })
            .collect();
        if survivors.len() == current.len() {
            return survivors;
        }
        current = survivors;
    }
}

/// Strategy: a random small edge database network over 6 vertices and 3
/// items; each candidate edge gets 1-4 transactions of 1-2 items.
fn arb_edge_network() -> impl Strategy<Value = EdgeDatabaseNetwork> {
    prop::collection::vec(
        (
            (0u32..6, 0u32..6),
            prop::collection::vec(prop::collection::vec(0u32..3, 1..3), 1..5),
        ),
        1..14,
    )
    .prop_map(|edges| {
        let mut b = EdgeDatabaseNetworkBuilder::new();
        for i in 0..3 {
            b.intern_item(&format!("e{i}"));
        }
        for ((u, v), transactions) in edges {
            if u == v {
                continue;
            }
            for t in transactions {
                let items: Vec<Item> = t.into_iter().map(Item).collect();
                b.add_transaction(u, v, &items);
            }
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn edge_truss_matches_oracle(net in arb_edge_network(), alpha in 0.0f64..1.2) {
        for item in net.items_in_use() {
            let p = Pattern::singleton(item);
            let fast = net.maximal_edge_pattern_truss(&p, alpha, None);
            let mut brute = oracle_truss(&net, &p, alpha);
            brute.sort_unstable();
            prop_assert_eq!(fast.edges, brute, "item {} alpha {}", item, alpha);
        }
    }

    #[test]
    fn edge_miner_matches_oracle_per_pattern(net in arb_edge_network(), alpha in 0.0f64..0.8) {
        let result = EdgeTcfiMiner::default().mine(&net, alpha);
        // Every reported truss equals the oracle.
        for truss in &result.trusses {
            let mut brute = oracle_truss(&net, &truss.pattern, alpha);
            brute.sort_unstable();
            prop_assert_eq!(&truss.edges, &brute, "pattern {}", &truss.pattern);
        }
        // Completeness over all 2^3 - 1 patterns.
        for mask in 1u32..8 {
            let p: Pattern = (0..3u32)
                .filter(|i| mask & (1 << i) != 0)
                .map(Item)
                .collect();
            let brute = oracle_truss(&net, &p, alpha);
            let reported = result.truss_of(&p);
            prop_assert_eq!(
                reported.map(|t| t.num_edges()).unwrap_or(0),
                brute.len(),
                "pattern {} alpha {}", &p, alpha
            );
        }
    }

    #[test]
    fn edge_graph_anti_monotonicity(net in arb_edge_network(), alpha in 0.0f64..0.8) {
        let items = net.items_in_use();
        for &a in &items {
            for &b in &items {
                if a >= b { continue; }
                let ca = net.maximal_edge_pattern_truss(&Pattern::singleton(a), alpha, None);
                let cab = net.maximal_edge_pattern_truss(&Pattern::new(vec![a, b]), alpha, None);
                prop_assert!(cab.is_subgraph_of(&ca), "Theorem 5.1 lift");
            }
        }
    }

    #[test]
    fn edge_alpha_monotonicity(net in arb_edge_network()) {
        for item in net.items_in_use() {
            let p = Pattern::singleton(item);
            let mut prev = usize::MAX;
            for alpha in [0.0, 0.2, 0.5, 1.0] {
                let t = net.maximal_edge_pattern_truss(&p, alpha, None);
                prop_assert!(t.num_edges() <= prev, "truss must shrink with alpha");
                prev = t.num_edges();
            }
        }
    }
}
