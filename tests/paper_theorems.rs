//! Executable versions of the paper's formal results.
//!
//! Each test reconstructs a theorem's statement on concrete instances:
//! Theorem 3.8 (the #P-hardness reduction, run literally), Theorem 5.1
//! (graph anti-monotonicity), Proposition 5.2 (pattern anti-monotonicity),
//! Proposition 5.3 (graph intersection), Theorem 6.1 (decomposition
//! shrinkage) and Equation 1 (reconstruction).

use theme_communities::core::{
    maximal_pattern_truss, DatabaseNetwork, DatabaseNetworkBuilder, Miner, TcfiMiner, ThemeNetwork,
    TrussDecomposition,
};
use theme_communities::txdb::{count_frequent_patterns, Item, Pattern, TransactionDb};

/// A moderately rich fixture: 10 vertices, three overlapping item groups.
fn fixture() -> DatabaseNetwork {
    let mut b = DatabaseNetworkBuilder::new();
    let x = b.intern_item("x");
    let y = b.intern_item("y");
    let z = b.intern_item("z");
    // Cluster A (0-3): {x,y} freq 0.75, {x} 1.0.
    for v in 0..4u32 {
        for _ in 0..3 {
            b.add_transaction(v, &[x, y]);
        }
        b.add_transaction(v, &[x]);
    }
    // Cluster B (3-6): {y,z}; vertex 3 is shared.
    for v in 3..7u32 {
        for _ in 0..3 {
            b.add_transaction(v, &[y, z]);
        }
        b.add_transaction(v, &[z]);
    }
    // Cluster C (7-9): {x,z}.
    for v in 7..10u32 {
        for _ in 0..4 {
            b.add_transaction(v, &[x, z]);
        }
    }
    for (u, v) in [
        (0, 1),
        (1, 2),
        (0, 2),
        (2, 3),
        (1, 3),
        (0, 3), // K4-ish on A
        (3, 4),
        (4, 5),
        (3, 5),
        (5, 6),
        (4, 6),
        (3, 6), // cluster B
        (7, 8),
        (8, 9),
        (7, 9), // triangle C
        (6, 7), // bridge
    ] {
        b.add_edge(u, v);
    }
    b.build().unwrap()
}

// ---------------------------------------------------------------- Thm 3.8

/// Theorem 3.8's reduction, executed: build the 3-vertex triangle network
/// where every vertex carries a copy of `d`; the number of theme
/// communities equals the number of frequent patterns of `d`.
#[test]
fn theorem_3_8_reduction_from_fpc() {
    let transactions: Vec<Vec<Item>> = vec![
        vec![Item(0), Item(1)],
        vec![Item(1), Item(2)],
        vec![Item(0), Item(1), Item(2)],
        vec![Item(0)],
    ];
    let d = TransactionDb::from_transactions(transactions.iter().cloned());

    for alpha in [0.0, 0.2, 0.25, 0.5, 0.6, 0.75] {
        // FPC oracle side.
        let fpc = count_frequent_patterns(&d, alpha);

        // Reduction side: triangle network, every vertex holds a copy of d.
        let mut b = DatabaseNetworkBuilder::new();
        for i in 0..3u32 {
            b.intern_item(&format!("s{i}"));
        }
        for v in 0..3u32 {
            for t in &transactions {
                b.add_transaction(v, t);
            }
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        let net = b.build().unwrap();

        // All theme communities at threshold alpha.
        let result = TcfiMiner::default().mine(&net, alpha);
        let communities = result.communities();

        assert_eq!(
            communities.len() as u64,
            fpc,
            "reduction mismatch at alpha = {alpha}: {} communities vs {} frequent patterns",
            communities.len(),
            fpc
        );
        // And each community is the full triangle (f1 = f2 = f3 = f(p)).
        for c in &communities {
            assert_eq!(c.vertices, vec![0, 1, 2]);
        }
    }
}

// ---------------------------------------------------------------- Thm 5.1

#[test]
fn theorem_5_1_graph_anti_monotonicity() {
    let net = fixture();
    let space = net.item_space();
    let x = space.get("x").unwrap();
    let y = space.get("y").unwrap();
    let z = space.get("z").unwrap();
    let patterns = [
        (Pattern::singleton(x), Pattern::new(vec![x, y])),
        (Pattern::singleton(y), Pattern::new(vec![x, y])),
        (Pattern::singleton(z), Pattern::new(vec![y, z])),
        (Pattern::new(vec![x, y]), Pattern::new(vec![x, y, z])),
    ];
    for alpha in [0.0, 0.3, 0.75, 1.5] {
        for (p1, p2) in &patterns {
            assert!(p1.is_subset_of(p2));
            let c1 = maximal_pattern_truss(&ThemeNetwork::induce(&net, p1), alpha);
            let c2 = maximal_pattern_truss(&ThemeNetwork::induce(&net, p2), alpha);
            assert!(
                c2.is_subgraph_of(&c1),
                "C*_{{{p2}}}({alpha}) ⊄ C*_{{{p1}}}({alpha})"
            );
        }
    }
}

// --------------------------------------------------------------- Prop 5.2

#[test]
fn proposition_5_2_pattern_anti_monotonicity() {
    let net = fixture();
    let result = TcfiMiner::default().mine(&net, 0.5);
    // (1) qualified pattern ⇒ every nonempty sub-pattern qualified.
    for truss in &result.trusses {
        for sub in truss.pattern.k_minus_one_subsets() {
            if sub.is_empty() {
                continue;
            }
            assert!(
                result.truss_of(&sub).is_some(),
                "{} qualified but sub-pattern {} is not",
                truss.pattern,
                sub
            );
        }
    }
    // (2) unqualified pattern ⇒ every super-pattern unqualified.
    let space = net.item_space();
    let items: Vec<Item> = space.items().collect();
    for &a in &items {
        let pa = Pattern::singleton(a);
        if result.truss_of(&pa).is_none() {
            for &b2 in &items {
                let sup = pa.with_item(b2);
                assert!(
                    result.truss_of(&sup).is_none(),
                    "{pa} unqualified but {sup} qualified"
                );
            }
        }
    }
}

// --------------------------------------------------------------- Prop 5.3

#[test]
fn proposition_5_3_graph_intersection() {
    let net = fixture();
    let space = net.item_space();
    let x = space.get("x").unwrap();
    let y = space.get("y").unwrap();
    let z = space.get("z").unwrap();
    for alpha in [0.0, 0.3, 0.75] {
        let cx = maximal_pattern_truss(&ThemeNetwork::induce(&net, &Pattern::singleton(x)), alpha);
        let cy = maximal_pattern_truss(&ThemeNetwork::induce(&net, &Pattern::singleton(y)), alpha);
        let cxy = maximal_pattern_truss(
            &ThemeNetwork::induce(&net, &Pattern::new(vec![x, y])),
            alpha,
        );
        let inter = cx.intersect_edges(&cy);
        for e in &cxy.edges {
            assert!(inter.contains(e), "edge {e:?} of C*_xy outside Cx ∩ Cy");
        }
        // Also the three-way case via {x,z}.
        let cz = maximal_pattern_truss(&ThemeNetwork::induce(&net, &Pattern::singleton(z)), alpha);
        let cxz = maximal_pattern_truss(
            &ThemeNetwork::induce(&net, &Pattern::new(vec![x, z])),
            alpha,
        );
        let inter_xz = cx.intersect_edges(&cz);
        for e in &cxz.edges {
            assert!(inter_xz.contains(e));
        }
    }
}

// ---------------------------------------------------------------- Thm 6.1

#[test]
fn theorem_6_1_shrinkage_at_min_cohesion() {
    let net = fixture();
    let space = net.item_space();
    for name in ["x", "y", "z"] {
        let p = Pattern::singleton(space.get(name).unwrap());
        let theme = ThemeNetwork::induce(&net, &p);
        let d = TrussDecomposition::decompose(&theme);
        if d.is_empty() {
            continue;
        }
        // For consecutive levels: C*(α_k) ⊂ C*(α_{k-1}) strictly.
        let mut prev = d.truss_at(0.0);
        for level in &d.levels {
            let cur = d.truss_at(level.alpha);
            assert!(cur.num_edges() < prev.num_edges(), "strict shrink");
            assert!(cur.is_subgraph_of(&prev));
            prev = cur;
        }
        // Below the first level's β, the truss must NOT shrink (Theorem 6.1
        // says shrinkage happens only at α ≥ β).
        let beta = d.levels[0].alpha;
        let just_below = d.truss_at(beta - 1e-6);
        assert_eq!(just_below.num_edges(), d.truss_at(0.0).num_edges());
    }
}

// ------------------------------------------------------------- Equation 1

#[test]
fn equation_1_reconstruction_equals_direct_mptd() {
    let net = fixture();
    let space = net.item_space();
    for name in ["x", "y", "z"] {
        let p = Pattern::singleton(space.get(name).unwrap());
        let theme = ThemeNetwork::induce(&net, &p);
        let d = TrussDecomposition::decompose(&theme);
        for alpha in [0.0, 0.1, 0.4, 0.75, 1.0, 1.9, 3.0] {
            let reconstructed = d.edges_at(alpha);
            let direct = maximal_pattern_truss(&theme, alpha);
            assert_eq!(reconstructed, direct.edges, "{name} at alpha = {alpha}");
        }
    }
}

// ------------------------------------------------- §3.2 degeneration notes

#[test]
fn pattern_truss_degenerates_to_ktruss_and_kcore() {
    // All frequencies 1 and α = k - 3 ⇒ pattern truss = k-truss; connected
    // maximal pattern trusses are (k-1)-cores.
    let mut b = DatabaseNetworkBuilder::new();
    let p = b.intern_item("p");
    for v in 0..7u32 {
        b.add_transaction(v, &[p]);
    }
    // K5 plus a tail triangle.
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            b.add_edge(u, v);
        }
    }
    b.add_edge(4, 5).add_edge(5, 6).add_edge(4, 6);
    let net = b.build().unwrap();
    let pat = Pattern::singleton(p);
    let theme = ThemeNetwork::induce(&net, &pat);

    for k in 3..=5usize {
        let truss = maximal_pattern_truss(&theme, k as f64 - 3.0);
        let classic = theme_communities::graph::k_truss(net.graph(), k);
        assert_eq!(truss.edges, classic, "k = {k}");

        // Every vertex of the k-truss lies in the (k-1)-core.
        let cores = theme_communities::graph::core_numbers(net.graph());
        for &v in &truss.vertices {
            assert!(cores[v as usize] as usize >= k - 1);
        }
    }
}
