//! The paper's motivating scenario (§1): a social e-commerce network where
//! each vertex's database records purchase transactions, and theme
//! communities reveal social groups sharing dominant buying habits.
//!
//! ```sh
//! cargo run --release --example social_ecommerce
//! ```

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use theme_communities::core::{DatabaseNetworkBuilder, Miner, TcfiMiner};
use theme_communities::data::vocab::PRODUCTS;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2024);
    let mut builder = DatabaseNetworkBuilder::new();
    let products: Vec<_> = PRODUCTS.iter().map(|p| builder.intern_item(p)).collect();

    // Four shopper tribes with signature baskets.
    let tribes: Vec<(Vec<usize>, &str)> = vec![
        (vec![0, 1], "new parents (beer + diapers)"),
        (vec![3, 4, 14], "gym goers"),
        (vec![6, 7, 8], "tabletop nerds"),
        (vec![15, 16, 17], "campers"),
    ];
    let members_per_tribe = 10usize;
    let mut vertex = 0u32;
    let mut tribe_members: Vec<Vec<u32>> = Vec::new();
    for (basket, _) in &tribes {
        let members: Vec<u32> = (0..members_per_tribe)
            .map(|_| {
                let v = vertex;
                vertex += 1;
                v
            })
            .collect();
        for &m in &members {
            for _ in 0..20 {
                // Signature basket with probability 0.75, plus noise items.
                let mut basket_items: Vec<_> = if rng.gen_bool(0.75) {
                    basket.iter().map(|&i| products[i]).collect()
                } else {
                    Vec::new()
                };
                for _ in 0..rng.gen_range(0..3) {
                    basket_items.push(*products.choose(&mut rng).expect("nonempty"));
                }
                if basket_items.is_empty() {
                    basket_items.push(*products.choose(&mut rng).expect("nonempty"));
                }
                builder.add_transaction(m, &basket_items);
            }
        }
        // Friendships: dense inside the tribe.
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if rng.gen_bool(0.6) {
                    builder.add_edge(members[i], members[j]);
                }
            }
        }
        tribe_members.push(members);
    }
    // A few cross-tribe friendships.
    for _ in 0..12 {
        let u = rng.gen_range(0..vertex);
        let v = rng.gen_range(0..vertex);
        if u != v {
            builder.add_edge(u, v);
        }
    }

    let network = builder.build().expect("valid network");
    println!(
        "social e-commerce network: {} shoppers, {} friendships\n",
        network.num_vertices(),
        network.num_edges()
    );

    let result = TcfiMiner::default().mine(&network, 0.4);
    let mut communities = result.communities();
    communities.sort_by_key(|c| std::cmp::Reverse((c.pattern.len(), c.num_vertices())));

    println!("dominant buying-habit communities (α = 0.4):\n");
    for c in communities.iter().filter(|c| c.pattern.len() >= 2).take(8) {
        println!(
            "  {} — {} shoppers, {} friendships",
            network.item_space().render(&c.pattern),
            c.num_vertices(),
            c.num_edges()
        );
    }

    // Verify each planted tribe surfaced as a theme community.
    println!();
    for ((basket, label), members) in tribes.iter().zip(&tribe_members) {
        let pattern =
            theme_communities::txdb::Pattern::new(basket.iter().map(|&i| products[i]).collect());
        match result.truss_of(&pattern) {
            Some(truss) => {
                let recovered = truss
                    .vertices
                    .iter()
                    .filter(|v| members.contains(v))
                    .count();
                println!(
                    "tribe '{label}': recovered {recovered}/{} members",
                    members.len()
                );
            }
            None => println!("tribe '{label}': theme not found (try lower α)"),
        }
    }
}
