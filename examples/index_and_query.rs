//! Build a TC-Tree once, then answer many queries instantly — the §6
//! indexing and query-answering workflow.
//!
//! ```sh
//! cargo run --release --example index_and_query
//! ```

use theme_communities::data::{generate_checkin, CheckinConfig};
use theme_communities::index::TcTreeBuilder;
use theme_communities::txdb::Pattern;
use theme_communities::util::Stopwatch;

fn main() {
    let network = generate_checkin(&CheckinConfig {
        users: 200,
        groups: 18,
        group_size: 9,
        locations: 150,
        periods: 30,
        seed: 17,
        ..CheckinConfig::default()
    })
    .network;
    println!(
        "network: {} users, {} edges",
        network.num_vertices(),
        network.num_edges()
    );

    // Build the index once (parallel layer 1, like the paper's OpenMP).
    let sw = Stopwatch::start();
    let tree = TcTreeBuilder {
        threads: 4,
        max_len: usize::MAX,
    }
    .build(&network);
    println!(
        "TC-Tree: {} nodes, depth {}, α* = {:.3}, built in {:.2}s\n",
        tree.num_nodes(),
        tree.max_depth(),
        tree.alpha_upper_bound(),
        sw.elapsed_secs()
    );

    // Query by alpha (QBA): all themes at increasing cohesion demands.
    println!("query by alpha (q = S):");
    let mut alpha = 0.0;
    while alpha < tree.alpha_upper_bound() {
        let r = tree.query_by_alpha(alpha);
        println!(
            "  α_q = {alpha:<4}: {:>6} trusses in {:>9.3} ms",
            r.retrieved_nodes,
            r.elapsed_secs * 1e3
        );
        alpha += 0.5;
    }

    // Query by pattern (QBP): drill into one location's themes.
    let busiest = network
        .items_in_use()
        .into_iter()
        .max_by_key(|&i| network.vertices_with_item(i).len())
        .expect("network has items");
    // Take a real tree pattern containing that item if one exists.
    let q: Pattern = tree
        .nodes()
        .iter()
        .filter(|n| n.pattern.len() == 2 && n.pattern.contains(busiest))
        .map(|n| n.pattern.clone())
        .next()
        .unwrap_or_else(|| Pattern::singleton(busiest));
    println!(
        "\nquery by pattern q = {}:",
        network.item_space().render(&q)
    );
    let r = tree.query_by_pattern(&q);
    for t in &r.trusses {
        println!(
            "  {} — {} vertices, {} edges",
            network.item_space().render(&t.pattern),
            t.num_vertices(),
            t.num_edges()
        );
    }

    // Fresh mining for the same α answers in seconds; the tree answers in
    // microseconds. Show the contrast.
    use theme_communities::core::{Miner, TcfiMiner};
    let sw = Stopwatch::start();
    let mined = TcfiMiner::default().mine(&network, 1.0);
    let mine_secs = sw.elapsed_secs();
    let sw = Stopwatch::start();
    let answered = tree.query_by_alpha(1.0);
    let query_secs = sw.elapsed_secs();
    assert_eq!(mined.np(), answered.retrieved_nodes);
    println!(
        "\nα = 1.0: fresh mining {:.1} ms vs tree query {:.3} ms ({}x faster), same {} trusses",
        mine_secs * 1e3,
        query_secs * 1e3,
        (mine_secs / query_secs.max(1e-9)) as u64,
        mined.np()
    );
}
