//! Quickstart: build a tiny database network by hand, mine its theme
//! communities, and print them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use theme_communities::core::{DatabaseNetworkBuilder, Miner, TcfiMiner};

fn main() {
    // A database network is a graph whose vertices carry transaction
    // databases. Here: six users; three of them frequently buy
    // {beer, diapers} together, three frequently buy {tea, biscuits}.
    let mut builder = DatabaseNetworkBuilder::new();
    let beer = builder.intern_item("beer");
    let diapers = builder.intern_item("diapers");
    let tea = builder.intern_item("tea");
    let biscuits = builder.intern_item("biscuits");
    let chips = builder.intern_item("chips");

    for v in 0..3u32 {
        for _ in 0..8 {
            builder.add_transaction(v, &[beer, diapers]);
        }
        builder.add_transaction(v, &[chips]); // occasional noise
    }
    for v in 3..6u32 {
        for _ in 0..8 {
            builder.add_transaction(v, &[tea, biscuits]);
        }
        builder.add_transaction(v, &[chips]);
    }

    // Friendships: two triangles bridged by one edge.
    builder.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
    builder.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
    builder.add_edge(2, 3);

    let network = builder.build().expect("valid network");
    println!(
        "network: {} vertices, {} edges, {} unique items\n",
        network.num_vertices(),
        network.num_edges(),
        network.item_space().len()
    );

    // Mine all theme communities with minimum edge cohesion α = 0.5.
    let result = TcfiMiner::default().mine(&network, 0.5);
    println!(
        "TCFI found {} maximal pattern trusses ({} MPTD calls, {:.1} ms)\n",
        result.np(),
        result.stats.mptd_calls,
        result.stats.elapsed_secs * 1e3
    );

    for community in result.communities() {
        println!(
            "theme {} — members {:?}",
            network.item_space().render(&community.pattern),
            community.vertices
        );
    }

    // The headline themes are the co-purchase pairs.
    let beer_diapers = theme_communities::txdb::Pattern::new(vec![beer, diapers]);
    let truss = result.truss_of(&beer_diapers).expect("theme exists");
    assert_eq!(truss.vertices, vec![0, 1, 2]);
    println!("\n{{beer, diapers}} community is exactly {{0, 1, 2}} — as planted.");
}
