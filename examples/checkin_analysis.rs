//! Location-based social network analysis (the Brightkite / Gowalla
//! scenario of §7): find groups of friends who frequently visit the same
//! set of places.
//!
//! ```sh
//! cargo run --release --example checkin_analysis
//! ```

use theme_communities::core::{Miner, TcfiMiner};
use theme_communities::data::{generate_checkin, CheckinConfig};

fn main() {
    let out = generate_checkin(&CheckinConfig {
        users: 150,
        groups: 12,
        group_size: 9,
        locations: 120,
        locations_per_group: 4,
        periods: 30,
        visit_prob: 0.7,
        noise_rate: 1.0,
        friend_prob: 0.6,
        extra_edges: 80,
        seed: 7,
    });
    let network = &out.network;
    let stats = network.stats();
    println!(
        "check-in network: {} users, {} friendships, {} check-in periods\n",
        stats.vertices, stats.edges, stats.transactions
    );

    // Find theme communities: groups of friends co-visiting location sets.
    let result = TcfiMiner::default().mine(network, 0.5);
    let mut communities = result.communities();
    communities.sort_by_key(|c| std::cmp::Reverse((c.pattern.len(), c.num_vertices())));

    println!("habitual co-visitation communities (α = 0.5):\n");
    for c in communities
        .iter()
        .filter(|c| c.pattern.len() >= 2 && c.num_vertices() >= 4)
        .take(10)
    {
        println!(
            "  {} friends frequent {}",
            c.num_vertices(),
            network.item_space().render(&c.pattern)
        );
    }

    // How well do mined communities match the generator's ground truth?
    println!("\nrecovery against generator ground truth:");
    let mut recovered = 0;
    for (members, favourites) in &out.groups {
        // The strongest expected theme: the group's favourite location set.
        let pattern = theme_communities::txdb::Pattern::new(favourites.clone());
        // Any sub-pattern of length ≥ 2 qualifying counts as recovery.
        let hit = result.trusses.iter().any(|t| {
            t.pattern.len() >= 2
                && t.pattern.is_subset_of(&pattern)
                && members.iter().filter(|m| t.contains_vertex(**m)).count() >= members.len() / 2
        });
        if hit {
            recovered += 1;
        }
    }
    println!(
        "  {recovered}/{} friend groups surfaced as location-theme communities",
        out.groups.len()
    );

    // Demonstrate threshold sensitivity (the Figure 3 story in miniature).
    println!("\ncommunity count vs α:");
    for alpha in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let r = TcfiMiner::default().mine(network, alpha);
        println!(
            "  α = {alpha:<4}: NP = {:<5} NV = {:<6} NE = {:<6} ({:.0} ms)",
            r.np(),
            r.nv(),
            r.ne(),
            r.stats.elapsed_secs * 1e3
        );
    }
}
