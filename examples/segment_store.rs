//! The disk-backed segment store: index once, serve queries off the file
//! without parsing the whole tree back into memory.
//!
//! ```sh
//! cargo run --release --example segment_store
//! ```

use theme_communities::data::{generate_checkin, CheckinConfig};
use theme_communities::index::TcTreeBuilder;
use theme_communities::store::{self, SegmentTcTree};
use theme_communities::txdb::Pattern;
use theme_communities::util::Stopwatch;

fn main() {
    let network = generate_checkin(&CheckinConfig {
        users: 200,
        groups: 18,
        group_size: 9,
        locations: 150,
        periods: 30,
        seed: 17,
        ..CheckinConfig::default()
    })
    .network;
    let tree = TcTreeBuilder::default().build(&network);
    println!(
        "network: {} users · TC-Tree: {} nodes, α* = {:.3}",
        network.num_vertices(),
        tree.num_nodes(),
        tree.alpha_upper_bound()
    );

    let dir = std::env::temp_dir().join("tc_segment_store_example");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let net_path = dir.join("checkin.net.seg");
    let tree_path = dir.join("checkin.tree.seg");

    // Persist both values in the paged, checksummed segment format.
    store::save_network_segment_to_path(&network, &net_path).expect("save network");
    store::save_tree_segment_to_path(&tree, &tree_path).expect("save tree");
    let size = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {} ({} KiB) and {} ({} KiB)",
        net_path.display(),
        size(&net_path) / 1024,
        tree_path.display(),
        size(&tree_path) / 1024,
    );

    // Files self-describe via magic bytes — no extension conventions.
    println!(
        "sniffed formats: {:?} / {:?}",
        store::detect_format(&net_path).unwrap(),
        store::detect_format(&tree_path).unwrap(),
    );

    // Open lazily: only the header and node directory are read here.
    let sw = Stopwatch::start();
    let seg = SegmentTcTree::open(&tree_path).expect("open tree segment");
    println!(
        "\nopened in {:.2} ms — {} of {} nodes materialised",
        sw.elapsed_secs() * 1e3,
        seg.materialized_nodes(),
        seg.num_nodes()
    );

    // A narrow QBP query touches only the pages its pruned walk visits.
    let item = network.items_in_use()[0];
    let r = seg
        .query_by_pattern(&Pattern::singleton(item))
        .expect("QBP");
    println!(
        "QBP({}): {} trusses in {:.3} ms — {} of {} nodes materialised",
        network.item_space().render(&Pattern::singleton(item)),
        r.retrieved_nodes,
        r.elapsed_secs * 1e3,
        seg.materialized_nodes(),
        seg.num_nodes()
    );

    // QBA sweeps reuse everything already materialised.
    for alpha in [0.0, 0.5, 1.0] {
        let r = seg.query_by_alpha(alpha).expect("QBA");
        println!(
            "QBA(α={alpha}): {} trusses in {:.3} ms — {} of {} nodes materialised",
            r.retrieved_nodes,
            r.elapsed_secs * 1e3,
            seg.materialized_nodes(),
            seg.num_nodes()
        );
    }

    // The answers match the in-memory tree exactly.
    let in_mem = tree.query_by_alpha(0.5);
    let off_disk = seg.query_by_alpha(0.5).expect("QBA");
    assert_eq!(in_mem.retrieved_nodes, off_disk.retrieved_nodes);
    println!("\nsegment answers match the in-memory TC-Tree ✓");

    std::fs::remove_dir_all(&dir).ok();
}
