//! The §7.4 case study as a runnable example: discover collaborating
//! scholar groups sharing research interests, including overlapping
//! communities and the Theorem 5.1 shrinkage effect.
//!
//! ```sh
//! cargo run --release --example coauthor_casestudy
//! ```

use theme_communities::core::{Miner, TcfiMiner};
use theme_communities::data::{generate_coauthor, CoauthorConfig};

fn main() {
    let out = generate_coauthor(&CoauthorConfig {
        groups: 6,
        authors_per_group: 12,
        interdisciplinary_authors: 4,
        papers_per_author: 24,
        keywords_per_paper: 4,
        collab_prob: 0.5,
        cross_group_edges: 10,
        generic_keyword_prob: 0.3,
        seed: 99,
    });
    let network = &out.network;
    println!(
        "co-author network: {} authors, {} collaboration edges\n",
        network.num_vertices(),
        network.num_edges()
    );

    let result = TcfiMiner::default().mine(network, 0.05);
    let mut communities = result.communities();
    communities.sort_by_key(|c| std::cmp::Reverse((c.pattern.len(), c.num_vertices())));

    // Table 4 analog: keyword sets of the most thematic communities.
    println!("research-interest communities (Table 4 analog):\n");
    for (i, c) in communities
        .iter()
        .filter(|c| c.pattern.len() >= 3)
        .take(6)
        .enumerate()
    {
        println!("p{}: {}", i + 1, network.item_space().render(&c.pattern));
        let names: Vec<&str> = c
            .vertices
            .iter()
            .take(6)
            .map(|&v| out.author_names[v as usize].as_str())
            .collect();
        println!(
            "    {} authors incl. {}\n",
            c.num_vertices(),
            names.join(", ")
        );
    }

    // Figure 6(a)-(b) analog: narrowing a theme shrinks its community.
    println!("theme shrinkage (Theorem 5.1):");
    let mut pairs: Vec<_> = result
        .trusses
        .iter()
        .filter(|t| t.pattern.len() == 3)
        .filter_map(|t| {
            t.pattern.k_minus_one_subsets().find_map(|sub| {
                result
                    .truss_of(&sub)
                    .map(|parent| (t.clone(), parent.clone()))
            })
        })
        .collect();
    pairs.sort_by_key(|(t, p)| std::cmp::Reverse(p.num_vertices() - t.num_vertices()));
    for (child, parent) in pairs.iter().take(3) {
        println!(
            "  {} has {} authors; adding '{}' narrows it to {} authors",
            network.item_space().render(&parent.pattern),
            parent.num_vertices(),
            child
                .pattern
                .iter()
                .find(|i| !parent.pattern.contains(*i))
                .and_then(|i| network.item_space().name(i).map(str::to_string))
                .unwrap_or_default(),
            child.num_vertices()
        );
        assert!(child.is_subgraph_of(parent), "Theorem 5.1");
    }

    // Figure 6(e)-(f) analog: interdisciplinary authors sit in overlapping
    // communities with different themes.
    println!("\noverlapping communities around interdisciplinary authors:");
    let base = 6 * 12; // the generator appends bridge authors at the end
    for bridge in base..(base + 4) {
        let themes: Vec<String> = result
            .trusses
            .iter()
            .filter(|t| t.pattern.len() >= 2 && t.contains_vertex(bridge))
            .take(3)
            .map(|t| network.item_space().render(&t.pattern))
            .collect();
        if themes.len() >= 2 {
            println!(
                "  {} belongs to: {}",
                out.author_names[bridge as usize],
                themes.join("  AND  ")
            );
        }
    }
}
