//! Community search: "which theme communities does *this user* belong to?"
//!
//! The k-truss literature the paper builds on (§2.1) answers membership
//! queries for a given vertex; this example shows the theme-community lift,
//! both directly on the network and through the TC-Tree index (which prunes
//! whole subtrees by Theorem 5.1).
//!
//! ```sh
//! cargo run --release --example community_search
//! ```

use theme_communities::core::{community_of_vertex, theme_profile};
use theme_communities::data::{generate_checkin, CheckinConfig};
use theme_communities::index::TcTreeBuilder;
use theme_communities::util::Stopwatch;

fn main() {
    let out = generate_checkin(&CheckinConfig {
        users: 120,
        groups: 10,
        group_size: 9,
        locations: 100,
        periods: 30,
        seed: 4,
        ..CheckinConfig::default()
    });
    let network = &out.network;

    // Pick a user who belongs to at least two groups (an overlap vertex).
    let overlap_user = (0..network.num_vertices() as u32)
        .max_by_key(|&u| out.groups.iter().filter(|(m, _)| m.contains(&u)).count())
        .expect("nonempty network");
    let memberships = out
        .groups
        .iter()
        .filter(|(m, _)| m.contains(&overlap_user))
        .count();
    println!("user {overlap_user} belongs to {memberships} friend groups\n");

    // 1. Direct search: the user's single-location theme profile.
    let alpha = 0.5;
    let profile = theme_profile(network, overlap_user, alpha);
    println!(
        "theme profile at α = {alpha}: member of {} single-location communities",
        profile.len()
    );
    for (pattern, community) in profile.iter().take(5) {
        println!(
            "  {} with {} friends",
            network.item_space().render(pattern),
            community.num_vertices() - 1
        );
    }

    // 2. One specific theme, fetched directly.
    if let Some((pattern, _)) = profile.first() {
        let c = community_of_vertex(network, overlap_user, pattern, alpha)
            .expect("profile entry implies membership");
        println!(
            "\ncommunity of user {overlap_user} for {}: {:?}",
            network.item_space().render(pattern),
            c.vertices
        );
    }

    // 3. The same question through the index — all pattern lengths at once,
    //    with Theorem 5.1 subtree pruning.
    let tree = TcTreeBuilder::default().build(network);
    let sw = Stopwatch::start();
    let via_tree = tree.query_vertex(overlap_user, alpha);
    println!(
        "\nTC-Tree vertex query: {} communities across all themes in {:.3} ms",
        via_tree.len(),
        sw.elapsed_secs() * 1e3
    );
    let multi: Vec<_> = via_tree
        .iter()
        .filter(|(p, _)| p.len() >= 2)
        .take(4)
        .collect();
    for (pattern, community) in multi {
        println!(
            "  {} — {} members",
            network.item_space().render(pattern),
            community.num_vertices()
        );
    }

    // Sanity: the index agrees with the direct search on singletons.
    let singles = via_tree.iter().filter(|(p, _)| p.len() == 1).count();
    assert_eq!(singles, profile.len());
    println!("\nindex and direct search agree on {singles} singleton themes ✓");
}
