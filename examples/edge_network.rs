//! The paper's §8 future work, running: theme communities in an **edge
//! database network**, where each edge (relationship) carries its own
//! transaction database.
//!
//! Scenario: a messaging platform. Every edge is a conversation between two
//! users; each transaction is the topic set of one chat session. A theme
//! community is a cohesive group whose *pairwise conversations* share a
//! dominant topic pattern — stronger evidence than vertex-level interests.
//!
//! ```sh
//! cargo run --release --example edge_network
//! ```

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use theme_communities::core::{EdgeDatabaseNetworkBuilder, EdgeTcfiMiner};

fn main() {
    let mut rng = SmallRng::seed_from_u64(88);
    let mut b = EdgeDatabaseNetworkBuilder::new();
    let topics: Vec<_> = [
        "rust",
        "databases",
        "gaming",
        "cooking",
        "hiking",
        "music",
        "startups",
        "gardening",
    ]
    .iter()
    .map(|t| b.intern_item(t))
    .collect();

    // Three friend circles; conversations inside a circle revolve around
    // the circle's topic pair.
    let circles: &[(std::ops::Range<u32>, [usize; 2])] = &[
        (0..5, [0, 1]),  // rust + databases
        (4..9, [2, 5]),  // gaming + music (overlaps at user 4)
        (9..13, [3, 7]), // cooking + gardening
    ];
    for (members, topic_pair) in circles {
        let members: Vec<u32> = members.clone().collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                // 12 chat sessions per conversation.
                for _ in 0..12 {
                    let mut session: Vec<_> = if rng.gen_bool(0.7) {
                        topic_pair.iter().map(|&t| topics[t]).collect()
                    } else {
                        Vec::new()
                    };
                    session.push(*topics.choose(&mut rng).expect("nonempty"));
                    b.add_transaction(members[i], members[j], &session);
                }
            }
        }
    }
    // Sparse cross-circle small talk.
    for _ in 0..8 {
        let u = rng.gen_range(0..13u32);
        let v = rng.gen_range(0..13u32);
        if u != v {
            b.add_transaction(u, v, &[*topics.choose(&mut rng).expect("nonempty")]);
        }
    }

    let network = b.build().expect("valid edge network");
    println!(
        "edge database network: {} users, {} conversations\n",
        network.num_vertices(),
        network.num_edges()
    );

    let result = EdgeTcfiMiner::default().mine(&network, 0.5);
    println!(
        "found {} edge-pattern trusses at α = 0.5 ({} truss computations)\n",
        result.np(),
        result.stats.mptd_calls
    );

    let mut communities = result.communities();
    communities.sort_by_key(|c| std::cmp::Reverse((c.pattern.len(), c.num_vertices())));
    println!("conversation-theme communities:");
    for c in communities.iter().filter(|c| c.pattern.len() >= 2) {
        println!(
            "  {} — users {:?} ({} conversations)",
            network.item_space().render(&c.pattern),
            c.vertices,
            c.num_edges()
        );
    }

    // The overlap user (4) belongs to two circles; with edge databases the
    // two themes stay cleanly separated because *conversations*, not users,
    // carry the topics.
    let in_two = communities
        .iter()
        .filter(|c| c.pattern.len() >= 2 && c.vertices.contains(&4))
        .count();
    println!("\nuser 4 appears in {in_two} multi-topic conversation communities");
}
