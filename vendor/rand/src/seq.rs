//! Slice sampling helpers mirroring `rand::seq::SliceRandom`.

use crate::{below_u64, RngCore};

/// Random selection and shuffling on slices.
///
/// `choose_multiple` returns an iterator (as the real crate does) so call
/// sites can chain `.copied().collect()` unchanged. Sampling is without
/// replacement; if `amount >= len` every element is returned once, in
/// random order.
pub trait SliceRandom {
    /// The element type of the underlying slice.
    type Item;

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns `amount.min(len)` distinct elements in random order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Shuffles the slice in place (Fisher-Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[below_u64(rng, self.len() as u64) as usize])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher-Yates over an index table: O(len) space, O(amount)
        // swaps — the slices sampled here are small.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + below_u64(rng, (self.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(amount);
        idx.into_iter()
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = below_u64(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::SliceRandom;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn choose_is_uniformish_and_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let pool = [0u32, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[*pool.choose(&mut rng).unwrap() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "counts = {counts:?}");
    }

    #[test]
    fn choose_multiple_is_without_replacement() {
        let mut rng = SmallRng::seed_from_u64(9);
        let pool: Vec<u32> = (0..20).collect();
        for amount in [0, 1, 5, 20, 50] {
            let picked: Vec<u32> = pool.choose_multiple(&mut rng, amount).copied().collect();
            assert_eq!(picked.len(), amount.min(pool.len()));
            let distinct: std::collections::HashSet<_> = picked.iter().collect();
            assert_eq!(distinct.len(), picked.len(), "duplicates at {amount}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }
}
