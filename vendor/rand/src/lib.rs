//! Offline shim for the `rand` crate (0.8-era API subset).
//!
//! This build environment has no access to the crates registry, so the
//! workspace vendors a minimal stand-in covering exactly the surface the
//! code uses: [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and the [`seq::SliceRandom`] slice helpers
//! (`choose`, `choose_multiple`, `shuffle`). The generator is a
//! deterministic xoshiro256++ — statistically solid for data generation
//! and benchmarks, **not** cryptographic. Swap the
//! `[workspace.dependencies]` entry for the real crate once the registry
//! is reachable; no call sites change.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value from the type's "standard" distribution: the unit
    /// interval `[0, 1)` for floats, all values for integers and `bool`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen`] can sample from their standard distribution.
pub trait StandardSample {
    /// Draws one standard-distribution sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_sample_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that [`Rng::gen_range`] can sample a single value from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer below `n` via Lemire-style widening multiply with a
/// rejection step, so every value is exactly equally likely.
pub(crate) fn below_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = (rng.next_u64() as u128) * (n as u128);
    let mut low = m as u64;
    if low < n {
        let threshold = n.wrapping_neg() % n;
        while low < threshold {
            m = (rng.next_u64() as u128) * (n as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + below_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(below_u64(rng, span as u64) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(below_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

signed_sample_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against FP rounding landing exactly on the excluded end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..16).map(|_| r.gen_range(0..1000u32)).collect()
        };
        let b: Vec<u32> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..16).map(|_| r.gen_range(0..1000u32)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = SmallRng::seed_from_u64(43);
            (0..16).map(|_| r.gen_range(0..1000u32)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3..10u32);
            assert!((3..10).contains(&v));
            let w = r.gen_range(1..=3usize);
            assert!((1..=3).contains(&w));
            let f = r.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let s = r.gen_range(-5..5i32);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut r = SmallRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> u32 {
            rng.gen_range(0..10u32)
        }
        let mut r = SmallRng::seed_from_u64(1);
        let v = takes_impl(&mut r);
        assert!(v < 10);
    }
}
