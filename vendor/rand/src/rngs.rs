//! Concrete generators. Only [`SmallRng`] is provided — the one generator
//! the workspace uses.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator (xoshiro256++).
///
/// Mirrors `rand::rngs::SmallRng` in role: seedable, non-cryptographic,
/// meant for simulation and data generation.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

/// SplitMix64 — the recommended seed expander for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro256pp_reference_vector() {
        // Reference: seed state {1, 2, 3, 4} per the xoshiro256++ C source.
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SmallRng::seed_from_u64(0);
        let vals: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert!(distinct.len() > 4);
    }
}
