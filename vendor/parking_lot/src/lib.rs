//! Offline shim for the `parking_lot` crate.
//!
//! This build environment has no access to the crates registry, so the
//! workspace vendors a minimal API-compatible stand-in backed by
//! `std::sync`. Only the surface actually used by the workspace is
//! provided: [`Mutex::new`], [`Mutex::lock`] (guard, not `Result`),
//! [`Mutex::try_lock`] (`Option`, not `Result`) and [`Mutex::into_inner`].
//! Swap the `[workspace.dependencies]` entry for the real crate once the
//! registry is reachable; no call sites change.

use std::sync::PoisonError;

/// A mutual-exclusion primitive with `parking_lot`'s panic-proof API:
/// `lock()` returns the guard directly instead of a `Result`.
///
/// Poisoning is deliberately ignored — `parking_lot` mutexes do not
/// poison, so the shim unwraps `PoisonError` to preserve that contract.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`]; unlocks on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking; `None` if held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn try_lock_fails_only_when_held() {
        let m = Mutex::new(5);
        {
            let g = m.try_lock().expect("uncontended try_lock succeeds");
            assert_eq!(*g, 5);
            assert!(m.try_lock().is_none(), "held mutex refuses try_lock");
        }
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().extend([2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
