//! Offline shim for the `criterion` benchmark harness.
//!
//! This build environment has no access to the crates registry, so the
//! workspace vendors a minimal API-compatible stand-in covering the
//! surface the benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros (use them with `harness = false` bench targets, exactly like
//! the real crate).
//!
//! Measurement model: each benchmark is calibrated so one sample lasts
//! roughly `TARGET_SAMPLE` (10 ms), then `sample_size` samples are timed and
//! mean / median / standard deviation of the per-iteration time are
//! printed. There are no HTML reports, baselines, or regression tests.
//! Swap the `[workspace.dependencies]` entry for the real crate once the
//! registry is reachable; no bench changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock duration one calibrated sample should take.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Default number of samples per benchmark (the real crate uses 100;
/// this shim favours latency since it offers no statistical machinery
/// that would need the extra samples).
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `f` as the benchmark `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            f,
        );
        self
    }

    /// Runs `f` with `input` as the benchmark `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group. (The real crate finalises reports here; the shim
    /// prints per-benchmark, so this is a no-op kept for API parity.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id rendered as just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations to run per sample (set by calibration).
    iters_per_sample: u64,
    /// Collected per-sample durations.
    samples: Vec<Duration>,
    /// Number of samples to record.
    sample_count: usize,
    /// True during the calibration pass.
    calibrating: bool,
}

impl Bencher {
    /// Times `routine`, running it enough times for stable measurement.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.calibrating {
            // Double the iteration count until one batch crosses 1/10 of
            // the target, then scale up to the target.
            let mut iters: u64 = 1;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= TARGET_SAMPLE / 10 {
                    let per_iter = elapsed.as_secs_f64() / iters as f64;
                    let target = TARGET_SAMPLE.as_secs_f64();
                    self.iters_per_sample = ((target / per_iter).ceil() as u64).max(1);
                    return;
                }
                match iters.checked_mul(2) {
                    Some(next) => iters = next,
                    None => {
                        self.iters_per_sample = iters;
                        return;
                    }
                }
            }
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// Calibrates, samples, and prints one benchmark's statistics.
fn run_benchmark<F>(id: &str, sample_count: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_count,
        calibrating: true,
    };
    f(&mut bencher); // calibration pass
    bencher.calibrating = false;
    f(&mut bencher); // measurement pass

    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples: bencher.iter was never called)");
        return;
    }

    let iters = bencher.iters_per_sample as f64;
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let n = per_iter.len();
    let mean = per_iter.iter().sum::<f64>() / n as f64;
    let median = if n % 2 == 1 {
        per_iter[n / 2]
    } else {
        (per_iter[n / 2 - 1] + per_iter[n / 2]) / 2.0
    };
    let var = per_iter.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / n as f64;
    println!(
        "{:<40} time: [median {} mean {} ± {}]  ({} samples × {} iters)",
        id,
        fmt_time(median),
        fmt_time(mean),
        fmt_time(var.sqrt()),
        n,
        bencher.iters_per_sample,
    );
}

/// Renders seconds with an adaptive unit, criterion-style.
fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

/// Declares a benchmark runner that invokes each listed function with a
/// fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_matches_call_sites() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }

    #[test]
    fn fmt_time_picks_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
