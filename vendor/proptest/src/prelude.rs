//! Everything a property-test file needs, mirroring
//! `proptest::prelude::*`: the [`Strategy`] trait, [`ProptestConfig`],
//! the `prop` module alias, and the assertion/definition macros.

pub use crate as prop;
pub use crate::strategy::Strategy;
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
