//! Offline shim for the `proptest` crate.
//!
//! This build environment has no access to the crates registry, so the
//! workspace vendors a minimal API-compatible stand-in. It covers exactly
//! the surface the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `arg in strategy` parameters),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges and tuples,
//! - [`collection::vec`] and [`collection::btree_set`].
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the fully qualified test
//! name), there is **no shrinking** — a failing case reports the case
//! index so it can be replayed, since generation is deterministic — and
//! `prop_assert*` panics instead of returning `Err`. Swap the
//! `[workspace.dependencies]` entry for the real crate once the registry
//! is reachable; no test changes.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestRng};

/// Derives a stable 64-bit seed from a test's fully qualified name, so
/// every test gets an independent but reproducible stream (FNV-1a).
#[doc(hidden)]
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let qualified = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::from_seed($crate::seed_for(qualified, case));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Mirror the real crate: the body runs in a
                    // `Result`-returning scope so `return Ok(())`
                    // early-exits typecheck.
                    let run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    };
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        Ok(Ok(())) => {}
                        Ok(Err(reject)) => panic!(
                            "proptest shim: {qualified} rejected case {case}/{}: {reject}",
                            config.cases
                        ),
                        Err(panic) => {
                            eprintln!(
                                "proptest shim: {} failed at case {}/{} (deterministic; rerun reproduces it)",
                                qualified, case, config.cases
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
