//! Test configuration and the deterministic generator behind strategies.

pub use rand::rngs::SmallRng as TestRngInner;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
///
/// Only `cases` is honoured; the real crate's other knobs don't exist
/// here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; this shim keeps CI latency low
        // (every workspace proptest block sets an explicit count anyway).
        ProptestConfig { cases: 64 }
    }
}

/// The generator strategies draw from. Deterministic per (test, case).
#[derive(Clone, Debug)]
pub struct TestRng(TestRngInner);

impl TestRng {
    /// Builds a generator from a raw 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(TestRngInner::seed_from_u64(seed))
    }

    /// Returns 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        use rand::Rng;
        self.0.gen_range(0..n)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
