//! The [`Strategy`] trait and its implementations for ranges and tuples.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no intermediate value tree and no
/// shrinking: `generate` produces a final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from this strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy that post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i32 => u32, i64 => u64, isize => usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
