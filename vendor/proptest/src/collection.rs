//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;

/// A size specification accepted by collection strategies: a single
/// length, a half-open range, or an inclusive range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `Vec` whose length lies in `size`, each element drawn
/// independently from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size in a [`SizeRange`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Collisions shrink the set below target; retry a bounded number
        // of times so a small element universe can't loop forever.
        let max_draws = target * 10 + 16;
        for _ in 0..max_draws {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// Generates a `BTreeSet` whose size aims for `size` (may fall short if
/// the element universe is too small), each element drawn from `element`.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
