//! The serialized-thread scheduler behind [`crate::check`].
//!
//! Model threads are real OS threads, but exactly one ever runs at a
//! time: a token (the `active` thread id) is passed between them at
//! every instrumented operation, so a whole execution is one
//! deterministic sequence of *scheduling decisions*. The DFS driver in
//! [`crate`] re-runs the closure, steering each decision point through
//! every allowed alternative (subject to the preemption budget), which
//! enumerates every schedule the model distinguishes.
//!
//! All mutable model state — thread statuses, mutex/condvar bookkeeping,
//! the decision trace — lives inside one `std::sync::Mutex<Sched>`.
//! Instrumented primitives keep only an object id; their state is a map
//! entry in here. The instrumented `Mutex<T>` additionally wraps a real
//! `std::sync::Mutex<T>` for the data itself, so the shims stay
//! safe-Rust and still provide genuine exclusion when used *outside* a
//! model execution (pass-through mode).

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

use crate::{Config, FailureKind};

/// A model thread id. Thread 0 is the checked closure itself.
pub(crate) type Tid = usize;
/// Identity of an instrumented primitive (allocation order, global).
pub(crate) type ObjId = usize;

/// Panic payload used to unwind every still-live model thread once a
/// schedule has failed (or exploration is abandoned). Never observed by
/// user code: the thread shims catch it.
pub(crate) struct Abandon;

/// Most model threads a single execution may register. Seeds encode one
/// base-36 character per decision, so thread ids must stay below 36;
/// real model tests use a handful.
pub(crate) const MAX_THREADS: usize = 36;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Has the logical right to run when granted the token.
    Runnable,
    /// Waiting to acquire the mutex; *enabled* whenever it is unlocked
    /// (acquisition happens at grant time, inside the scheduler).
    BlockedMutex(ObjId),
    /// Parked on a condvar; never enabled until notified (or, for
    /// `timeout` waiters, rescued when nothing else can run).
    BlockedCv {
        cv: ObjId,
        mutex: ObjId,
        timeout: bool,
    },
    /// Waiting for another model thread to finish.
    BlockedJoin(Tid),
    Finished,
}

struct ThreadState {
    status: Status,
    /// Signalled (under the scheduler lock) when this thread may need to
    /// re-check whether it holds the token.
    wake: StdArc<StdCondvar>,
    /// Whether the last condvar wait ended by timeout rescue rather than
    /// a notification.
    cv_timed_out: bool,
    /// Set while the thread is in scope-teardown join: it waits for its
    /// children passively and must be skipped by abandon-mode grants
    /// (handing it the token would strand the children it waits for).
    teardown: bool,
}

#[derive(Default)]
struct MutexState {
    locked: bool,
}

#[derive(Default)]
struct CvState {
    waiters: VecDeque<Tid>,
}

/// One recorded branch point: the enabled-thread options that were on
/// offer (post preemption filtering, current-thread first) and which
/// index was taken. Only multi-option points are recorded — forced moves
/// replay for free.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    pub options: Vec<Tid>,
    pub idx: usize,
}

/// Scheduler state for one schedule (one run of the closure).
pub(crate) struct Sched {
    threads: Vec<ThreadState>,
    active: Tid,
    mutexes: HashMap<ObjId, MutexState>,
    condvars: HashMap<ObjId, CvState>,
    decisions: Vec<Decision>,
    script: Vec<Tid>,
    script_pos: usize,
    /// Replay mode: a script mismatch is a reported divergence, not an
    /// internal bug.
    strict_script: bool,
    preemptions: usize,
    steps: usize,
    cfg: Config,
    /// Set once a failure is recorded; every subsequent token grant makes
    /// the granted thread unwind with [`Abandon`].
    failing: bool,
    failure: Option<FailureKind>,
    complete: bool,
}

pub(crate) type Handle = StdArc<StdMutex<Sched>>;

thread_local! {
    /// The execution this OS thread is participating in, if any.
    static CURRENT: RefCell<Option<(Handle, Tid)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Handle, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True while this OS thread is a registered model thread. Instrumented
/// primitives pass straight through to std behaviour otherwise.
pub(crate) fn in_execution() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn lock(h: &Handle) -> std::sync::MutexGuard<'_, Sched> {
    h.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Global id source for instrumented primitives. Ids only key per-schedule
/// state maps, so cross-schedule drift is harmless; within a schedule,
/// allocation order is deterministic because execution is serialized.
static NEXT_OBJ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

pub(crate) fn new_obj_id() -> ObjId {
    NEXT_OBJ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl Sched {
    fn new(cfg: Config, script: Vec<Tid>, strict_script: bool) -> Sched {
        let mut s = Sched {
            threads: Vec::new(),
            active: 0,
            mutexes: HashMap::new(),
            condvars: HashMap::new(),
            decisions: Vec::new(),
            script,
            script_pos: 0,
            strict_script,
            preemptions: 0,
            steps: 0,
            cfg,
            failing: false,
            failure: None,
            complete: false,
        };
        s.register_thread(); // tid 0: the checked closure
        s
    }

    fn register_thread(&mut self) -> Tid {
        let tid = self.threads.len();
        assert!(
            tid < MAX_THREADS,
            "tc-model: execution registered more than {MAX_THREADS} threads"
        );
        self.threads.push(ThreadState {
            status: Status::Runnable,
            wake: StdArc::new(StdCondvar::new()),
            cv_timed_out: false,
            teardown: false,
        });
        tid
    }

    fn enabled(&self, tid: Tid) -> bool {
        match self.threads[tid].status {
            Status::Runnable => true,
            Status::BlockedMutex(m) => !self.mutexes[&m].locked,
            Status::BlockedCv { .. } => false,
            Status::BlockedJoin(t) => self.threads[t].status == Status::Finished,
            Status::Finished => false,
        }
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }

    fn fail(&mut self, kind: FailureKind) {
        if self.failure.is_none() {
            self.failure = Some(kind);
        }
        self.failing = true;
    }

    /// One instrumented operation happened; enforce the per-schedule step
    /// budget so a livelocked model fails loudly instead of spinning.
    fn count_step(&mut self) {
        self.steps += 1;
        if self.steps > self.cfg.max_steps {
            self.fail(FailureKind::StepLimit);
        }
    }

    fn notify_everyone(&self) {
        for t in &self.threads {
            t.wake.notify_all();
        }
    }

    /// Failing mode: grant the token to the lowest-numbered live thread
    /// so it can unwind; declare the schedule complete once none remain.
    /// Teardown-joining threads are skipped — they run without the token
    /// once their children are done — but everyone is notified so their
    /// passive waits re-check.
    fn grant_abandon(&mut self) {
        let live_worker = (0..self.threads.len())
            .find(|&t| self.threads[t].status != Status::Finished && !self.threads[t].teardown);
        match live_worker {
            Some(t) => {
                self.active = t;
                self.notify_everyone();
            }
            None => {
                if self.all_finished() {
                    self.complete = true;
                }
                // Either complete, or only teardown joiners remain and
                // every thread they wait on is finished; wake them all.
                self.notify_everyone();
            }
        }
    }

    /// The core decision point: pick the next thread to run and hand it
    /// the token. `cur` is the thread giving the token up (it may win it
    /// straight back).
    fn schedule_next(&mut self, cur: Tid) {
        if self.failing {
            self.grant_abandon();
            return;
        }
        loop {
            let enabled: Vec<Tid> = (0..self.threads.len())
                .filter(|&t| self.enabled(t))
                .collect();
            if enabled.is_empty() {
                // Timeout rescue: `wait_timeout` waiters are modeled as
                // blocked (their timeout "has not elapsed") for as long
                // as anything else can run. Once nothing can, the
                // timeouts fire — all of them — which is exactly the
                // role a real timeout plays: progress insurance, not a
                // wakeup path. Plain `wait` waiters get no rescue, so a
                // lost notification still shows up as a deadlock.
                let rescued: Vec<(Tid, ObjId, ObjId)> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(t, th)| match th.status {
                        Status::BlockedCv {
                            cv,
                            mutex,
                            timeout: true,
                        } => Some((t, cv, mutex)),
                        _ => None,
                    })
                    .collect();
                if !rescued.is_empty() {
                    for (t, cv, mutex) in rescued {
                        if let Some(state) = self.condvars.get_mut(&cv) {
                            state.waiters.retain(|&w| w != t);
                        }
                        self.threads[t].status = Status::BlockedMutex(mutex);
                        self.threads[t].cv_timed_out = true;
                    }
                    continue;
                }
                if self.all_finished() {
                    self.complete = true;
                    self.notify_everyone();
                } else {
                    self.fail(FailureKind::Deadlock);
                    self.grant_abandon();
                }
                return;
            }

            let cur_enabled = enabled.contains(&cur);
            let options: Vec<Tid> = if cur_enabled && self.preemptions >= self.cfg.preemption_bound
            {
                // Budget spent: the running thread must continue.
                vec![cur]
            } else if cur_enabled {
                // Current thread first, so the no-preemption schedule is
                // explored first and seeds stay short.
                let mut v = vec![cur];
                v.extend(enabled.iter().copied().filter(|&t| t != cur));
                v
            } else {
                enabled
            };

            let idx = if options.len() == 1 {
                0
            } else {
                match self.pick(&options) {
                    Some(i) => i,
                    None => {
                        // Divergence failure already recorded.
                        self.grant_abandon();
                        return;
                    }
                }
            };
            let chosen = options[idx];
            if options.len() > 1 {
                self.decisions.push(Decision { options, idx });
            }
            if cur_enabled && chosen != cur {
                self.preemptions += 1;
            }
            self.grant(chosen);
            return;
        }
    }

    /// Pick among `options` (len > 1): follow the script while it lasts,
    /// then take the first (DFS-leftmost) branch.
    fn pick(&mut self, options: &[Tid]) -> Option<usize> {
        if self.script_pos < self.script.len() {
            let want = self.script[self.script_pos];
            self.script_pos += 1;
            match options.iter().position(|&t| t == want) {
                Some(i) => Some(i),
                None => {
                    let msg = if self.strict_script {
                        format!(
                            "seed chose thread {want} at decision {} but the enabled set is {options:?}",
                            self.script_pos - 1
                        )
                    } else {
                        format!(
                            "schedule diverged while revisiting a DFS prefix (decision {}, wanted thread {want}, enabled {options:?}); the checked closure is not deterministic — remove wall-clock, RNG, or ambient-I/O dependence",
                            self.script_pos - 1
                        )
                    };
                    self.fail(FailureKind::SeedDiverged(msg));
                    None
                }
            }
        } else {
            Some(0)
        }
    }

    /// Hand the token to `chosen`, resolving whatever it was blocked on.
    fn grant(&mut self, chosen: Tid) {
        match self.threads[chosen].status {
            Status::Runnable => {}
            Status::BlockedMutex(m) => {
                let state = self.mutexes.get_mut(&m).expect("mutex state exists");
                debug_assert!(!state.locked, "granted a mutex waiter while locked");
                state.locked = true;
                self.threads[chosen].status = Status::Runnable;
            }
            Status::BlockedJoin(_) => self.threads[chosen].status = Status::Runnable,
            Status::BlockedCv { .. } | Status::Finished => {
                unreachable!("granted a thread that is not enabled")
            }
        }
        self.active = chosen;
        self.threads[chosen].wake.notify_all();
    }

    fn finish_thread(&mut self, tid: Tid) {
        self.threads[tid].status = Status::Finished;
        self.schedule_next(tid);
        // Teardown joiners wait for a *finish*, not a grant; make sure
        // they observe this one whatever the scheduler decided.
        self.notify_everyone();
    }
}

/// Park the calling OS thread until the scheduler hands it the token (or
/// tells it to unwind because the schedule is being abandoned).
fn block_until_active(h: &Handle, tid: Tid) {
    let mut s = lock(h);
    loop {
        if s.active == tid && s.threads[tid].status != Status::Finished {
            if s.failing {
                drop(s);
                std::panic::panic_any(Abandon);
            }
            debug_assert_eq!(s.threads[tid].status, Status::Runnable);
            return;
        }
        let wake = StdArc::clone(&s.threads[tid].wake);
        s = wake.wait(s).unwrap_or_else(PoisonError::into_inner);
    }
}

/// An instrumented no-data operation: give the scheduler a chance to run
/// someone else. No-op outside an execution, and during unwinding (a
/// `Drop` running while panicking must not re-enter the scheduler).
pub(crate) fn yield_point() {
    if std::thread::panicking() {
        return;
    }
    let Some((h, tid)) = current() else { return };
    {
        let mut s = lock(&h);
        if s.failing {
            drop(s);
            std::panic::panic_any(Abandon);
        }
        s.count_step();
        s.schedule_next(tid);
    }
    block_until_active(&h, tid);
}

/// Block until the model mutex `id` is acquired *by this thread*. The
/// wait itself is the scheduling point: a thread wanting a free mutex is
/// simply an enabled thread, so every acquisition order is explored.
pub(crate) fn mutex_lock(id: ObjId) {
    if std::thread::panicking() {
        return;
    }
    let Some((h, tid)) = current() else { return };
    {
        let mut s = lock(&h);
        if s.failing {
            drop(s);
            std::panic::panic_any(Abandon);
        }
        s.count_step();
        s.mutexes.entry(id).or_default();
        s.threads[tid].status = Status::BlockedMutex(id);
        s.schedule_next(tid);
    }
    block_until_active(&h, tid);
}

/// Non-blocking acquire attempt; the attempt itself is a scheduling
/// point. Returns whether the mutex was acquired.
pub(crate) fn mutex_try_lock(id: ObjId) -> bool {
    if std::thread::panicking() {
        return true;
    }
    if !in_execution() {
        return true;
    }
    yield_point();
    let Some((h, _tid)) = current() else {
        return true;
    };
    let mut s = lock(&h);
    let state = s.mutexes.entry(id).or_default();
    if state.locked {
        false
    } else {
        state.locked = true;
        true
    }
}

/// Release bookkeeping for model mutex `id`. A pure state change — the
/// releasing thread keeps the token, and the next contender is picked at
/// its next scheduling point. Safe to call while unwinding.
pub(crate) fn mutex_unlock(id: ObjId) {
    if std::thread::panicking() {
        return;
    }
    let Some((h, _tid)) = current() else { return };
    let mut s = lock(&h);
    if let Some(state) = s.mutexes.get_mut(&id) {
        state.locked = false;
    }
}

/// Atomically release mutex `mutex`, park on condvar `cv`, and re-acquire
/// the mutex once notified (or once the modeled timeout fires, for
/// `timeout` waits). Returns whether the wait timed out.
pub(crate) fn cv_wait(cv: ObjId, mutex: ObjId, timeout: bool) -> bool {
    let Some((h, tid)) = current() else {
        return false;
    };
    {
        let mut s = lock(&h);
        if s.failing {
            drop(s);
            std::panic::panic_any(Abandon);
        }
        s.count_step();
        if let Some(state) = s.mutexes.get_mut(&mutex) {
            state.locked = false;
        }
        s.condvars.entry(cv).or_default().waiters.push_back(tid);
        s.threads[tid].status = Status::BlockedCv { cv, mutex, timeout };
        s.threads[tid].cv_timed_out = false;
        s.schedule_next(tid);
    }
    block_until_active(&h, tid);
    let s = lock(&h);
    s.threads[tid].cv_timed_out
}

/// Wake waiters on condvar `cv`. A scheduling point (notifiers need not
/// hold the paired mutex, so the pre-notify interleaving is reachable).
/// Woken waiters move to the mutex-reacquire queue, FIFO.
pub(crate) fn cv_notify(cv: ObjId, all: bool) {
    if std::thread::panicking() {
        return;
    }
    if !in_execution() {
        return;
    }
    yield_point();
    let Some((h, _tid)) = current() else { return };
    let mut s = lock(&h);
    loop {
        let Some(state) = s.condvars.get_mut(&cv) else {
            return;
        };
        let Some(w) = state.waiters.pop_front() else {
            return;
        };
        let Status::BlockedCv { mutex, .. } = s.threads[w].status else {
            unreachable!("condvar waiter queue out of sync")
        };
        s.threads[w].status = Status::BlockedMutex(mutex);
        if !all {
            return;
        }
    }
}

/// Register a child model thread (runnable, not yet granted). Returns
/// `None` outside an execution.
pub(crate) fn register_child() -> Option<(Handle, Tid)> {
    let (h, _tid) = current()?;
    let tid = lock(&h).register_thread();
    Some((h, tid))
}

/// Body run on a child model thread's OS thread: wait for the first
/// grant, run `f`, then hand the token on. Returns `None` when the
/// schedule was abandoned (or `f` panicked — recorded as the failure).
pub(crate) fn run_child<T>(h: Handle, tid: Tid, f: impl FnOnce() -> T) -> Option<T> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        block_until_active(&h, tid);
        CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&h), tid)));
        f()
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut s = lock(&h);
    match result {
        Ok(v) => {
            s.finish_thread(tid);
            drop(s);
            Some(v)
        }
        Err(payload) => {
            if !payload.is::<Abandon>() {
                s.fail(FailureKind::Panic(panic_message(&payload)));
            }
            s.finish_thread(tid);
            drop(s);
            None
        }
    }
}

/// Wait for model thread `child` to finish. No-op outside an execution
/// and when the child is already done.
pub(crate) fn join_model(child: Tid) {
    let Some((h, tid)) = current() else { return };
    {
        let mut s = lock(&h);
        if s.failing {
            drop(s);
            std::panic::panic_any(Abandon);
        }
        if s.threads[child].status == Status::Finished {
            return;
        }
        s.count_step();
        s.threads[tid].status = Status::BlockedJoin(child);
        s.schedule_next(tid);
    }
    block_until_active(&h, tid);
}

/// Scope-teardown variant of [`join_model`]: never unwinds. In a normal
/// schedule it behaves like a model join; once the schedule is being
/// abandoned it degrades to passively waiting for the child to finish
/// (the scope owner must survive to run the `std::thread::scope`
/// implicit join, or abandoned children would strand it OS-level).
pub(crate) fn join_teardown(child: Tid) {
    let Some((h, tid)) = current() else { return };
    {
        let mut s = lock(&h);
        if !s.failing {
            if s.threads[child].status == Status::Finished {
                return;
            }
            s.count_step();
            if !s.failing {
                s.threads[tid].status = Status::BlockedJoin(child);
                s.schedule_next(tid);
            }
        }
    }
    let mut s = lock(&h);
    s.threads[tid].teardown = true;
    loop {
        let child_done = s.threads[child].status == Status::Finished;
        if s.failing {
            if s.active == tid {
                // The token was aimed at us before the teardown flag was
                // visible; pass it along to a thread that can unwind.
                s.grant_abandon();
            }
            if child_done {
                break;
            }
        } else if child_done && s.active == tid && s.threads[tid].status == Status::Runnable {
            break;
        }
        let wake = StdArc::clone(&s.threads[tid].wake);
        s = wake.wait(s).unwrap_or_else(PoisonError::into_inner);
    }
    s.threads[tid].teardown = false;
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The outcome of one schedule.
pub(crate) struct Outcome {
    pub decisions: Vec<Decision>,
    pub failure: Option<FailureKind>,
}

/// Run the closure once under the scheduler, steering multi-option
/// decisions through `script` first and DFS-leftmost after.
pub(crate) fn run_schedule(
    cfg: &Config,
    script: &[Tid],
    strict_script: bool,
    f: &dyn Fn(),
) -> Outcome {
    assert!(
        !in_execution(),
        "tc-model: nested model executions are not supported"
    );
    let h: Handle = StdArc::new(StdMutex::new(Sched::new(
        cfg.clone(),
        script.to_vec(),
        strict_script,
    )));
    CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&h), 0)));
    let result = catch_unwind(AssertUnwindSafe(f));
    CURRENT.with(|c| *c.borrow_mut() = None);
    {
        let mut s = lock(&h);
        if let Err(payload) = result {
            if !payload.is::<Abandon>() {
                s.fail(FailureKind::Panic(panic_message(&payload)));
            }
        }
        s.finish_thread(0);
    }
    // The closure is done, but spawned-but-unjoined model threads may
    // still be draining (or unwinding). Wait for the schedule to settle.
    let mut s = lock(&h);
    while !s.complete {
        let wake = StdArc::clone(&s.threads[0].wake);
        s = wake.wait(s).unwrap_or_else(PoisonError::into_inner);
    }
    let mut failure = s.failure.take();
    if failure.is_none() && s.strict_script && s.script_pos < s.script.len() {
        failure = Some(FailureKind::SeedDiverged(format!(
            "schedule completed after {} of {} seed decisions",
            s.script_pos,
            s.script.len()
        )));
    }
    Outcome {
        decisions: std::mem::take(&mut s.decisions),
        failure,
    }
}
