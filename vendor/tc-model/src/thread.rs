//! Instrumented `thread::spawn` / `thread::scope` shims.
//!
//! Inside a [`crate::check`] execution, spawned closures become model
//! threads: real OS threads that only run while holding the scheduler
//! token. Outside one, these forward to `std::thread`.
//!
//! The scoped API mirrors `std::thread::scope` closely enough for the
//! workspace's call sites, with one difference forced by lifetimes: the
//! closure receives `&Scope<'scope, '_>` rather than
//! `&'scope Scope<'scope, '_>`, so a `Scope` cannot be smuggled into its
//! own spawned children (spawn from the scope-owning thread only).

use crate::rt;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Explicit scheduling point (`std::thread::yield_now` outside a model
/// execution).
pub fn yield_now() {
    if rt::in_execution() {
        rt::yield_point();
    } else {
        std::thread::yield_now();
    }
}

/// Owned handle to a spawned model thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    tid: Option<rt::Tid>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. In the
    /// model this is a blocking scheduling point; a panicked or
    /// abandoned child surfaces as `Err`, as with std.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(tid) = self.tid {
            rt::join_model(tid);
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => {
                Err(Box::new("tc-model: thread abandoned")
                    as Box<dyn std::any::Any + Send + 'static>)
            }
            Err(e) => Err(e),
        }
    }
}

/// Spawns a model thread (std thread outside an execution).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::register_child() {
        None => JoinHandle {
            inner: std::thread::spawn(move || Some(f())),
            tid: None,
        },
        Some((h, tid)) => {
            let inner = std::thread::spawn(move || rt::run_child(h, tid, f));
            // Spawn is itself a scheduling point: the child may run
            // before the parent's next instruction.
            rt::yield_point();
            JoinHandle {
                inner,
                tid: Some(tid),
            }
        }
    }
}

/// Scope for spawning threads that borrow from the caller's stack.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    /// Children spawned through this scope, model-joined at scope exit
    /// so the std implicit join can never block the scheduler token.
    children: RefCell<Vec<rt::Tid>>,
}

/// Owned handle to a thread spawned through a [`Scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    tid: Option<rt::Tid>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(tid) = self.tid {
            rt::join_model(tid);
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => {
                Err(Box::new("tc-model: thread abandoned")
                    as Box<dyn std::any::Any + Send + 'static>)
            }
            Err(e) => Err(e),
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a borrowing model thread; implicitly joined at scope exit
    /// if the handle is dropped.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match rt::register_child() {
            None => ScopedJoinHandle {
                inner: self.inner.spawn(move || Some(f())),
                tid: None,
            },
            Some((h, tid)) => {
                let inner = self.inner.spawn(move || rt::run_child(h, tid, f));
                self.children.borrow_mut().push(tid);
                rt::yield_point();
                ScopedJoinHandle {
                    inner,
                    tid: Some(tid),
                }
            }
        }
    }
}

/// `std::thread::scope` lookalike: every child is model-joined before
/// the underlying std scope performs its OS-level implicit join, even
/// when the scope body unwinds (schedule abandonment included) — the
/// token must keep moving or the children could never finish.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|inner| {
        let wrapper = Scope {
            inner,
            children: RefCell::new(Vec::new()),
        };
        let out = catch_unwind(AssertUnwindSafe(|| f(&wrapper)));
        for tid in wrapper.children.take() {
            rt::join_teardown(tid);
        }
        match out {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        }
    })
}
