//! Loom-lite deterministic interleaving checker.
//!
//! `tc-model` runs a closure many times, once per distinguishable thread
//! interleaving, with every schedule driven deterministically: model
//! threads are real OS threads, but a token serializes them so exactly
//! one runs at a time, and the scheduler picks who gets the token at
//! every instrumented operation (lock, condvar wait/notify, atomic op,
//! `Arc` clone/drop, spawn/join/yield). A DFS over those decision points
//! — pruned by a bounded-preemption budget, the standard trick from
//! CHESS/loom for keeping exhaustive exploration tractable — visits
//! every schedule the model distinguishes.
//!
//! A failing schedule (panic, deadlock, step-budget livelock) aborts the
//! search and reports a **seed**: a replayable encoding of every
//! scheduling decision. [`replay`] re-runs exactly that schedule, so a
//! race found in CI reproduces byte-identically at a desk.
//!
//! ```
//! use tc_model::sync::atomic::{AtomicUsize, Ordering};
//! use tc_model::sync::Arc;
//!
//! tc_model::check(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = tc_model::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     n.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! ```
//!
//! The primitives in [`sync`] and [`thread`] are **pass-through** when
//! used outside [`check`]: they behave like (and wrap) their `std`
//! counterparts, so code built against them still runs normally — that
//! is what lets `tc_util::sync` swap them in for the whole dependency
//! graph under `--cfg tc_check_model` without breaking ordinary tests.
//!
//! The model is *sequentially consistent*: it explores interleavings of
//! instrumented operations, not weak-memory reorderings. That matches
//! the invariants it is used to check (lock-protocol and lost-update
//! races), and keeps the vendored checker dependency-free.

mod rt;
pub mod sync;
pub mod thread;

use rt::Decision;

/// Exploration limits for one [`check_with`] run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Most *preemptions* (switching away from a still-runnable thread)
    /// any single schedule may contain. Schedules needing more are not
    /// explored; empirically almost all real races need ≤ 2 (the CHESS
    /// observation). Voluntary switches — blocking on a held lock, a
    /// condvar wait, thread exit — are free.
    pub preemption_bound: usize,
    /// Most schedules to explore before failing with
    /// [`FailureKind::ScheduleLimit`] — a guard against state-space
    /// blowups silently eating CI minutes.
    pub max_schedules: usize,
    /// Most scheduling decisions in a single schedule before it fails
    /// with [`FailureKind::StepLimit`] — a livelock detector.
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 2,
            max_schedules: 200_000,
            max_steps: 20_000,
        }
    }
}

/// Why a schedule (or the whole exploration) failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failures included); the
    /// payload's message is carried verbatim.
    Panic(String),
    /// No thread could run: every live thread was blocked on a lock,
    /// plain condvar wait, or join that nothing will ever satisfy.
    Deadlock,
    /// One schedule exceeded [`Config::max_steps`] decisions.
    StepLimit,
    /// Exploration exceeded [`Config::max_schedules`].
    ScheduleLimit,
    /// A replay seed (or DFS prefix) no longer matches the execution —
    /// the closure is not deterministic. The message names the decision.
    SeedDiverged(String),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic(msg) => write!(f, "a model thread panicked: {msg}"),
            FailureKind::Deadlock => write!(f, "deadlock: no model thread can make progress"),
            FailureKind::StepLimit => write!(f, "step limit exceeded (livelock?)"),
            FailureKind::ScheduleLimit => write!(
                f,
                "schedule limit exceeded before exhausting the state space"
            ),
            FailureKind::SeedDiverged(msg) => write!(f, "seed diverged: {msg}"),
        }
    }
}

/// A failed exploration: what went wrong, the replayable seed for the
/// failing schedule, and how many schedules ran to find it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Replay encoding of the failing schedule; feed it to [`replay`].
    /// Empty for [`FailureKind::ScheduleLimit`] (no single schedule is
    /// at fault).
    pub seed: String,
    /// What went wrong.
    pub kind: FailureKind,
    /// Schedules executed, the failing one included.
    pub schedules: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} after {} schedule(s)", self.kind, self.schedules)?;
        if !self.seed.is_empty() {
            write!(f, "; replay with seed \"{}\"", self.seed)?;
        }
        Ok(())
    }
}

impl std::error::Error for Failure {}

/// A successful exhaustive exploration.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Schedules explored (all passed).
    pub schedules: usize,
}

const SEED_PREFIX: &str = "tcm1";
const SEED_DIGITS: &[u8; 36] = b"0123456789abcdefghijklmnopqrstuvwxyz";

/// Encode a decision trace as a replayable seed:
/// `tcm1.p<preemption-bound>.<one base-36 char per multi-option decision>`.
fn encode_seed(cfg: &Config, decisions: &[Decision]) -> String {
    let mut out = format!("{SEED_PREFIX}.p{}.", cfg.preemption_bound);
    for d in decisions {
        let tid = d.options[d.idx];
        out.push(SEED_DIGITS[tid] as char);
    }
    out
}

fn decode_seed(seed: &str) -> Result<(usize, Vec<usize>), String> {
    let mut parts = seed.splitn(3, '.');
    let (prefix, bound, choices) = match (parts.next(), parts.next(), parts.next()) {
        (Some(p), Some(b), Some(c)) => (p, b, c),
        _ => {
            return Err(format!(
                "malformed seed {seed:?}: expected tcm1.p<bound>.<choices>"
            ))
        }
    };
    if prefix != SEED_PREFIX {
        return Err(format!(
            "unknown seed format {prefix:?} (expected {SEED_PREFIX:?})"
        ));
    }
    let bound: usize = bound
        .strip_prefix('p')
        .and_then(|b| b.parse().ok())
        .ok_or_else(|| format!("malformed preemption bound in seed {seed:?}"))?;
    let mut script = Vec::with_capacity(choices.len());
    for c in choices.chars() {
        let tid = SEED_DIGITS
            .iter()
            .position(|&d| d as char == c)
            .ok_or_else(|| format!("invalid seed character {c:?} in {seed:?}"))?;
        script.push(tid);
    }
    Ok((bound, script))
}

/// Exhaustively check `f` under the default [`Config`], panicking with
/// the failure (seed included) if any schedule fails.
pub fn check<F: Fn()>(f: F) {
    check_with(Config::default(), f)
}

/// [`check`] with explicit exploration limits.
///
/// # Panics
///
/// Panics with the [`Failure`] display (which names the replay seed) if
/// any schedule fails or the exploration limits are hit.
pub fn check_with<F: Fn()>(cfg: Config, f: F) {
    if let Err(failure) = try_check_with(cfg, f) {
        panic!("tc-model check failed: {failure}");
    }
}

/// [`check_with`] returning the outcome instead of panicking — the form
/// the regression tests (and the deliberately-racy fixtures) use.
pub fn try_check_with<F: Fn()>(cfg: Config, f: F) -> Result<Report, Failure> {
    let mut script: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        if schedules >= cfg.max_schedules {
            return Err(Failure {
                seed: String::new(),
                kind: FailureKind::ScheduleLimit,
                schedules,
            });
        }
        schedules += 1;
        let outcome = rt::run_schedule(&cfg, &script, false, &f);
        if let Some(kind) = outcome.failure {
            return Err(Failure {
                seed: encode_seed(&cfg, &outcome.decisions),
                kind,
                schedules,
            });
        }
        // DFS advance: deepest decision with an untried option.
        let d = outcome.decisions;
        let Some(i) = (0..d.len())
            .rev()
            .find(|&i| d[i].idx + 1 < d[i].options.len())
        else {
            return Ok(Report { schedules });
        };
        script.clear();
        script.extend(d[..i].iter().map(|dd| dd.options[dd.idx]));
        script.push(d[i].options[d[i].idx + 1]);
    }
}

/// Re-run exactly the schedule a seed describes. Returns the reproduced
/// [`Failure`] (whose `seed` is byte-identical to the input when the
/// original failure reproduces), or `Ok` if that schedule passes.
pub fn replay<F: Fn()>(seed: &str, f: F) -> Result<Report, Failure> {
    let (bound, script) = match decode_seed(seed) {
        Ok(v) => v,
        Err(msg) => {
            return Err(Failure {
                seed: seed.to_string(),
                kind: FailureKind::SeedDiverged(msg),
                schedules: 0,
            })
        }
    };
    let cfg = Config {
        preemption_bound: bound,
        ..Config::default()
    };
    let outcome = rt::run_schedule(&cfg, &script, true, &f);
    match outcome.failure {
        Some(kind) => Err(Failure {
            seed: encode_seed(&cfg, &outcome.decisions),
            kind,
            schedules: 1,
        }),
        None => Ok(Report { schedules: 1 }),
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use super::*;

    /// Two increments through a mutex: every schedule sees 2.
    #[test]
    fn mutex_counter_is_exhaustively_correct() {
        let report = try_check_with(Config::default(), || {
            let n = Arc::new(Mutex::new(0u32));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                *n2.lock() += 1;
            });
            *n.lock() += 1;
            t.join().unwrap();
            assert_eq!(*n.lock(), 2);
        })
        .expect("no schedule should fail");
        // More than one schedule must have been explored, or the model
        // never actually interleaved anything.
        assert!(
            report.schedules > 1,
            "explored {} schedules",
            report.schedules
        );
    }

    /// The classic lost update: read-modify-write through a plain
    /// atomic load/store pair. One preemption is enough to catch it.
    #[test]
    fn lost_update_is_caught_and_replays() {
        let racy = || {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        };
        let failure = try_check_with(Config::default(), racy).expect_err("the race must be found");
        assert!(matches!(failure.kind, FailureKind::Panic(_)), "{failure}");
        assert!(!failure.seed.is_empty());
        // The seed replays the same failure, byte-identically.
        let replayed = replay(&failure.seed, racy).expect_err("seed must reproduce the failure");
        assert_eq!(replayed.kind, failure.kind);
        assert_eq!(replayed.seed, failure.seed);
    }

    /// A waiter nobody ever notifies deadlocks — plain `wait` gets no
    /// timeout rescue.
    #[test]
    fn lost_wakeup_deadlocks() {
        let failure = try_check_with(Config::default(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let guard = pair.0.lock();
            let _guard = pair.1.wait(guard);
        })
        .expect_err("un-notified wait must deadlock");
        assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
    }

    /// `wait_timeout` is rescued when nothing else can run, so the same
    /// shape completes instead of deadlocking — and reports the timeout.
    #[test]
    fn wait_timeout_rescued_not_deadlocked() {
        try_check_with(Config::default(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let guard = pair.0.lock();
            let (_guard, timed_out) = pair
                .1
                .wait_timeout(guard, std::time::Duration::from_millis(1));
            assert!(timed_out, "rescue must report a timeout");
        })
        .expect("timeout wait must be rescued");
    }

    /// Notify moves exactly one waiter; the handoff completes under every
    /// schedule.
    #[test]
    fn condvar_handoff_completes() {
        try_check_with(Config::default(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let mut ready = pair2.0.lock();
                *ready = true;
                pair2.1.notify_one();
            });
            let mut ready = pair.0.lock();
            while !*ready {
                ready = pair.1.wait(ready);
            }
            drop(ready);
            t.join().unwrap();
        })
        .expect("handoff must complete in every schedule");
    }

    /// Scoped spawn with borrows, the `tc_util::steal` shape.
    #[test]
    fn scoped_threads_join_implicitly() {
        try_check_with(Config::default(), || {
            let n = AtomicUsize::new(0);
            thread::scope(|s| {
                s.spawn(|| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
                s.spawn(|| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            });
            assert_eq!(n.load(Ordering::SeqCst), 2);
        })
        .expect("scope must join both children");
    }

    /// Outside `check`, every primitive passes through to real std
    /// behaviour — the facade's normal-build contract.
    #[test]
    fn pass_through_outside_model() {
        let n = Arc::new(Mutex::new(0u32));
        let n2 = Arc::clone(&n);
        let t = std::thread::spawn(move || {
            *n2.lock() += 1;
        });
        *n.lock() += 1;
        t.join().unwrap();
        assert_eq!(*n.lock(), 2);
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn seed_codec_round_trips() {
        let cfg = Config::default();
        let decisions = vec![
            Decision {
                options: vec![0, 1],
                idx: 1,
            },
            Decision {
                options: vec![0, 1, 2],
                idx: 0,
            },
        ];
        let seed = encode_seed(&cfg, &decisions);
        assert_eq!(seed, "tcm1.p2.10");
        let (bound, script) = decode_seed(&seed).unwrap();
        assert_eq!(bound, 2);
        assert_eq!(script, vec![1, 0]);
        assert!(decode_seed("nope").is_err());
        assert!(decode_seed("tcm1.p2.!").is_err());
    }

    /// A bogus seed is a typed divergence, not a crash.
    #[test]
    fn replay_divergence_is_reported() {
        let failure = replay("tcm1.p2.11111111", || {
            let n = Arc::new(AtomicUsize::new(0));
            n.fetch_add(1, Ordering::SeqCst);
        })
        .expect_err("seed does not match this closure");
        assert!(
            matches!(failure.kind, FailureKind::SeedDiverged(_)),
            "{failure}"
        );
    }

    /// The step budget turns livelock into a reported failure.
    #[test]
    fn step_limit_reported() {
        let failure = try_check_with(
            Config {
                max_steps: 50,
                ..Config::default()
            },
            || {
                let n = AtomicUsize::new(0);
                for _ in 0..100 {
                    n.fetch_add(1, Ordering::SeqCst);
                }
            },
        )
        .expect_err("must hit the step budget");
        assert_eq!(failure.kind, FailureKind::StepLimit);
    }
}
