//! Instrumented atomics: every operation is a scheduling point, then
//! delegates to the wrapped std atomic. The model serializes execution,
//! so all orderings behave as `SeqCst` — the checker explores
//! interleavings of operations, not weak-memory reorderings.

use crate::rt;
pub use std::sync::atomic::Ordering;

macro_rules! instrumented_atomic {
    ($name:ident, $std:ty, $value:ty) => {
        /// Instrumented counterpart of the std atomic of the same name.
        #[derive(Debug, Default)]
        pub struct $name($std);

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $value) -> $name {
                $name(<$std>::new(v))
            }

            /// Loads the value (a scheduling point).
            pub fn load(&self, order: Ordering) -> $value {
                rt::yield_point();
                self.0.load(order)
            }

            /// Stores a value (a scheduling point).
            pub fn store(&self, v: $value, order: Ordering) {
                rt::yield_point();
                self.0.store(v, order);
            }

            /// Swaps in a value, returning the previous one.
            pub fn swap(&self, v: $value, order: Ordering) -> $value {
                rt::yield_point();
                self.0.swap(v, order)
            }

            /// Compare-and-exchange, std semantics.
            pub fn compare_exchange(
                &self,
                current: $value,
                new: $value,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$value, $value> {
                rt::yield_point();
                self.0.compare_exchange(current, new, success, failure)
            }

            /// Returns the value without instrumentation (requires `&mut`,
            /// so no other thread can observe it anyway).
            pub fn get_mut(&mut self) -> &mut $value {
                self.0.get_mut()
            }

            /// Unwraps the inner value.
            pub fn into_inner(self) -> $value {
                self.0.into_inner()
            }
        }
    };
}

macro_rules! instrumented_atomic_int {
    ($name:ident, $std:ty, $value:ty) => {
        instrumented_atomic!($name, $std, $value);

        impl $name {
            /// Adds, returning the previous value.
            pub fn fetch_add(&self, v: $value, order: Ordering) -> $value {
                rt::yield_point();
                self.0.fetch_add(v, order)
            }

            /// Subtracts, returning the previous value.
            pub fn fetch_sub(&self, v: $value, order: Ordering) -> $value {
                rt::yield_point();
                self.0.fetch_sub(v, order)
            }

            /// Bitwise-ors, returning the previous value.
            pub fn fetch_or(&self, v: $value, order: Ordering) -> $value {
                rt::yield_point();
                self.0.fetch_or(v, order)
            }

            /// Bitwise-ands, returning the previous value.
            pub fn fetch_and(&self, v: $value, order: Ordering) -> $value {
                rt::yield_point();
                self.0.fetch_and(v, order)
            }

            /// Stores the maximum, returning the previous value.
            pub fn fetch_max(&self, v: $value, order: Ordering) -> $value {
                rt::yield_point();
                self.0.fetch_max(v, order)
            }
        }
    };
}

instrumented_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
instrumented_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
instrumented_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

impl AtomicBool {
    /// Bitwise-ors, returning the previous value.
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        rt::yield_point();
        self.0.fetch_or(v, order)
    }

    /// Bitwise-ands, returning the previous value.
    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        rt::yield_point();
        self.0.fetch_and(v, order)
    }
}
