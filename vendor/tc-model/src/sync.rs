//! Instrumented lookalikes of the std sync primitives.
//!
//! Inside a [`crate::check`] execution every operation is a scheduling
//! point; outside one they pass straight through to the wrapped std
//! primitive, so code built against them behaves normally. The API is
//! the non-poisoning (parking_lot-style) shape the workspace facade
//! `tc_util::sync` exposes: `lock()` returns a guard, `try_lock()` an
//! `Option`, condvar waits return the guard (plus a timed-out flag for
//! [`Condvar::wait_timeout`]).

use crate::rt;
use std::sync::PoisonError;

pub mod atomic;

/// Mutual exclusion with every acquisition a scheduling point.
///
/// The data itself lives in a real `std::sync::Mutex`, which the model
/// bookkeeping keeps uncontended during an execution; outside one it
/// simply *is* the lock.
pub struct Mutex<T> {
    id: std::sync::OnceLock<rt::ObjId>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            id: std::sync::OnceLock::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    fn id(&self) -> rt::ObjId {
        *self.id.get_or_init(rt::new_obj_id)
    }

    /// Acquires the mutex, blocking the model thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        rt::mutex_lock(self.id());
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    /// Attempts the acquisition without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if !rt::mutex_try_lock(self.id()) {
            return None;
        }
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard {
                lock: self,
                inner: Some(inner),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => {
                // Only reachable in pass-through mode (the model grants
                // exclusively); undo nothing — model bookkeeping was a
                // no-op there.
                None
            }
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

/// RAII guard for [`Mutex`]; releases on drop. The release is a pure
/// bookkeeping change (never a scheduling point), which keeps drops
/// during unwinding safe.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(std_g) = self.inner.take() {
            drop(std_g);
            rt::mutex_unlock(self.lock.id());
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable paired with [`Mutex`].
///
/// In the model, a plain [`Condvar::wait`] is only woken by a
/// notification — a lost wakeup is an observable deadlock. A
/// [`Condvar::wait_timeout`] is additionally "rescued" (its timeout
/// fires) when no other thread can make progress, which is the role a
/// real timeout plays without making the state space infinite.
pub struct Condvar {
    id: std::sync::OnceLock<rt::ObjId>,
    std_cv: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condvar with no waiters.
    pub fn new() -> Condvar {
        Condvar {
            id: std::sync::OnceLock::new(),
            std_cv: std::sync::Condvar::new(),
        }
    }

    fn id(&self) -> rt::ObjId {
        *self.id.get_or_init(rt::new_obj_id)
    }

    /// Releases the guard, blocks until notified, re-acquires.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        let std_g = guard.inner.take().expect("guard still holds the lock");
        if rt::in_execution() {
            drop(std_g); // model bookkeeping owns the blocking
            rt::cv_wait(self.id(), lock.id(), false);
            let inner = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
            MutexGuard {
                lock,
                inner: Some(inner),
            }
        } else {
            let inner = self
                .std_cv
                .wait(std_g)
                .unwrap_or_else(PoisonError::into_inner);
            MutexGuard {
                lock,
                inner: Some(inner),
            }
        }
    }

    /// [`Condvar::wait`] with a timeout; the flag reports whether the
    /// wait ended by timeout rather than notification.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let lock = guard.lock;
        let std_g = guard.inner.take().expect("guard still holds the lock");
        if rt::in_execution() {
            drop(std_g);
            let timed_out = rt::cv_wait(self.id(), lock.id(), true);
            let inner = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
            (
                MutexGuard {
                    lock,
                    inner: Some(inner),
                },
                timed_out,
            )
        } else {
            let (inner, res) = self
                .std_cv
                .wait_timeout(std_g, dur)
                .unwrap_or_else(PoisonError::into_inner);
            (
                MutexGuard {
                    lock,
                    inner: Some(inner),
                },
                res.timed_out(),
            )
        }
    }

    /// Wakes one waiter (FIFO in the model, like a fair queue).
    pub fn notify_one(&self) {
        if rt::in_execution() {
            rt::cv_notify(self.id(), false);
        } else {
            self.std_cv.notify_one();
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if rt::in_execution() {
            rt::cv_notify(self.id(), true);
        } else {
            self.std_cv.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Reference-counted pointer whose clone and drop are scheduling points
/// (publication and release order are part of the explored schedule).
pub struct Arc<T: ?Sized>(std::sync::Arc<T>);

impl<T> Arc<T> {
    /// Moves `value` behind a shared reference count.
    pub fn new(value: T) -> Arc<T> {
        Arc(std::sync::Arc::new(value))
    }
}

impl<T: ?Sized> Arc<T> {
    /// The number of strong references (used by the cache's pin check).
    pub fn strong_count(this: &Arc<T>) -> usize {
        std::sync::Arc::strong_count(&this.0)
    }

    /// Whether two `Arc`s point at the same allocation.
    pub fn ptr_eq(this: &Arc<T>, other: &Arc<T>) -> bool {
        std::sync::Arc::ptr_eq(&this.0, &other.0)
    }
}

impl<T: ?Sized> Clone for Arc<T> {
    fn clone(&self) -> Arc<T> {
        rt::yield_point();
        Arc(std::sync::Arc::clone(&self.0))
    }
}

impl<T: ?Sized> Drop for Arc<T> {
    fn drop(&mut self) {
        // yield_point is already a no-op while panicking, keeping
        // unwind-time drops safe.
        rt::yield_point();
    }
}

impl<T: ?Sized> std::ops::Deref for Arc<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> AsRef<T> for Arc<T> {
    fn as_ref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.0, f)
    }
}

impl<T: ?Sized + std::fmt::Display> std::fmt::Display for Arc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&self.0, f)
    }
}

impl<T: Default> Default for Arc<T> {
    fn default() -> Arc<T> {
        Arc::new(T::default())
    }
}
