//! # theme-communities
//!
//! A Rust implementation of *Finding Theme Communities from Database
//! Networks: from Mining to Indexing and Query Answering* (Chu et al.,
//! VLDB 2019).
//!
//! A **database network** is an undirected graph in which every vertex
//! carries a transaction database. A **theme community** is a cohesively
//! connected subgraph whose member vertices all exhibit a common frequent
//! pattern (the *theme*). This facade crate re-exports the workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`graph`] | undirected graph substrate: triangles, components, k-truss, k-core, BFS sampling |
//! | [`txdb`]  | transaction databases, patterns, vertical (tidset) mining, Apriori joins |
//! | [`core`]  | database networks, theme networks, edge cohesion, MPTD, TCS / TCFA / TCFI miners, truss decomposition |
//! | [`index`] | the TC-Tree index and its query algorithms (QBA / QBP) |
//! | [`data`]  | dataset generators (check-in, co-author, synthetic, planted) and text I/O |
//! | [`store`] | the disk-backed binary segment format and lazy TC-Tree reader |
//! | [`serve`] | the TCP query-serving daemon and its blocking client |
//! | [`util`]  | hashing, bitsets, float ordering, heap accounting, CRC-32 |
//!
//! ## Quickstart
//!
//! ```
//! use theme_communities::core::{DatabaseNetworkBuilder, TcfiMiner, Miner};
//!
//! // Three mutual friends who all frequently buy {beer, diapers} together.
//! let mut b = DatabaseNetworkBuilder::new();
//! let beer = b.intern_item("beer");
//! let diapers = b.intern_item("diapers");
//! for v in 0..3u32 {
//!     for _ in 0..10 {
//!         b.add_transaction(v, &[beer, diapers]);
//!     }
//! }
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let network = b.build().unwrap();
//!
//! let result = TcfiMiner::default().mine(&network, 0.5);
//! let communities = result.communities();
//! assert_eq!(communities.len(), 3); // {beer}, {diapers}, {beer, diapers}
//! ```

pub use tc_core as core;
pub use tc_data as data;
pub use tc_graph as graph;
pub use tc_index as index;
pub use tc_serve as serve;
pub use tc_store as store;
pub use tc_txdb as txdb;
pub use tc_util as util;
