//! Property: parallel TC-Tree construction ≡ serial construction, down to
//! the serialized bytes, across random networks and thread counts.
//!
//! The parallel builder's contract is not "same set of nodes" but "same
//! *arena*": node ids, child order, truss payloads — everything a
//! serializer can observe — must be byte-identical whether the tree was
//! built inline or fanned out across the work-stealing executor. Both the
//! `tc-store` segment writer and the text writer are canonical functions
//! of the arena, so comparing their output compares the whole structure
//! at once.

use proptest::prelude::*;
use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder};
use tc_index::TcTreeBuilder;
use tc_txdb::Item;

const MAX_V: u32 = 9;
const MAX_ITEMS: u32 = 6;

/// Builds a valid network from arbitrary raw parts: endpoints are reduced
/// mod the vertex count, self loops dropped, transactions deduplicated.
fn build_network(n: u32, raw_edges: &[(u32, u32)], raw_txs: &[(u32, Vec<u32>)]) -> DatabaseNetwork {
    let mut b = DatabaseNetworkBuilder::new();
    let items: Vec<Item> = (0..MAX_ITEMS)
        .map(|i| b.intern_item(&format!("w{i}")))
        .collect();
    for &(u, v) in raw_edges {
        let (u, v) = (u % n, v % n);
        if u != v {
            b.add_edge(u, v);
        }
    }
    for (v, tx) in raw_txs {
        let mut ids: Vec<u32> = tx.iter().map(|&i| i % MAX_ITEMS).collect();
        ids.sort_unstable();
        ids.dedup();
        let tx: Vec<Item> = ids.into_iter().map(|i| items[i as usize]).collect();
        b.add_transaction(v % n, &tx);
    }
    b.ensure_vertex(n - 1);
    b.build().unwrap()
}

fn segment_bytes(tree: &tc_index::TcTree) -> Vec<u8> {
    let mut buf = Vec::new();
    tc_store::save_tree_segment(tree, &mut buf).unwrap();
    buf
}

fn text_bytes(tree: &tc_index::TcTree) -> Vec<u8> {
    let mut buf = Vec::new();
    tree.save(&mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_build_is_byte_identical_to_serial(
        n in 3u32..MAX_V,
        raw_edges in prop::collection::vec((0u32..64, 0u32..64), 6..32),
        raw_txs in prop::collection::vec((0u32..64, prop::collection::vec(0u32..64, 1..5)), 6..48),
        max_len_idx in 0usize..3,
    ) {
        let max_len = [1usize, 2, usize::MAX][max_len_idx];
        let net = build_network(n, &raw_edges, &raw_txs);
        let serial = TcTreeBuilder { threads: 1, max_len }.build(&net);
        let serial_seg = segment_bytes(&serial);
        let serial_txt = text_bytes(&serial);
        for threads in [2, 3, 8] {
            let parallel = TcTreeBuilder { threads, max_len }.build(&net);
            prop_assert_eq!(
                serial.num_nodes(),
                parallel.num_nodes(),
                "node count diverged at {} threads",
                threads
            );
            prop_assert_eq!(
                &serial_seg,
                &segment_bytes(&parallel),
                "segment bytes diverged at {} threads",
                threads
            );
            prop_assert_eq!(
                &serial_txt,
                &text_bytes(&parallel),
                "text bytes diverged at {} threads",
                threads
            );
            // The counter stats are part of the determinism contract too
            // (build_secs is wall-clock and excluded).
            let (s, p) = (serial.stats(), parallel.stats());
            prop_assert_eq!(s.candidates, p.candidates);
            prop_assert_eq!(s.decompositions, p.decompositions);
            prop_assert_eq!(s.pruned_by_intersection, p.pruned_by_intersection);
        }
    }

    #[test]
    fn repeated_parallel_builds_are_reproducible(
        n in 3u32..MAX_V,
        raw_edges in prop::collection::vec((0u32..64, 0u32..64), 6..28),
        raw_txs in prop::collection::vec((0u32..64, prop::collection::vec(0u32..64, 1..4)), 6..40),
    ) {
        let net = build_network(n, &raw_edges, &raw_txs);
        let first = TcTreeBuilder { threads: 8, max_len: usize::MAX }.build(&net);
        let reference = segment_bytes(&first);
        for _ in 0..2 {
            let again = TcTreeBuilder { threads: 8, max_len: usize::MAX }.build(&net);
            prop_assert_eq!(&reference, &segment_bytes(&again));
        }
    }
}
