//! The materialisation trait surface: how much of an index is resident.
//!
//! Every index backend answers the same two questions — *how many nodes
//! are in memory right now* (a gauge that a bounded cache moves both
//! ways) and *how much materialisation work has been done since open* (a
//! counter that only grows). The fully in-memory [`TcTree`] answers
//! trivially; the lazy segment reader in `tc-store` answers from its
//! node cache. The serving layer reports both through this trait without
//! knowing which backend it holds.

use crate::tree::TcTree;

/// Residency accounting for an index backend.
///
/// `materialized_nodes` is a **gauge** — it decrements when a bounded
/// cache evicts — while `materialized_total` is a **counter**:
/// re-materialising an evicted node counts again, so
/// `materialized_total - materialized_nodes` (for an eager backend, `0`)
/// measures redundant parse work caused by the byte budget.
pub trait Materialization {
    /// Nodes currently resident in memory (excluding the root, matching
    /// [`TcTree::num_nodes`] conventions where applicable).
    fn materialized_nodes(&self) -> usize;

    /// Nodes materialised since open, cumulative.
    fn materialized_total(&self) -> u64;
}

/// An in-memory tree is always fully materialised: the gauge equals the
/// node count and never moves after build.
impl Materialization for TcTree {
    fn materialized_nodes(&self) -> usize {
        self.num_nodes()
    }

    fn materialized_total(&self) -> u64 {
        self.num_nodes() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TcTreeBuilder;
    use tc_core::DatabaseNetworkBuilder;

    #[test]
    fn in_memory_tree_is_fully_materialized() {
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        for v in 0..3u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[x]);
            }
        }
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        let tree = TcTreeBuilder::default().build(&b.build().unwrap());
        let m: &dyn Materialization = &tree;
        assert_eq!(m.materialized_nodes(), tree.num_nodes());
        assert_eq!(m.materialized_total(), tree.num_nodes() as u64);
    }
}
