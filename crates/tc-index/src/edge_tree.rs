//! TC-Tree construction over **edge database networks** — the second half
//! of the paper's §8 future work ("extend TCFI *and TC-Tree* …").
//!
//! The TC-Tree structure is representation-agnostic: a node stores a
//! pattern (via its branching item) and a decomposed truss `L_p`, which is
//! just a level list of `(α_k, edge set)` — identical for vertex- and
//! edge-held databases because Theorem 6.1 only relies on the peeling
//! semantics. This module therefore only supplies a *builder*; the
//! resulting [`TcTree`] answers QBA/QBP queries and round-trips through
//! the persistence format unchanged.

use crate::tree::{build_nodes_parallel, CandidateOutcome, TcTree};
use tc_core::EdgeDatabaseNetwork;
use tc_txdb::Pattern;

/// Configuration for building an edge-network TC-Tree.
#[derive(Debug, Clone)]
pub struct EdgeTcTreeBuilder {
    /// Worker threads for every construction phase (layer 1 and the
    /// per-level candidate fan-out).
    pub threads: usize,
    /// Maximum pattern length to index.
    pub max_len: usize,
}

impl Default for EdgeTcTreeBuilder {
    fn default() -> Self {
        EdgeTcTreeBuilder {
            threads: 4,
            max_len: usize::MAX,
        }
    }
}

impl EdgeTcTreeBuilder {
    /// Builds the TC-Tree of an edge database network (Algorithm 4 with
    /// edge-pattern trusses), on the shared parallel set-enumeration
    /// engine of [`crate::tree`]. Unlike the vertex builder there is no
    /// trivial-theme short-circuit: every candidate surviving the
    /// intersection prune is decomposed, preserving this builder's
    /// historical counter semantics.
    pub fn build(&self, network: &EdgeDatabaseNetwork) -> TcTree {
        let layer1 = |item| network.decompose_edge_truss(&Pattern::singleton(item), None);
        let join = |pattern: &Pattern, intersection: &[tc_graph::EdgeKey]| {
            CandidateOutcome::Decomposed(network.decompose_edge_truss(pattern, Some(intersection)))
        };
        let (nodes, stats) = build_nodes_parallel(
            self.threads,
            self.max_len,
            network.items_in_use(),
            &layer1,
            &join,
        );
        TcTree::from_parts(nodes, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::{EdgeDatabaseNetworkBuilder, EdgeTcfiMiner};

    /// Two triangles: one whose conversations are about {a, b}, one about
    /// {b, c}, bridged by a theme-less edge.
    fn network() -> EdgeDatabaseNetwork {
        let mut b = EdgeDatabaseNetworkBuilder::new();
        let ia = b.intern_item("a");
        let ib = b.intern_item("b");
        let ic = b.intern_item("c");
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            for _ in 0..4 {
                b.add_transaction(u, v, &[ia, ib]);
            }
        }
        for (u, v) in [(3, 4), (4, 5), (3, 5)] {
            for _ in 0..4 {
                b.add_transaction(u, v, &[ib, ic]);
            }
        }
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn tree_indexes_every_qualified_edge_pattern() {
        let net = network();
        let tree = EdgeTcTreeBuilder::default().build(&net);
        let mined = EdgeTcfiMiner::default().mine(&net, 0.0);
        assert_eq!(tree.num_nodes(), mined.np());
        // {a}, {b}, {c}, {a,b}, {b,c} — never {a,c} or {a,b,c}.
        assert_eq!(tree.num_nodes(), 5);
    }

    #[test]
    fn queries_match_fresh_edge_mining() {
        let net = network();
        let tree = EdgeTcTreeBuilder::default().build(&net);
        for alpha in [0.0, 0.5, 0.9, 1.5] {
            let mined = EdgeTcfiMiner::default().mine(&net, alpha);
            let answered = tree.query_by_alpha(alpha);
            assert_eq!(answered.retrieved_nodes, mined.np(), "alpha = {alpha}");
            let mut got: Vec<_> = answered
                .trusses
                .iter()
                .map(|t| (t.pattern.clone(), t.edges.clone()))
                .collect();
            got.sort();
            let mut want: Vec<_> = mined
                .trusses
                .iter()
                .map(|t| (t.pattern.clone(), t.edges.clone()))
                .collect();
            want.sort();
            assert_eq!(got, want, "alpha = {alpha}");
        }
    }

    #[test]
    fn persistence_roundtrip() {
        let net = network();
        let tree = EdgeTcTreeBuilder::default().build(&net);
        let mut buf = Vec::new();
        tree.save(&mut buf).unwrap();
        let loaded = TcTree::load(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.num_nodes(), tree.num_nodes());
        for alpha in [0.0, 0.5, 1.0] {
            assert_eq!(
                loaded.query_by_alpha(alpha).retrieved_nodes,
                tree.query_by_alpha(alpha).retrieved_nodes
            );
        }
    }

    #[test]
    fn single_vs_multi_thread_builds_agree() {
        let net = network();
        let t1 = EdgeTcTreeBuilder {
            threads: 1,
            max_len: usize::MAX,
        }
        .build(&net);
        let t4 = EdgeTcTreeBuilder {
            threads: 4,
            max_len: usize::MAX,
        }
        .build(&net);
        assert_eq!(t1.num_nodes(), t4.num_nodes());
        let p1: Vec<_> = t1.nodes().iter().map(|n| n.pattern.clone()).collect();
        let p4: Vec<_> = t4.nodes().iter().map(|n| n.pattern.clone()).collect();
        assert_eq!(p1, p4);
    }

    #[test]
    fn decomposition_levels_reconstruct_edge_trusses() {
        let net = network();
        let tree = EdgeTcTreeBuilder::default().build(&net);
        for node in tree.nodes().iter().skip(1) {
            for alpha in [0.0, 0.3, 0.8, 1.2] {
                let reconstructed = node.truss.edges_at(alpha);
                let direct = net.maximal_edge_pattern_truss(&node.pattern, alpha, None);
                assert_eq!(reconstructed, direct.edges, "{} at {alpha}", node.pattern);
            }
        }
    }

    #[test]
    fn empty_network_builds_root_only() {
        let net = EdgeDatabaseNetworkBuilder::new().build().unwrap();
        let tree = EdgeTcTreeBuilder::default().build(&net);
        assert_eq!(tree.num_nodes(), 0);
    }
}
