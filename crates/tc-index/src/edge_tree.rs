//! TC-Tree construction over **edge database networks** — the second half
//! of the paper's §8 future work ("extend TCFI *and TC-Tree* …").
//!
//! The TC-Tree structure is representation-agnostic: a node stores a
//! pattern (via its branching item) and a decomposed truss `L_p`, which is
//! just a level list of `(α_k, edge set)` — identical for vertex- and
//! edge-held databases because Theorem 6.1 only relies on the peeling
//! semantics. This module therefore only supplies a *builder*; the
//! resulting [`TcTree`] answers QBA/QBP queries and round-trips through
//! the persistence format unchanged.

use crate::tree::{BuildStats, TcNode, TcTree};
use std::collections::VecDeque;
use tc_core::{EdgeDatabaseNetwork, TrussDecomposition};
use tc_txdb::{Item, Pattern};
use tc_util::Stopwatch;

/// Configuration for building an edge-network TC-Tree.
#[derive(Debug, Clone)]
pub struct EdgeTcTreeBuilder {
    /// Worker threads for layer 1.
    pub threads: usize,
    /// Maximum pattern length to index.
    pub max_len: usize,
}

impl Default for EdgeTcTreeBuilder {
    fn default() -> Self {
        EdgeTcTreeBuilder {
            threads: 4,
            max_len: usize::MAX,
        }
    }
}

impl EdgeTcTreeBuilder {
    /// Builds the TC-Tree of an edge database network (Algorithm 4 with
    /// edge-pattern trusses).
    pub fn build(&self, network: &EdgeDatabaseNetwork) -> TcTree {
        let sw = Stopwatch::start();
        let mut stats = BuildStats::default();
        let mut nodes = vec![TcNode {
            item: Item(0),
            pattern: Pattern::empty(),
            parent: 0,
            children: Vec::new(),
            truss: TrussDecomposition::default(),
        }];

        // Layer 1, parallel across items.
        let items = network.items_in_use();
        stats.candidates += items.len();
        stats.decompositions += items.len();
        let layer1 = decompose_items_parallel(network, &items, self.threads.max(1));

        let mut queue: VecDeque<u32> = VecDeque::new();
        for (item, truss) in layer1 {
            if truss.is_empty() {
                continue;
            }
            let id = nodes.len() as u32;
            nodes.push(TcNode {
                item,
                pattern: Pattern::singleton(item),
                parent: 0,
                children: Vec::new(),
                truss,
            });
            nodes[0].children.push(id);
            queue.push_back(id);
        }

        // Breadth-first expansion with intersection-restricted computation.
        while let Some(nf) = queue.pop_front() {
            if nodes[nf as usize].pattern.len() >= self.max_len {
                continue;
            }
            let parent = nodes[nf as usize].parent;
            let f_item = nodes[nf as usize].item;
            let siblings: Vec<u32> = nodes[parent as usize]
                .children
                .iter()
                .copied()
                .filter(|&nb| nodes[nb as usize].item > f_item)
                .collect();
            if siblings.is_empty() {
                continue;
            }
            let f_edges = nodes[nf as usize].truss.edges_at(0.0);
            for nb in siblings {
                stats.candidates += 1;
                let b_edges = nodes[nb as usize].truss.edges_at(0.0);
                let intersection = intersect_sorted(&f_edges, &b_edges);
                if intersection.is_empty() {
                    stats.pruned_by_intersection += 1;
                    continue;
                }
                let pattern = nodes[nf as usize]
                    .pattern
                    .with_item(nodes[nb as usize].item);
                stats.decompositions += 1;
                let truss = network.decompose_edge_truss(&pattern, Some(&intersection));
                if truss.is_empty() {
                    continue;
                }
                let id = nodes.len() as u32;
                nodes.push(TcNode {
                    item: nodes[nb as usize].item,
                    pattern,
                    parent: nf,
                    children: Vec::new(),
                    truss,
                });
                nodes[nf as usize].children.push(id);
                queue.push_back(id);
            }
        }

        stats.build_secs = sw.elapsed_secs();
        TcTree::from_parts(nodes, stats)
    }
}

fn decompose_items_parallel(
    network: &EdgeDatabaseNetwork,
    items: &[Item],
    threads: usize,
) -> Vec<(Item, TrussDecomposition)> {
    let decompose_one = |item: Item| network.decompose_edge_truss(&Pattern::singleton(item), None);
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(|&i| (i, decompose_one(i))).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let collected = parking_lot::Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, decompose_one(items[i])));
                }
                collected.lock().extend(local);
            });
        }
    });
    let mut indexed = collected.into_inner();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(i, d)| (items[i], d)).collect()
}

fn intersect_sorted(a: &[tc_graph::EdgeKey], b: &[tc_graph::EdgeKey]) -> Vec<tc_graph::EdgeKey> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::{EdgeDatabaseNetworkBuilder, EdgeTcfiMiner};

    /// Two triangles: one whose conversations are about {a, b}, one about
    /// {b, c}, bridged by a theme-less edge.
    fn network() -> EdgeDatabaseNetwork {
        let mut b = EdgeDatabaseNetworkBuilder::new();
        let ia = b.intern_item("a");
        let ib = b.intern_item("b");
        let ic = b.intern_item("c");
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            for _ in 0..4 {
                b.add_transaction(u, v, &[ia, ib]);
            }
        }
        for (u, v) in [(3, 4), (4, 5), (3, 5)] {
            for _ in 0..4 {
                b.add_transaction(u, v, &[ib, ic]);
            }
        }
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn tree_indexes_every_qualified_edge_pattern() {
        let net = network();
        let tree = EdgeTcTreeBuilder::default().build(&net);
        let mined = EdgeTcfiMiner::default().mine(&net, 0.0);
        assert_eq!(tree.num_nodes(), mined.np());
        // {a}, {b}, {c}, {a,b}, {b,c} — never {a,c} or {a,b,c}.
        assert_eq!(tree.num_nodes(), 5);
    }

    #[test]
    fn queries_match_fresh_edge_mining() {
        let net = network();
        let tree = EdgeTcTreeBuilder::default().build(&net);
        for alpha in [0.0, 0.5, 0.9, 1.5] {
            let mined = EdgeTcfiMiner::default().mine(&net, alpha);
            let answered = tree.query_by_alpha(alpha);
            assert_eq!(answered.retrieved_nodes, mined.np(), "alpha = {alpha}");
            let mut got: Vec<_> = answered
                .trusses
                .iter()
                .map(|t| (t.pattern.clone(), t.edges.clone()))
                .collect();
            got.sort();
            let mut want: Vec<_> = mined
                .trusses
                .iter()
                .map(|t| (t.pattern.clone(), t.edges.clone()))
                .collect();
            want.sort();
            assert_eq!(got, want, "alpha = {alpha}");
        }
    }

    #[test]
    fn persistence_roundtrip() {
        let net = network();
        let tree = EdgeTcTreeBuilder::default().build(&net);
        let mut buf = Vec::new();
        tree.save(&mut buf).unwrap();
        let loaded = TcTree::load(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.num_nodes(), tree.num_nodes());
        for alpha in [0.0, 0.5, 1.0] {
            assert_eq!(
                loaded.query_by_alpha(alpha).retrieved_nodes,
                tree.query_by_alpha(alpha).retrieved_nodes
            );
        }
    }

    #[test]
    fn single_vs_multi_thread_builds_agree() {
        let net = network();
        let t1 = EdgeTcTreeBuilder {
            threads: 1,
            max_len: usize::MAX,
        }
        .build(&net);
        let t4 = EdgeTcTreeBuilder {
            threads: 4,
            max_len: usize::MAX,
        }
        .build(&net);
        assert_eq!(t1.num_nodes(), t4.num_nodes());
        let p1: Vec<_> = t1.nodes().iter().map(|n| n.pattern.clone()).collect();
        let p4: Vec<_> = t4.nodes().iter().map(|n| n.pattern.clone()).collect();
        assert_eq!(p1, p4);
    }

    #[test]
    fn decomposition_levels_reconstruct_edge_trusses() {
        let net = network();
        let tree = EdgeTcTreeBuilder::default().build(&net);
        for node in tree.nodes().iter().skip(1) {
            for alpha in [0.0, 0.3, 0.8, 1.2] {
                let reconstructed = node.truss.edges_at(alpha);
                let direct = net.maximal_edge_pattern_truss(&node.pattern, alpha, None);
                assert_eq!(reconstructed, direct.edges, "{} at {alpha}", node.pattern);
            }
        }
    }

    #[test]
    fn empty_network_builds_root_only() {
        let net = EdgeDatabaseNetworkBuilder::new().build().unwrap();
        let tree = EdgeTcTreeBuilder::default().build(&net);
        assert_eq!(tree.num_nodes(), 0);
    }
}
