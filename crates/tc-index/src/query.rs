//! TC-Tree query answering — §6.3, Algorithm 5.
//!
//! A query `(q, α_q)` asks for every maximal pattern truss
//! `C*_p(α_q) ≠ ∅` with `p ⊆ q`. The answer is collected by a breadth-first
//! walk that prunes (a) subtrees whose branching item is not in `q` (no
//! descendant pattern can be a sub-pattern of `q`) and (b) subtrees whose
//! node truss is already empty at `α_q` (Proposition 5.2).

use crate::tree::TcTree;
use tc_core::{extract_communities, PatternTruss, ThemeCommunity};
use tc_txdb::Pattern;
use tc_util::Stopwatch;

/// The answer to a TC-Tree query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The query pattern `q`.
    pub query: Pattern,
    /// The threshold `α_q`.
    pub alpha: f64,
    /// Every non-empty `C*_p(α_q)` with `p ⊆ q`, in tree BFS order.
    pub trusses: Vec<PatternTruss>,
    /// Nodes whose truss was reconstructed non-empty — the paper's
    /// "Retrieved Nodes (RN)" metric of Figure 5.
    pub retrieved_nodes: usize,
    /// Total nodes visited during the walk (including pruned frontier).
    pub visited_nodes: usize,
    /// Wall-clock query time in seconds.
    pub elapsed_secs: f64,
}

impl QueryResult {
    /// Splits every retrieved truss into theme communities.
    pub fn communities(&self) -> Vec<ThemeCommunity> {
        self.trusses.iter().flat_map(extract_communities).collect()
    }
}

impl TcTree {
    /// Algorithm 5: answers `(q, α_q)`.
    pub fn query(&self, q: &Pattern, alpha_q: f64) -> QueryResult {
        let sw = Stopwatch::start();
        let mut trusses = Vec::new();
        let mut visited = 0usize;
        let mut queue = std::collections::VecDeque::from([0u32]);
        while let Some(nf) = queue.pop_front() {
            for &nc in &self.node(nf).children {
                let node = self.node(nc);
                visited += 1;
                // Line 4: prune subtrees branching on items outside q.
                if !q.contains(node.item) {
                    continue;
                }
                // Line 5: reconstruct C*_pc(α_q) from L_pc (Equation 1).
                let truss = node.truss.truss_at(alpha_q);
                // Line 6: empty ⇒ prune the subtree (Proposition 5.2).
                if truss.is_empty() {
                    continue;
                }
                trusses.push(truss);
                queue.push_back(nc);
            }
        }
        QueryResult {
            query: q.clone(),
            alpha: alpha_q,
            retrieved_nodes: trusses.len(),
            visited_nodes: visited,
            trusses,
            elapsed_secs: sw.elapsed_secs(),
        }
    }

    /// Query-by-alpha (QBA, §7.3): `q = S`, so only `α_q` filters.
    pub fn query_by_alpha(&self, alpha_q: f64) -> QueryResult {
        // The full item set: every layer-1 item is a child of the root.
        let all_items: Pattern = self
            .node(0)
            .children
            .iter()
            .map(|&c| self.node(c).item)
            .collect();
        self.query(&all_items, alpha_q)
    }

    /// Query-by-pattern (QBP, §7.3): `α_q = 0`.
    pub fn query_by_pattern(&self, q: &Pattern) -> QueryResult {
        self.query(q, 0.0)
    }

    /// Community search through the index: every theme community containing
    /// `vertex` at threshold `alpha_q`, as `(pattern, community)` pairs in
    /// tree BFS order.
    ///
    /// Prunes whole subtrees once `vertex` leaves a node's truss — sound by
    /// Theorem 5.1 (`C*_{p'}(α) ⊆ C*_p(α)` for `p ⊆ p'`, so a vertex absent
    /// from `C*_p` is absent from every descendant's truss).
    pub fn query_vertex(
        &self,
        vertex: tc_graph::VertexId,
        alpha_q: f64,
    ) -> Vec<(Pattern, tc_core::ThemeCommunity)> {
        let mut out = Vec::new();
        let mut queue = std::collections::VecDeque::from([0u32]);
        while let Some(nf) = queue.pop_front() {
            for &nc in &self.node(nf).children {
                let node = self.node(nc);
                let truss = node.truss.truss_at(alpha_q);
                if !truss.contains_vertex(vertex) {
                    continue; // prunes the subtree (Theorem 5.1)
                }
                if let Some(c) = extract_communities(&truss)
                    .into_iter()
                    .find(|c| c.vertices.binary_search(&vertex).is_ok())
                {
                    out.push((node.pattern.clone(), c));
                }
                queue.push_back(nc);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TcTreeBuilder;
    use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder, Miner, TcfiMiner};

    fn network() -> DatabaseNetwork {
        // Same fixture as tree.rs: three triangles themed {a,b}, {b,c}, {a,c}.
        let mut b = DatabaseNetworkBuilder::new();
        let ia = b.intern_item("a");
        let ib = b.intern_item("b");
        let ic = b.intern_item("c");
        for v in 0..3u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[ia, ib]);
            }
        }
        for v in 3..6u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[ib, ic]);
            }
        }
        for v in 6..9u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[ia, ic]);
            }
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
        b.add_edge(6, 7).add_edge(7, 8).add_edge(6, 8);
        b.build().unwrap()
    }

    #[test]
    fn qba_matches_fresh_mining() {
        let net = network();
        let tree = TcTreeBuilder::default().build(&net);
        for alpha in [0.0, 0.3, 0.7, 1.2] {
            let answer = tree.query_by_alpha(alpha);
            let mined = TcfiMiner::default().mine(&net, alpha);
            assert_eq!(answer.retrieved_nodes, mined.np(), "alpha = {alpha}");
            // Compare edge sets pattern by pattern.
            let mut got: Vec<_> = answer
                .trusses
                .iter()
                .map(|t| (t.pattern.clone(), t.edges.clone()))
                .collect();
            got.sort();
            let mut want: Vec<_> = mined
                .trusses
                .iter()
                .map(|t| (t.pattern.clone(), t.edges.clone()))
                .collect();
            want.sort();
            assert_eq!(got, want, "alpha = {alpha}");
        }
    }

    #[test]
    fn qba_above_upper_bound_is_empty() {
        let net = network();
        let tree = TcTreeBuilder::default().build(&net);
        let bound = tree.alpha_upper_bound();
        let r = tree.query_by_alpha(bound);
        assert_eq!(r.retrieved_nodes, 0, "α* is exclusive");
        let r2 = tree.query_by_alpha(bound + 1.0);
        assert_eq!(r2.retrieved_nodes, 0);
    }

    #[test]
    fn qbp_returns_subpatterns_only() {
        let net = network();
        let tree = TcTreeBuilder::default().build(&net);
        let ia = net.item_space().get("a").unwrap();
        let ib = net.item_space().get("b").unwrap();
        let q = Pattern::new(vec![ia, ib]);
        let r = tree.query_by_pattern(&q);
        // Sub-patterns of {a,b}: {a}, {b}, {a,b} — all qualified here.
        assert_eq!(r.retrieved_nodes, 3);
        for t in &r.trusses {
            assert!(t.pattern.is_subset_of(&q), "{} ⊄ {}", t.pattern, q);
        }
    }

    #[test]
    fn qbp_singleton() {
        let net = network();
        let tree = TcTreeBuilder::default().build(&net);
        let ic = net.item_space().get("c").unwrap();
        let r = tree.query_by_pattern(&Pattern::singleton(ic));
        assert_eq!(r.retrieved_nodes, 1);
        assert_eq!(r.trusses[0].pattern, Pattern::singleton(ic));
    }

    #[test]
    fn qbp_unknown_item_is_empty() {
        let net = network();
        let tree = TcTreeBuilder::default().build(&net);
        let r = tree.query_by_pattern(&Pattern::singleton(tc_txdb::Item(77)));
        assert_eq!(r.retrieved_nodes, 0);
        assert!(r.trusses.is_empty());
    }

    #[test]
    fn empty_query_pattern_returns_nothing() {
        let net = network();
        let tree = TcTreeBuilder::default().build(&net);
        let r = tree.query(&Pattern::empty(), 0.0);
        assert_eq!(r.retrieved_nodes, 0);
        // Root's children all branch on items ∉ ∅.
        assert!(r.visited_nodes > 0);
    }

    #[test]
    fn pruning_skips_subtrees() {
        let net = network();
        let tree = TcTreeBuilder::default().build(&net);
        let ia = net.item_space().get("a").unwrap();
        let r = tree.query(&Pattern::singleton(ia), 0.0);
        // Visits the 3 level-1 children; only {a} retrieved, whose children
        // branch on b/c ∉ q. Visited = 3 (level 1) + |children of {a}|.
        assert_eq!(r.retrieved_nodes, 1);
        assert!(r.visited_nodes < tree.num_nodes() + 1);
    }

    #[test]
    fn communities_from_query() {
        let net = network();
        let tree = TcTreeBuilder::default().build(&net);
        let r = tree.query_by_alpha(0.0);
        let cs = r.communities();
        // {a}: 2 triangles, {b}: 2, {c}: 2, {a,b}: 1, {b,c}: 1, {a,c}: 1.
        assert_eq!(cs.len(), 9);
    }

    #[test]
    fn vertex_query_matches_direct_search() {
        let net = network();
        let tree = TcTreeBuilder::default().build(&net);
        for v in [0u32, 2, 6] {
            for alpha in [0.0, 0.5] {
                let via_tree = tree.query_vertex(v, alpha);
                // Compare against the non-indexed search for every pattern
                // the tree knows about.
                for (pattern, community) in &via_tree {
                    let direct = tc_core::community_of_vertex(&net, v, pattern, alpha).unwrap();
                    assert_eq!(&direct, community, "v={v}, α={alpha}, {pattern}");
                }
                // And completeness: every indexed pattern whose community
                // contains v is reported.
                for node in tree.nodes().iter().skip(1) {
                    if let Some(direct) =
                        tc_core::community_of_vertex(&net, v, &node.pattern, alpha)
                    {
                        assert!(
                            via_tree
                                .iter()
                                .any(|(p, c)| p == &node.pattern && c == &direct),
                            "missing ({}, v={v})",
                            node.pattern
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vertex_query_unknown_vertex_is_empty() {
        let net = network();
        let tree = TcTreeBuilder::default().build(&net);
        assert!(tree.query_vertex(999, 0.0).is_empty());
    }

    #[test]
    fn alpha_monotonicity_of_rn() {
        let net = network();
        let tree = TcTreeBuilder::default().build(&net);
        let mut prev = usize::MAX;
        for alpha in [0.0, 0.2, 0.5, 0.9, 1.3] {
            let rn = tree.query_by_alpha(alpha).retrieved_nodes;
            assert!(rn <= prev, "RN must not grow with α");
            prev = rn;
        }
    }
}
