//! TC-Tree persistence — the "data warehouse of maximal pattern trusses"
//! story of §6.
//!
//! A small line-oriented text format, versioned and self-describing:
//!
//! ```text
//! tctree v1
//! nodes <count-including-root>
//! node <id> <parent> <item>
//! levels <h>
//! level <alpha> <edge-count> <u1> <v1> <u2> <v2> …
//! …
//! end
//! ```
//!
//! Patterns are not stored — they are re-spelled from root paths at load
//! time, exactly as the in-memory SE-tree defines them.

use crate::tree::{TcNode, TcTree};
use std::io::{BufRead, Write};
use tc_core::{TrussDecomposition, TrussLevel};
use tc_txdb::{Item, Pattern};

/// Errors raised while reading a persisted TC-Tree — the shared
/// [`tc_util::LoadError`], re-exported so existing call sites keep
/// compiling unchanged.
pub use tc_util::LoadError;

fn corrupt(msg: impl Into<String>) -> LoadError {
    LoadError::Corrupt(format!("tctree: {}", msg.into()))
}

impl TcTree {
    /// Writes the tree to `w` in the v1 text format.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(w);
        writeln!(w, "tctree v1")?;
        writeln!(w, "nodes {}", self.nodes().len())?;
        for (id, node) in self.nodes().iter().enumerate() {
            writeln!(w, "node {} {} {}", id, node.parent, node.item.0)?;
            writeln!(w, "levels {}", node.truss.levels.len())?;
            for level in &node.truss.levels {
                write!(w, "level {} {}", level.alpha, level.edges.len())?;
                for &(u, v) in &level.edges {
                    write!(w, " {u} {v}")?;
                }
                writeln!(w)?;
            }
        }
        writeln!(w, "end")?;
        w.flush()
    }

    /// Writes to a file path.
    pub fn save_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.save(&mut f)
    }

    /// Reads a tree in the v1 text format.
    pub fn load<R: BufRead>(r: R) -> Result<TcTree, LoadError> {
        let mut lines = r.lines();
        let mut next_line = || -> Result<String, LoadError> {
            lines
                .next()
                .ok_or_else(|| corrupt("unexpected end of file"))?
                .map_err(LoadError::Io)
        };

        if next_line()?.trim() != "tctree v1" {
            return Err(corrupt("missing 'tctree v1' header"));
        }
        let nodes_line = next_line()?;
        let count: usize = nodes_line
            .strip_prefix("nodes ")
            .ok_or_else(|| corrupt("expected 'nodes <n>'"))?
            .trim()
            .parse()
            .map_err(|_| corrupt("bad node count"))?;
        if count == 0 {
            return Err(corrupt("a tree has at least the root node"));
        }

        let mut raw: Vec<(u32, Item, Vec<TrussLevel>)> = Vec::with_capacity(count);
        for expect_id in 0..count {
            let header = next_line()?;
            let mut parts = header.split_whitespace();
            if parts.next() != Some("node") {
                return Err(corrupt(format!("expected 'node' line, got '{header}'")));
            }
            let id: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| corrupt("bad node id"))?;
            if id != expect_id {
                return Err(corrupt(format!(
                    "node ids must be dense: got {id}, want {expect_id}"
                )));
            }
            let parent: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| corrupt("bad parent id"))?;
            if parent as usize >= count || (expect_id > 0 && parent as usize >= expect_id) {
                return Err(corrupt("parent must precede child"));
            }
            let item: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| corrupt("bad item id"))?;

            let levels_line = next_line()?;
            let h: usize = levels_line
                .strip_prefix("levels ")
                .ok_or_else(|| corrupt("expected 'levels <h>'"))?
                .trim()
                .parse()
                .map_err(|_| corrupt("bad level count"))?;
            let mut levels = Vec::with_capacity(h);
            let mut prev_alpha = f64::NEG_INFINITY;
            for _ in 0..h {
                let line = next_line()?;
                let mut p = line.split_whitespace();
                if p.next() != Some("level") {
                    return Err(corrupt("expected 'level' line"));
                }
                let alpha: f64 = p
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad level alpha"))?;
                if alpha <= prev_alpha {
                    return Err(corrupt("level alphas must strictly ascend"));
                }
                prev_alpha = alpha;
                let m: usize = p
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad edge count"))?;
                let mut edges = Vec::with_capacity(m);
                for _ in 0..m {
                    let u: u32 = p
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| corrupt("missing edge endpoint"))?;
                    let v: u32 = p
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| corrupt("missing edge endpoint"))?;
                    if u >= v {
                        return Err(corrupt("edges must be canonical (u < v)"));
                    }
                    edges.push((u, v));
                }
                if p.next().is_some() {
                    return Err(corrupt("trailing tokens on level line"));
                }
                levels.push(TrussLevel { alpha, edges });
            }
            raw.push((parent, Item(item), levels));
        }
        if next_line()?.trim() != "end" {
            return Err(corrupt("missing 'end' terminator"));
        }

        // Reassemble: patterns from root paths, children from parents.
        let mut nodes: Vec<TcNode> = Vec::with_capacity(count);
        for (id, (parent, item, levels)) in raw.into_iter().enumerate() {
            let pattern = if id == 0 {
                Pattern::empty()
            } else {
                nodes[parent as usize].pattern.with_item(item)
            };
            let truss = TrussDecomposition {
                pattern: pattern.clone(),
                levels,
            };
            nodes.push(TcNode {
                item,
                pattern,
                parent,
                children: Vec::new(),
                truss,
            });
            if id > 0 {
                nodes[parent as usize].children.push(id as u32);
            }
        }
        Ok(TcTree::from_nodes(nodes))
    }

    /// Reads from a file path.
    pub fn load_from_path(path: &std::path::Path) -> Result<TcTree, LoadError> {
        let f = std::fs::File::open(path)?;
        TcTree::load(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TcTreeBuilder;
    use tc_core::DatabaseNetworkBuilder;

    fn sample_tree() -> TcTree {
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        let y = b.intern_item("y");
        for v in 0..4u32 {
            for _ in 0..3 {
                b.add_transaction(v, &[x, y]);
            }
            b.add_transaction(v, &[x]);
        }
        for (u, v) in [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        TcTreeBuilder::default().build(&b.build().unwrap())
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let tree = sample_tree();
        let mut buf = Vec::new();
        tree.save(&mut buf).unwrap();
        let loaded = TcTree::load(std::io::Cursor::new(&buf)).unwrap();

        assert_eq!(loaded.num_nodes(), tree.num_nodes());
        assert_eq!(loaded.max_depth(), tree.max_depth());
        for (a, b) in tree.nodes().iter().zip(loaded.nodes()) {
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.children, b.children);
            assert_eq!(a.truss.levels, b.truss.levels);
        }
    }

    #[test]
    fn roundtrip_queries_agree() {
        let tree = sample_tree();
        let mut buf = Vec::new();
        tree.save(&mut buf).unwrap();
        let loaded = TcTree::load(std::io::Cursor::new(&buf)).unwrap();
        for alpha in [0.0, 0.5, 1.0] {
            let a = tree.query_by_alpha(alpha);
            let b = loaded.query_by_alpha(alpha);
            assert_eq!(a.retrieved_nodes, b.retrieved_nodes);
        }
    }

    #[test]
    fn file_roundtrip() {
        let tree = sample_tree();
        let dir = std::env::temp_dir().join("tc_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.tct");
        tree.save_to_path(&path).unwrap();
        let loaded = TcTree::load_from_path(&path).unwrap();
        assert_eq!(loaded.num_nodes(), tree.num_nodes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_header() {
        let err = TcTree::load(std::io::Cursor::new(b"nottctree\n")).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_)));
    }

    #[test]
    fn rejects_truncated_file() {
        let tree = sample_tree();
        let mut buf = Vec::new();
        tree.save(&mut buf).unwrap();
        let cut = buf.len() / 2;
        let err = TcTree::load(std::io::Cursor::new(&buf[..cut])).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_) | LoadError::Io(_)));
    }

    #[test]
    fn rejects_non_canonical_edges() {
        let text = "tctree v1\nnodes 2\nnode 0 0 0\nlevels 0\nnode 1 0 5\nlevels 1\nlevel 0.5 1 3 2\nend\n";
        let err = TcTree::load(std::io::Cursor::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_)));
    }

    #[test]
    fn rejects_descending_alphas() {
        let text = "tctree v1\nnodes 2\nnode 0 0 0\nlevels 0\nnode 1 0 5\nlevels 2\nlevel 0.5 1 1 2\nlevel 0.3 1 2 3\nend\n";
        let err = TcTree::load(std::io::Cursor::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_)));
    }
}
