//! Theme-community indexing and query answering (paper §6).
//!
//! When a user supplies a new cohesion threshold `α`, the miners of
//! `tc-core` must recompute from scratch. This crate avoids that by
//! materialising a **data warehouse of maximal pattern trusses**:
//!
//! * [`tree`] — the TC-Tree (Algorithm 4), a set-enumeration tree whose
//!   nodes store decomposed maximal pattern trusses `L_p` (§6.1);
//! * [`query`] — Algorithm 5, answering `(q, α_q)` queries by a pruned
//!   breadth-first walk; includes the paper's QBA and QBP query modes;
//! * [`serialize`] — a versioned text format for persisting and reloading
//!   trees;
//! * [`materialize`] — the [`Materialization`] trait: residency
//!   accounting shared by eager trees and the lazy, cache-bounded
//!   segment reader in `tc-store`.

pub mod edge_tree;
pub mod materialize;
pub mod query;
pub mod serialize;
pub mod tree;

pub use edge_tree::EdgeTcTreeBuilder;
pub use materialize::Materialization;
pub use query::QueryResult;
pub use serialize::LoadError;
pub use tree::{BuildStats, TcNode, TcTree, TcTreeBuilder};
