//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use tc_graph::{
    bfs_edge_sample, connected_components, core_numbers, count_triangles, edge_support, k_truss,
    truss_numbers, GraphBuilder, UGraph,
};

/// Strategy: a random simple graph with up to `n` vertices and `m` candidate
/// edges (duplicates and orientation noise included on purpose — the builder
/// must canonicalise).
fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = UGraph> {
    prop::collection::vec((0..n, 0..n), 0..m).prop_map(move |pairs| {
        let mut b = GraphBuilder::new();
        b.ensure_vertex(0);
        for (u, v) in pairs {
            if u != v {
                b.add_edge(u, v);
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_is_symmetric(g in arb_graph(30, 120)) {
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
            prop_assert!(g.neighbors(u).contains(&v));
            prop_assert!(g.neighbors(v).contains(&u));
        }
    }

    #[test]
    fn neighbor_lists_sorted_unique(g in arb_graph(30, 120)) {
        for v in 0..g.num_vertices() as u32 {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
            prop_assert!(!ns.contains(&v), "no self loops");
        }
    }

    #[test]
    fn degree_sum_is_twice_edges(g in arb_graph(40, 150)) {
        let sum: usize = (0..g.num_vertices() as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
    }

    #[test]
    fn triangle_count_matches_brute_force(g in arb_graph(14, 50)) {
        let n = g.num_vertices() as u32;
        let mut brute = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                for w in (v + 1)..n {
                    if g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w) {
                        brute += 1;
                    }
                }
            }
        }
        prop_assert_eq!(count_triangles(&g), brute);
    }

    #[test]
    fn edge_support_matches_brute_force(g in arb_graph(14, 50)) {
        for (u, v) in g.edges() {
            let brute = (0..g.num_vertices() as u32)
                .filter(|&w| w != u && w != v && g.has_edge(u, w) && g.has_edge(v, w))
                .count();
            prop_assert_eq!(edge_support(&g, u, v), brute);
        }
    }

    #[test]
    fn ktruss_every_edge_has_enough_support(g in arb_graph(16, 60), k in 3usize..6) {
        let edges = k_truss(&g, k);
        // Re-check support *within the truss*.
        let sub = UGraph::from_edges(edges.iter().copied());
        for &(u, v) in &edges {
            prop_assert!(
                edge_support(&sub, u, v) >= k - 2,
                "edge ({u},{v}) support below k-2 inside the {k}-truss"
            );
        }
    }

    #[test]
    fn ktruss_shrinks_with_k(g in arb_graph(16, 60)) {
        let mut prev = g.num_edges();
        for k in 2..7 {
            let t = k_truss(&g, k).len();
            prop_assert!(t <= prev, "k-truss must shrink as k grows");
            prev = t;
        }
    }

    #[test]
    fn truss_numbers_consistent(g in arb_graph(12, 40)) {
        let tn = truss_numbers(&g);
        for k in 2..6usize {
            let direct: std::collections::BTreeSet<_> = k_truss(&g, k).into_iter().collect();
            let derived: std::collections::BTreeSet<_> =
                tn.iter().filter(|&(_, &t)| t >= k).map(|(&e, _)| e).collect();
            prop_assert_eq!(&direct, &derived, "k = {}", k);
        }
    }

    #[test]
    fn components_agree_with_reachability(g in arb_graph(20, 60)) {
        let c = connected_components(&g);
        // BFS reachability from each vertex must equal its label class.
        for (u, v) in g.edges() {
            prop_assert_eq!(c.labels[u as usize], c.labels[v as usize]);
        }
        let groups = c.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn core_numbers_at_most_degree(g in arb_graph(25, 80)) {
        let cores = core_numbers(&g);
        for v in 0..g.num_vertices() as u32 {
            prop_assert!(cores[v as usize] as usize <= g.degree(v));
        }
    }

    #[test]
    fn kcore_internal_degree_invariant(g in arb_graph(20, 70), k in 1u32..4) {
        let verts = tc_graph::k_core(&g, k);
        let set: std::collections::HashSet<_> = verts.iter().copied().collect();
        for &v in &verts {
            let internal = g.neighbors(v).iter().filter(|w| set.contains(w)).count();
            prop_assert!(internal >= k as usize, "vertex {v} has internal degree {internal} < {k}");
        }
    }

    #[test]
    fn sample_is_valid_subgraph(g in arb_graph(30, 120), target in 1usize..50) {
        let edges = bfs_edge_sample(&g, 0, target);
        for &(u, v) in &edges {
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn induced_subgraph_preserves_internal_edges(g in arb_graph(20, 60)) {
        let pick: Vec<u32> = (0..g.num_vertices() as u32).filter(|v| v % 2 == 0).collect();
        let (sub, map) = g.induced_subgraph(&pick);
        // Every sub edge maps to a real edge.
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(map[a as usize], map[b as usize]));
        }
        // Every internal edge of the selection appears.
        let set: std::collections::HashSet<_> = pick.iter().copied().collect();
        let internal = g
            .edges()
            .filter(|(u, v)| set.contains(u) && set.contains(v))
            .count();
        prop_assert_eq!(sub.num_edges(), internal);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clustering_coefficients_in_unit_interval(g in arb_graph(25, 80)) {
        for v in 0..g.num_vertices() as u32 {
            let c = tc_graph::metrics::local_clustering(&g, v);
            prop_assert!((0.0..=1.0).contains(&c), "c({v}) = {c}");
        }
        let avg = tc_graph::average_clustering(&g);
        prop_assert!((0.0..=1.0).contains(&avg));
        let t = tc_graph::transitivity(&g);
        prop_assert!((0.0..=1.0).contains(&t), "transitivity {t}");
    }

    #[test]
    fn degree_histogram_sums_to_vertex_count(g in arb_graph(25, 80)) {
        let hist = tc_graph::degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.num_vertices());
        // Weighted sum = total degree = 2m.
        let total: usize = hist.iter().enumerate().map(|(d, &n)| d * n).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn local_clustering_matches_bruteforce(g in arb_graph(12, 40)) {
        for v in 0..g.num_vertices() as u32 {
            let ns = g.neighbors(v);
            if ns.len() < 2 { continue; }
            let mut closed = 0;
            for i in 0..ns.len() {
                for j in (i + 1)..ns.len() {
                    if g.has_edge(ns[i], ns[j]) {
                        closed += 1;
                    }
                }
            }
            let expect = closed as f64 / (ns.len() * (ns.len() - 1) / 2) as f64;
            let got = tc_graph::metrics::local_clustering(&g, v);
            prop_assert!((got - expect).abs() < 1e-12, "v={v}: {got} vs {expect}");
        }
    }
}
