//! Breadth-first edge sampling.
//!
//! §7.1 of the paper: *"we use small database networks that are sampled from
//! the original database networks by performing a breadth first search from
//! a randomly picked seed vertex"*, stopping once a target number of edges
//! has been collected. The sample keeps original vertex ids so the caller
//! can carry vertex databases across.

use crate::graph::{EdgeKey, UGraph, VertexId};
use std::collections::VecDeque;
use tc_util::FxHashSet;

/// Collects approximately `target_edges` edges by BFS from `seed`.
///
/// The walk visits vertices in BFS discovery order; when a vertex is
/// admitted to the sample, every edge from it to an already-admitted vertex
/// is emitted. The walk stops as soon as the target is reached (the result
/// may exceed it by less than one vertex's degree, mirroring the paper's
/// "sampled database networks with 10,000 edges"). Edges are returned in
/// canonical sorted order.
///
/// Returns an empty list when `seed` is out of range or `target_edges == 0`.
pub fn bfs_edge_sample(g: &UGraph, seed: VertexId, target_edges: usize) -> Vec<EdgeKey> {
    if (seed as usize) >= g.num_vertices() || target_edges == 0 {
        return Vec::new();
    }

    // Pass 1: BFS discovery order from the seed.
    let mut seen: FxHashSet<VertexId> = tc_util::hash::fx_set_with_capacity(target_edges / 2);
    let mut queue = VecDeque::new();
    let mut order = Vec::new();
    seen.insert(seed);
    queue.push_back(seed);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if seen.insert(v) {
                queue.push_back(v);
            }
        }
    }

    // Pass 2: admit vertices in discovery order; emit edges into the
    // already-admitted prefix until the target is met. Each edge is emitted
    // exactly once — at its later-admitted endpoint.
    let mut edges = Vec::with_capacity(target_edges);
    let mut admitted: FxHashSet<VertexId> = tc_util::hash::fx_set_with_capacity(order.len());
    'outer: for &u in &order {
        admitted.insert(u);
        for &v in g.neighbors(u) {
            if v != u && admitted.contains(&v) {
                edges.push(crate::edge_key(u, v));
                if edges.len() >= target_edges {
                    break 'outer;
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UGraph;

    fn grid(w: u32, h: u32) -> UGraph {
        let mut edges = Vec::new();
        let idx = |x: u32, y: u32| y * w + x;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        UGraph::from_edges(edges)
    }

    #[test]
    fn sample_reaches_target() {
        let g = grid(20, 20);
        let edges = bfs_edge_sample(&g, 0, 100);
        assert!(edges.len() >= 100);
        assert!(edges.len() <= g.num_edges());
    }

    #[test]
    fn sample_is_subset_of_graph() {
        let g = grid(10, 10);
        for &(u, v) in &bfs_edge_sample(&g, 5, 50) {
            assert!(g.has_edge(u, v));
            assert!(u < v, "canonical form");
        }
    }

    #[test]
    fn sample_whole_graph_when_target_large() {
        let g = grid(5, 5);
        let edges = bfs_edge_sample(&g, 0, 10_000);
        assert_eq!(edges.len(), g.num_edges());
    }

    #[test]
    fn sample_connected() {
        // A BFS sample must induce a connected subgraph.
        let g = grid(15, 15);
        let edges = bfs_edge_sample(&g, 7, 80);
        let verts = crate::ktruss::edge_set_vertices(&edges);
        let remap: tc_util::FxHashMap<u32, u32> = verts
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let local: Vec<_> = edges.iter().map(|&(u, v)| (remap[&u], remap[&v])).collect();
        let labels = crate::components::components_of_edges(verts.len(), &local);
        assert_eq!(labels.num_components, 1);
    }

    #[test]
    fn out_of_range_seed_is_empty() {
        let g = grid(3, 3);
        assert!(bfs_edge_sample(&g, 999, 10).is_empty());
    }

    #[test]
    fn zero_target_is_empty() {
        let g = grid(3, 3);
        assert!(bfs_edge_sample(&g, 0, 0).is_empty());
    }

    #[test]
    fn disconnected_component_not_sampled() {
        let g = UGraph::from_edges([(0, 1), (1, 2), (5, 6), (6, 7)]);
        let edges = bfs_edge_sample(&g, 0, 100);
        assert!(edges.iter().all(|&(u, v)| u <= 2 && v <= 2));
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn deterministic() {
        let g = grid(12, 12);
        assert_eq!(bfs_edge_sample(&g, 3, 60), bfs_edge_sample(&g, 3, 60));
    }

    #[test]
    fn no_duplicate_edges() {
        let g = grid(8, 8);
        let edges = bfs_edge_sample(&g, 0, 40);
        let set: std::collections::HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), edges.len());
    }
}
