//! Structural graph metrics used to characterise generated datasets.
//!
//! Truss-based community detection lives and dies by triangle density, so
//! the generators' outputs are sanity-checked (and the CLI's `stats`
//! subcommand reports) clustering behaviour and degree shape.

use crate::graph::{UGraph, VertexId};
use crate::triangles::merge_common;

/// The local clustering coefficient of `v`: the fraction of its neighbor
/// pairs that are themselves adjacent. `0.0` for degree < 2.
pub fn local_clustering(g: &UGraph, v: VertexId) -> f64 {
    let d = g.degree(v);
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    let ns = g.neighbors(v);
    for &u in ns {
        merge_common(ns, g.neighbors(u), |w| {
            if w > u {
                closed += 1;
            }
        });
    }
    // Each closed pair {u, w} with u < w was counted once at u.
    closed as f64 / (d * (d - 1) / 2) as f64
}

/// The average local clustering coefficient over vertices with degree ≥ 2
/// (Watts–Strogatz definition restricted to meaningful vertices).
/// `0.0` when no such vertex exists.
pub fn average_clustering(g: &UGraph) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in 0..g.num_vertices() as VertexId {
        if g.degree(v) >= 2 {
            sum += local_clustering(g, v);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Global transitivity: `3·#triangles / #wedges` (paths of length 2).
/// `0.0` when the graph has no wedge.
pub fn transitivity(g: &UGraph) -> f64 {
    let wedges: u64 = (0..g.num_vertices() as VertexId)
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * crate::triangles::count_triangles(g) as f64 / wedges as f64
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &UGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_vertices() as VertexId {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Mean degree (`2m / n`); `0.0` for the empty graph.
pub fn mean_degree(g: &UGraph) -> f64 {
    if g.num_vertices() == 0 {
        return 0.0;
    }
    2.0 * g.num_edges() as f64 / g.num_vertices() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, UGraph};

    fn triangle() -> UGraph {
        UGraph::from_edges([(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let g = triangle();
        for v in 0..3 {
            assert_eq!(local_clustering(&g, v), 1.0);
        }
        assert_eq!(average_clustering(&g), 1.0);
        assert_eq!(transitivity(&g), 1.0);
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = UGraph::from_edges([(0, 1), (0, 2), (0, 3)]);
        assert_eq!(local_clustering(&g, 0), 0.0);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(transitivity(&g), 0.0);
    }

    #[test]
    fn low_degree_vertices_are_zero() {
        let g = UGraph::from_edges([(0, 1)]);
        assert_eq!(local_clustering(&g, 0), 0.0);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn paw_graph_partial_clustering() {
        // Triangle 0-1-2 plus pendant 3 on vertex 2.
        let g = UGraph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(local_clustering(&g, 0), 1.0);
        assert_eq!(local_clustering(&g, 1), 1.0);
        // Vertex 2: neighbors {0,1,3}; one closed pair of three.
        assert!((local_clustering(&g, 2) - 1.0 / 3.0).abs() < 1e-12);
        // Transitivity: 3·1 / (1 + 1 + 3 + 0) = 3/5.
        assert!((transitivity(&g) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_counts() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).add_edge(0, 2).add_edge(0, 3);
        b.ensure_vertex(4);
        let g = b.build();
        // degrees: 3,1,1,1,0
        assert_eq!(degree_histogram(&g), vec![1, 3, 0, 1]);
    }

    #[test]
    fn mean_degree_empty_and_simple() {
        assert_eq!(mean_degree(&UGraph::empty()), 0.0);
        assert_eq!(mean_degree(&triangle()), 2.0);
    }

    #[test]
    fn small_world_is_more_clustered_than_star_chain() {
        // Sanity link to the generators: lattice-heavy graphs cluster.
        let ring: Vec<(u32, u32)> = (0..12u32)
            .flat_map(|i| [(i, (i + 1) % 12), (i, (i + 2) % 12)])
            .collect();
        let g = UGraph::from_edges(ring);
        assert!(average_clustering(&g) > 0.3);
    }
}
