//! The core immutable undirected graph type.

use tc_util::HeapSize;

/// Vertex identifier. Vertices are dense `0..n` indices.
pub type VertexId = u32;

/// Canonical `(min, max)` edge key.
pub type EdgeKey = (VertexId, VertexId);

/// Incrementally collects edges, then freezes them into a [`UGraph`].
///
/// Self-loops are rejected at insertion; parallel edges are deduplicated at
/// [`GraphBuilder::build`] time. Vertex ids may be added in any order; the
/// vertex count is `max id + 1` unless raised with
/// [`GraphBuilder::ensure_vertex`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<EdgeKey>,
    min_vertices: u32,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder pre-sized for `edges` insertions.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            min_vertices: 0,
        }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Duplicate insertions are allowed and collapse at build time.
    ///
    /// # Panics
    /// Panics on the self-loop `u == v`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        assert_ne!(
            u, v,
            "self-loop ({u},{u}) rejected: database networks are simple graphs"
        );
        self.edges.push(crate::edge_key(u, v));
        self
    }

    /// Guarantees the built graph has at least `n` vertices, even if the
    /// trailing ones are isolated.
    pub fn ensure_vertex(&mut self, v: VertexId) -> &mut Self {
        self.min_vertices = self.min_vertices.max(v + 1);
        self
    }

    /// Number of (possibly duplicated) edges staged so far.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Freezes into an immutable [`UGraph`], deduplicating edges.
    pub fn build(mut self) -> UGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self
            .edges
            .iter()
            .map(|&(_, v)| v + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_vertices) as usize;

        // Degree counting pass.
        let mut degree = vec![0u32; n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }

        // Prefix sums -> CSR offsets.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &degree {
            acc += d as usize;
            offsets.push(acc);
        }

        // Fill neighbor lists.
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut neighbors = vec![0u32; acc];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Neighbor lists must be sorted for merge intersection; inserting
        // from a sorted edge list leaves each `u`'s "forward" neighbors
        // sorted but interleaves "backward" ones, so sort per vertex.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }

        UGraph {
            offsets,
            neighbors,
            num_edges: self.edges.len(),
        }
    }
}

/// An immutable simple undirected graph in CSR form.
///
/// Neighbor lists are sorted, enabling `O(d(u) + d(v))` common-neighbor
/// merges and `O(log d(u))` adjacency tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UGraph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<VertexId>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl UGraph {
    /// The empty graph.
    pub fn empty() -> Self {
        UGraph {
            offsets: vec![0],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }

    /// Builds directly from an edge list (convenience for tests).
    pub fn from_edges(edges: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        let mut b = GraphBuilder::new();
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices (`0..n`), including isolated ones.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Adjacency test by binary search: `O(log d(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.num_vertices() || v as usize >= self.num_vertices() {
            return false;
        }
        // Search the smaller list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates over canonical `(u, v)` edges with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = EdgeKey> + '_ {
        (0..self.num_vertices() as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterates over vertices with degree `> 0`.
    pub fn non_isolated_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).filter(move |&v| self.degree(v) > 0)
    }

    /// Sum of squared degrees — the paper's MPTD complexity measure
    /// `O(Σ d²(v))`, used by the harness to characterise workloads.
    pub fn degree_square_sum(&self) -> u64 {
        (0..self.num_vertices() as u32)
            .map(|v| (self.degree(v) as u64).pow(2))
            .sum()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The subgraph induced by `vertices`, with vertices **renumbered** to
    /// `0..vertices.len()` in the given order. Returns the new graph and the
    /// mapping `new id -> old id`.
    ///
    /// Duplicate ids in `vertices` are ignored (first occurrence wins).
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (UGraph, Vec<VertexId>) {
        let mut old_to_new: tc_util::FxHashMap<VertexId, u32> =
            tc_util::hash::fx_map_with_capacity(vertices.len());
        let mut new_to_old = Vec::with_capacity(vertices.len());
        for &v in vertices {
            if let std::collections::hash_map::Entry::Vacant(e) = old_to_new.entry(v) {
                e.insert(new_to_old.len() as u32);
                new_to_old.push(v);
            }
        }
        let mut b = GraphBuilder::new();
        for (&old_u, &new_u) in &old_to_new {
            for &old_v in self.neighbors(old_u) {
                if old_u < old_v {
                    if let Some(&new_v) = old_to_new.get(&old_v) {
                        b.add_edge(new_u, new_v);
                    }
                }
            }
        }
        if let Some(last) = new_to_old.len().checked_sub(1) {
            b.ensure_vertex(last as u32);
        }
        (b.build(), new_to_old)
    }
}

impl HeapSize for UGraph {
    fn heap_size(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.neighbors.capacity() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> UGraph {
        // 0-1-2 triangle, 2-3 tail, 4 isolated (via ensure_vertex).
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(0, 2)
            .add_edge(2, 3);
        b.ensure_vertex(4);
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn neighbors_sorted_and_correct() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn has_edge_symmetric() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(0, 100));
        assert!(!g.has_edge(100, 0));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = UGraph::from_edges([(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        GraphBuilder::new().add_edge(3, 3);
    }

    #[test]
    fn edges_iterator_canonical() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = UGraph::empty();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn builder_only_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.ensure_vertex(9);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn non_isolated_vertices_skips_isolated() {
        let g = triangle_plus_tail();
        let vs: Vec<_> = g.non_isolated_vertices().collect();
        assert_eq!(vs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn degree_square_sum_matches_manual() {
        let g = triangle_plus_tail();
        // degrees: 2,2,3,1,0 -> 4+4+9+1 = 18
        assert_eq!(g.degree_square_sum(), 18);
    }

    #[test]
    fn induced_subgraph_remaps() {
        let g = triangle_plus_tail();
        let (sub, map) = g.induced_subgraph(&[2, 0, 1]);
        assert_eq!(map, vec![2, 0, 1]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3); // the triangle survives
        assert!(sub.has_edge(0, 1)); // old (2,0)
        assert!(sub.has_edge(0, 2)); // old (2,1)
        assert!(sub.has_edge(1, 2)); // old (0,1)
    }

    #[test]
    fn induced_subgraph_drops_outside_edges() {
        let g = triangle_plus_tail();
        let (sub, map) = g.induced_subgraph(&[0, 3]);
        assert_eq!(map, vec![0, 3]);
        assert_eq!(sub.num_edges(), 0);
        assert_eq!(sub.num_vertices(), 2);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = triangle_plus_tail();
        let (sub, map) = g.induced_subgraph(&[1, 1, 2]);
        assert_eq!(map, vec![1, 2]);
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn induced_subgraph_empty_selection() {
        let g = triangle_plus_tail();
        let (sub, map) = g.induced_subgraph(&[]);
        assert!(map.is_empty());
        assert_eq!(sub.num_vertices(), 0);
    }

    #[test]
    fn max_degree() {
        assert_eq!(triangle_plus_tail().max_degree(), 3);
        assert_eq!(UGraph::empty().max_degree(), 0);
    }
}
