//! k-core decomposition (Seidman 1983).
//!
//! The paper relates pattern trusses to k-cores (§3.2): a connected maximal
//! pattern truss with unit frequencies and `α = k - 3` is a `(k-1)`-core.
//! The decomposition here is the standard linear-time bucket peeling.

use crate::graph::{UGraph, VertexId};

/// Computes the core number of every vertex (bucket peeling, `O(n + m)`).
pub fn core_numbers(g: &UGraph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.degree(v) as u32).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by degree.
    let mut bin = vec![0u32; max_degree + 2];
    for &d in &degree {
        bin[d as usize + 1] += 1;
    }
    for i in 1..bin.len() {
        bin[i] += bin[i - 1];
    }
    let mut pos = vec![0u32; n]; // vertex -> index in `vert`
    let mut vert = vec![0u32; n]; // sorted vertex order
    {
        let mut cursor = bin.clone();
        for v in 0..n as u32 {
            let d = degree[v as usize] as usize;
            pos[v as usize] = cursor[d];
            vert[cursor[d] as usize] = v;
            cursor[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize];
        for &u in g.neighbors(v) {
            if degree[u as usize] > degree[v as usize] {
                // Move u one bucket down: swap with first vertex of its bucket.
                let du = degree[u as usize] as usize;
                let pu = pos[u as usize];
                let pw = bin[du];
                let w = vert[pw as usize];
                if u != w {
                    vert.swap(pu as usize, pw as usize);
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    core
}

/// Vertices of the maximal k-core (every vertex has degree `≥ k` within the
/// returned set). Sorted ascending.
pub fn k_core(g: &UGraph, k: u32) -> Vec<VertexId> {
    core_numbers(g)
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= k)
        .map(|(v, _)| v as VertexId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, UGraph};

    fn k4_with_tail() -> UGraph {
        UGraph::from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
        ])
    }

    #[test]
    fn k4_core_numbers() {
        let core = core_numbers(&k4_with_tail());
        assert_eq!(core[0], 3);
        assert_eq!(core[1], 3);
        assert_eq!(core[2], 3);
        assert_eq!(core[3], 3);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);
    }

    #[test]
    fn k_core_extraction() {
        let g = k4_with_tail();
        assert_eq!(k_core(&g, 3), vec![0, 1, 2, 3]);
        assert_eq!(k_core(&g, 1).len(), 6);
        assert!(k_core(&g, 4).is_empty());
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertex(3);
        let core = core_numbers(&b.build());
        assert_eq!(core, vec![1, 1, 0, 0]);
    }

    #[test]
    fn cycle_is_2core() {
        let g = UGraph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 2]);
    }

    #[test]
    fn empty_graph() {
        assert!(core_numbers(&UGraph::empty()).is_empty());
        assert!(k_core(&UGraph::empty(), 1).is_empty());
    }

    #[test]
    fn star_center_core_one() {
        // A star: hub degree 5 but core number 1 (leaves peel first).
        let g = UGraph::from_edges([(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 1));
    }

    #[test]
    fn core_number_vs_truss_relation() {
        // Paper §3.2: a k-truss (connected) is a (k-1)-core. Check on K5.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = UGraph::from_edges(edges);
        let truss_edges = crate::ktruss::k_truss(&g, 5);
        let verts = crate::ktruss::edge_set_vertices(&truss_edges);
        let cores = core_numbers(&g);
        for v in verts {
            assert!(cores[v as usize] >= 4, "k-truss vertex in (k-1)-core");
        }
    }
}
