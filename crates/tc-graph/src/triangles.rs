//! Triangle and common-neighbor enumeration.
//!
//! Edge cohesion (Definition 3.1) sums a term per triangle containing the
//! edge; a common neighbor `v_k` of `v_i, v_j` corresponds to exactly one
//! triangle `△ijk`. With sorted adjacency lists a linear merge finds the
//! common neighbors of an edge in `O(d(v_i) + d(v_j))`, which is what gives
//! MPTD its `O(Σ d²(v))` bound (paper §4.1).

use crate::graph::{UGraph, VertexId};

/// Returns the sorted common neighbors of `u` and `v`.
pub fn common_neighbors(g: &UGraph, u: VertexId, v: VertexId) -> Vec<VertexId> {
    let mut out = Vec::new();
    merge_common(g.neighbors(u), g.neighbors(v), |w| out.push(w));
    out
}

/// Calls `f` for every common neighbor of two sorted slices.
#[inline]
pub fn merge_common(a: &[VertexId], b: &[VertexId], mut f: impl FnMut(VertexId)) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Number of triangles containing edge `(u, v)` — the *support* of the edge
/// in k-truss terminology.
pub fn edge_support(g: &UGraph, u: VertexId, v: VertexId) -> usize {
    let mut n = 0;
    merge_common(g.neighbors(u), g.neighbors(v), |_| n += 1);
    n
}

/// Total number of distinct triangles in the graph.
///
/// Each triangle `{u, v, w}` with `u < v < w` is counted once by scanning
/// the common neighbors `w > v` of each canonical edge `(u, v)`.
pub fn count_triangles(g: &UGraph) -> u64 {
    let mut total = 0u64;
    for (u, v) in g.edges() {
        merge_common(g.neighbors(u), g.neighbors(v), |w| {
            if w > v {
                total += 1;
            }
        });
    }
    total
}

/// Enumerates every triangle `(u, v, w)` with `u < v < w` exactly once.
pub fn for_each_triangle(g: &UGraph, mut f: impl FnMut(VertexId, VertexId, VertexId)) {
    for (u, v) in g.edges() {
        merge_common(g.neighbors(u), g.neighbors(v), |w| {
            if w > v {
                f(u, v, w);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UGraph;

    /// K4 on vertices 0..4.
    fn k4() -> UGraph {
        UGraph::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn common_neighbors_of_k4_edge() {
        let g = k4();
        assert_eq!(common_neighbors(&g, 0, 1), vec![2, 3]);
        assert_eq!(edge_support(&g, 0, 1), 2);
    }

    #[test]
    fn no_common_neighbors_on_path() {
        let g = UGraph::from_edges([(0, 1), (1, 2)]);
        assert!(common_neighbors(&g, 0, 1).is_empty());
        assert_eq!(edge_support(&g, 0, 1), 0);
    }

    #[test]
    fn k4_has_four_triangles() {
        assert_eq!(count_triangles(&k4()), 4);
    }

    #[test]
    fn triangle_graph_has_one() {
        let g = UGraph::from_edges([(0, 1), (1, 2), (0, 2)]);
        assert_eq!(count_triangles(&g), 1);
    }

    #[test]
    fn path_has_zero_triangles() {
        let g = UGraph::from_edges([(0, 1), (1, 2), (2, 3)]);
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn enumeration_matches_count_and_is_canonical() {
        let g = k4();
        let mut tris = Vec::new();
        for_each_triangle(&g, |u, v, w| {
            assert!(u < v && v < w);
            tris.push((u, v, w));
        });
        assert_eq!(tris.len() as u64, count_triangles(&g));
        let unique: std::collections::HashSet<_> = tris.iter().collect();
        assert_eq!(unique.len(), tris.len(), "no duplicates");
    }

    #[test]
    fn two_disjoint_triangles() {
        let g = UGraph::from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert_eq!(count_triangles(&g), 2);
    }

    #[test]
    fn merge_common_on_empty() {
        let mut hits = 0;
        merge_common(&[], &[1, 2, 3], |_| hits += 1);
        assert_eq!(hits, 0);
    }
}
