//! Classic k-truss detection (Cohen 2008) and truss decomposition.
//!
//! A *k-truss* is a subgraph in which every edge is contained in at least
//! `k - 2` triangles **of the subgraph**. The paper (§3.2) observes that a
//! pattern truss `C_p(α)` with all vertex frequencies equal to 1 and
//! `α = k - 3` is exactly a k-truss; our tests use this module as an
//! independent oracle for MPTD.
//!
//! Peeling semantics: an edge is *removed* at the moment it is popped from
//! the work queue. A triangle is destroyed exactly once — by the first of
//! its three edges to be popped — at which point the supports of the other
//! two edges are decremented. (Marking edges dead at enqueue time instead
//! double-counts or skips triangles whose edges are queued together.)

use crate::graph::{EdgeKey, UGraph, VertexId};
use crate::triangles::merge_common;
use std::collections::VecDeque;
use tc_util::{FxHashMap, FxHashSet};

/// Initial per-edge supports (triangle counts) of the whole graph.
fn initial_supports(g: &UGraph) -> FxHashMap<EdgeKey, usize> {
    let mut support: FxHashMap<EdgeKey, usize> = tc_util::hash::fx_map_with_capacity(g.num_edges());
    for (u, v) in g.edges() {
        let mut s = 0;
        merge_common(g.neighbors(u), g.neighbors(v), |_| s += 1);
        support.insert((u, v), s);
    }
    support
}

/// Computes the maximal k-truss of `g`: the edge set in which every edge has
/// support `≥ k - 2` within the retained subgraph. Returns canonical edges
/// in sorted order.
///
/// `k ≤ 2` returns all edges (every edge is trivially in a 2-truss).
pub fn k_truss(g: &UGraph, k: usize) -> Vec<EdgeKey> {
    let threshold = k.saturating_sub(2);
    let mut support = initial_supports(g);

    let mut removed: FxHashSet<EdgeKey> = tc_util::hash::fx_set_with_capacity(16);
    let mut queued: FxHashSet<EdgeKey> = tc_util::hash::fx_set_with_capacity(16);
    let mut queue: VecDeque<EdgeKey> = VecDeque::new();
    for (&e, &s) in &support {
        if s < threshold {
            queued.insert(e);
            queue.push_back(e);
        }
    }

    while let Some((u, v)) = queue.pop_front() {
        removed.insert((u, v));
        merge_common(g.neighbors(u), g.neighbors(v), |w| {
            let e1 = crate::edge_key(u, w);
            let e2 = crate::edge_key(v, w);
            // Triangle (u,v,w) is destroyed *now* only if it still existed:
            // neither of the other two edges was popped earlier.
            if removed.contains(&e1) || removed.contains(&e2) {
                return;
            }
            for other in [e1, e2] {
                let s = support.get_mut(&other).expect("edge in graph");
                *s -= 1;
                if *s < threshold && queued.insert(other) {
                    queue.push_back(other);
                }
            }
        });
    }

    let mut kept: Vec<EdgeKey> = support
        .keys()
        .filter(|e| !removed.contains(*e))
        .copied()
        .collect();
    kept.sort_unstable();
    kept
}

/// Truss decomposition: for every edge, the largest `k` such that the edge
/// belongs to the maximal k-truss (its *truss number*).
///
/// Peeling variant of Wang & Cheng (VLDB 2012): levels `k = 2, 3, …`; at
/// level `k` every surviving edge with support `≤ k - 2` is removed
/// (cascading) and assigned truss number `k`.
pub fn truss_numbers(g: &UGraph) -> FxHashMap<EdgeKey, usize> {
    let mut support = initial_supports(g);
    let total = support.len();

    let mut truss: FxHashMap<EdgeKey, usize> = tc_util::hash::fx_map_with_capacity(total);
    let mut removed: FxHashSet<EdgeKey> = tc_util::hash::fx_set_with_capacity(total);
    let mut k = 2usize;

    while removed.len() < total {
        let mut queued: FxHashSet<EdgeKey> = tc_util::hash::fx_set_with_capacity(16);
        let mut queue: VecDeque<EdgeKey> = VecDeque::new();
        for (&e, &s) in &support {
            if !removed.contains(&e) && s <= k - 2 {
                queued.insert(e);
                queue.push_back(e);
            }
        }
        if queue.is_empty() {
            k += 1;
            continue;
        }
        while let Some((u, v)) = queue.pop_front() {
            removed.insert((u, v));
            truss.insert((u, v), k);
            merge_common(g.neighbors(u), g.neighbors(v), |w| {
                let e1 = crate::edge_key(u, w);
                let e2 = crate::edge_key(v, w);
                if removed.contains(&e1) || removed.contains(&e2) {
                    return;
                }
                for other in [e1, e2] {
                    let s = support.get_mut(&other).expect("edge in graph");
                    *s = s.saturating_sub(1);
                    if *s <= k - 2 && queued.insert(other) {
                        queue.push_back(other);
                    }
                }
            });
        }
    }
    truss
}

/// Vertices spanned by an edge set (sorted, deduplicated).
pub fn edge_set_vertices(edges: &[EdgeKey]) -> Vec<VertexId> {
    let mut vs: Vec<VertexId> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    vs.sort_unstable();
    vs.dedup();
    vs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// K5 with a pendant path attached.
    fn k5_plus_path() -> UGraph {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        edges.push((4, 5));
        edges.push((5, 6));
        UGraph::from_edges(edges)
    }

    #[test]
    fn k5_is_a_5truss() {
        let g = k5_plus_path();
        let t5 = k_truss(&g, 5);
        assert_eq!(t5.len(), 10, "all K5 edges survive k=5");
        assert!(t5.iter().all(|&(u, v)| u < 5 && v < 5));
    }

    #[test]
    fn k5_is_not_a_6truss() {
        let g = k5_plus_path();
        assert!(k_truss(&g, 6).is_empty());
    }

    #[test]
    fn pendant_edges_survive_only_k2() {
        let g = k5_plus_path();
        let t2 = k_truss(&g, 2);
        assert_eq!(t2.len(), g.num_edges());
        let t3 = k_truss(&g, 3);
        assert!(!t3.contains(&(4, 5)));
        assert!(!t3.contains(&(5, 6)));
    }

    #[test]
    fn triangle_is_3truss() {
        let g = UGraph::from_edges([(0, 1), (1, 2), (0, 2)]);
        assert_eq!(k_truss(&g, 3).len(), 3);
        assert!(k_truss(&g, 4).is_empty());
    }

    #[test]
    fn cascade_removal() {
        // Two triangles sharing an edge: a 3-truss, but not a 4-truss —
        // removing any edge cascades.
        let g = UGraph::from_edges([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(k_truss(&g, 3).len(), 5);
        assert!(k_truss(&g, 4).is_empty());
    }

    /// The regression the property tests found: two queued-together edges
    /// sharing a triangle must destroy that triangle exactly once.
    #[test]
    fn shared_triangle_among_queued_edges() {
        // Vertices 2,5 plus two common neighbors; constructed so multiple
        // low-support edges enter the queue in the same batch.
        let g = UGraph::from_edges([(2, 5), (2, 6), (5, 6), (2, 7), (5, 7), (6, 7)]);
        // K4 on {2,5,6,7}: a 4-truss.
        assert_eq!(k_truss(&g, 4).len(), 6);
        let tn = truss_numbers(&g);
        assert!(tn.values().all(|&t| t == 4));
    }

    #[test]
    fn truss_numbers_on_k5_plus_path() {
        let g = k5_plus_path();
        let t = truss_numbers(&g);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                assert_eq!(t[&(u, v)], 5, "K5 edge ({u},{v})");
            }
        }
        assert_eq!(t[&(4, 5)], 2);
        assert_eq!(t[&(5, 6)], 2);
    }

    #[test]
    fn truss_numbers_consistent_with_ktruss() {
        let g = k5_plus_path();
        let t = truss_numbers(&g);
        for k in 2..=6usize {
            let direct: std::collections::BTreeSet<_> = k_truss(&g, k).into_iter().collect();
            let derived: std::collections::BTreeSet<_> = t
                .iter()
                .filter(|&(_, &tn)| tn >= k)
                .map(|(&e, _)| e)
                .collect();
            assert_eq!(direct, derived, "k = {k}");
        }
    }

    #[test]
    fn edge_set_vertices_dedups() {
        let vs = edge_set_vertices(&[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(vs, vec![0, 1, 2]);
        assert!(edge_set_vertices(&[]).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = UGraph::empty();
        assert!(k_truss(&g, 3).is_empty());
        assert!(truss_numbers(&g).is_empty());
    }
}
