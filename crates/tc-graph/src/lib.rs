//! Undirected graph substrate for the theme-communities workspace.
//!
//! The paper's algorithms operate on simple undirected graphs (no self
//! loops, no parallel edges). This crate provides:
//!
//! * [`UGraph`] — an immutable CSR-style adjacency structure with sorted
//!   neighbor lists, built through [`GraphBuilder`];
//! * [`triangles`] — merge-based common-neighbor and triangle enumeration
//!   (the building block of edge cohesion);
//! * [`components`] — connected components (theme communities are the
//!   maximal connected subgraphs of maximal pattern trusses);
//! * [`ktruss`] / [`kcore`] — the classic unweighted structures of
//!   Cohen and Seidman; pattern trusses degenerate to these when every
//!   vertex frequency is 1 (paper §3.2), which the tests exploit as an
//!   oracle;
//! * [`sample`] — breadth-first edge sampling, the procedure §7.1 uses to
//!   build smaller database networks;
//! * [`unionfind`] — disjoint sets with path compression.

pub mod components;
pub mod graph;
pub mod kcore;
pub mod ktruss;
pub mod metrics;
pub mod sample;
pub mod triangles;
pub mod unionfind;

pub use components::{connected_components, ComponentLabels};
pub use graph::{EdgeKey, GraphBuilder, UGraph, VertexId};
pub use kcore::{core_numbers, k_core};
pub use ktruss::{k_truss, truss_numbers};
pub use metrics::{average_clustering, degree_histogram, mean_degree, transitivity};
pub use sample::bfs_edge_sample;
pub use triangles::{common_neighbors, count_triangles, edge_support};
pub use unionfind::UnionFind;

/// Normalises an edge to its canonical `(min, max)` key.
#[inline]
pub fn edge_key(u: VertexId, v: VertexId) -> EdgeKey {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}
