//! Disjoint-set forest with path halving and union by size.

/// Union-find over dense `0..n` ids.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.num_sets -= 1;
        true
    }

    /// `true` if `a` and `b` share a set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.set_size(3), 1);
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.connected(0, 2));
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.set_size(1), 3);
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, 99));
        assert_eq!(uf.set_size(42), 100);
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }

    #[test]
    fn find_is_idempotent() {
        let mut uf = UnionFind::new(10);
        uf.union(3, 7);
        let r1 = uf.find(3);
        let r2 = uf.find(3);
        assert_eq!(r1, r2);
        assert_eq!(uf.find(7), r1);
    }
}
