//! Connected components.
//!
//! Theme communities are defined (Definition 3.5) as the *maximal connected
//! subgraphs* of a maximal pattern truss, so component extraction is the
//! final step of every mining pipeline.

use crate::graph::{UGraph, VertexId};
use crate::unionfind::UnionFind;

/// Per-vertex component labels plus component count.
#[derive(Debug, Clone)]
pub struct ComponentLabels {
    /// `labels[v]` is the component id of `v` (`0..num_components`).
    pub labels: Vec<u32>,
    /// Number of distinct components.
    pub num_components: usize,
}

impl ComponentLabels {
    /// Groups vertex ids by component, components ordered by first vertex.
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut groups = vec![Vec::new(); self.num_components];
        for (v, &c) in self.labels.iter().enumerate() {
            groups[c as usize].push(v as VertexId);
        }
        groups
    }
}

/// Labels the connected components of `g`, **including** isolated vertices
/// (each isolated vertex is its own component).
pub fn connected_components(g: &UGraph) -> ComponentLabels {
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    compress(&mut uf, n)
}

/// Labels the components spanned by an explicit edge list over vertices
/// `0..n`. Vertices not covered by any edge become singletons.
pub fn components_of_edges(n: usize, edges: &[(VertexId, VertexId)]) -> ComponentLabels {
    let mut uf = UnionFind::new(n);
    for &(u, v) in edges {
        uf.union(u, v);
    }
    compress(&mut uf, n)
}

fn compress(uf: &mut UnionFind, n: usize) -> ComponentLabels {
    let mut remap: tc_util::FxHashMap<u32, u32> = tc_util::hash::fx_map_with_capacity(16);
    let mut labels = Vec::with_capacity(n);
    for v in 0..n as u32 {
        let root = uf.find(v);
        let next = remap.len() as u32;
        let label = *remap.entry(root).or_insert(next);
        labels.push(label);
    }
    ComponentLabels {
        num_components: remap.len(),
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, UGraph};

    #[test]
    fn single_component() {
        let g = UGraph::from_edges([(0, 1), (1, 2), (2, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.num_components, 1);
        assert!(c.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn two_components_and_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).add_edge(2, 3);
        b.ensure_vertex(4); // isolated
        let g = b.build();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 3);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[2], c.labels[3]);
        assert_ne!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[4], c.labels[0]);
        assert_ne!(c.labels[4], c.labels[2]);
    }

    #[test]
    fn groups_partition_vertices() {
        let g = UGraph::from_edges([(0, 1), (2, 3), (3, 4)]);
        let c = connected_components(&g);
        let groups = c.groups();
        assert_eq!(groups.len(), 2);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_vertices());
        assert_eq!(groups[0], vec![0, 1]);
        assert_eq!(groups[1], vec![2, 3, 4]);
    }

    #[test]
    fn empty_graph_zero_components() {
        let c = connected_components(&UGraph::empty());
        assert_eq!(c.num_components, 0);
        assert!(c.groups().is_empty());
    }

    #[test]
    fn components_of_edge_list() {
        let c = components_of_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(c.num_components, 3); // {0,1,2}, {3}, {4,5}
        assert_eq!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[3], c.labels[0]);
        assert_eq!(c.labels[4], c.labels[5]);
    }

    #[test]
    fn labels_are_dense_from_zero() {
        let g = UGraph::from_edges([(0, 1), (5, 6)]);
        let c = connected_components(&g);
        let max = *c.labels.iter().max().unwrap() as usize;
        assert_eq!(max + 1, c.num_components);
    }
}
