//! The corruption guard: damaged files must fail with `Corrupt`/`Checksum`
//! errors — never a panic, never silently wrong data.
//!
//! CI runs this suite as an explicit gate (see `.github/workflows/ci.yml`,
//! the corruption-guard step); locally it runs with `cargo test`.
//!
//! Segment files carry per-page CRC-32, so **every** bit flip and
//! truncation must be detected. The text formats have no checksums — a
//! flip inside free-form content (an item name, a digit) can legitimately
//! produce a different valid file — so for them the guarantee tested is
//! weaker: loaders never panic, and structural damage is reported.

use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder};
use tc_index::{TcTree, TcTreeBuilder};
use tc_store::wal::{encode_wal, scan_wal, WalRecord, FRAME_HEADER_LEN, WAL_HEADER_LEN};
use tc_store::{LoadError, SegmentTcTree};

fn sample_network() -> DatabaseNetwork {
    let mut b = DatabaseNetworkBuilder::new();
    let items: Vec<_> = (0..6)
        .map(|i| b.intern_item(&format!("item-{i}")))
        .collect();
    for v in 0..8u32 {
        for t in 0..4usize {
            let a = items[(v as usize + t) % items.len()];
            let c = items[(v as usize + t + 1) % items.len()];
            b.add_transaction(v, &[a, c]);
        }
    }
    for u in 0..8u32 {
        for v in (u + 1)..8u32 {
            if (u + v) % 3 != 0 {
                b.add_edge(u, v);
            }
        }
    }
    b.build().unwrap()
}

fn sample_tree() -> TcTree {
    TcTreeBuilder {
        threads: 1,
        max_len: usize::MAX,
    }
    .build(&sample_network())
}

fn network_segment_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    tc_store::save_network_segment(&sample_network(), &mut buf).unwrap();
    buf
}

fn tree_segment_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    tc_store::save_tree_segment(&sample_tree(), &mut buf).unwrap();
    buf
}

/// Exercises a damaged tree segment end to end: open, then (if the damage
/// sat in a lazily-read region) a full-materialisation query.
fn load_damaged_tree(bytes: Vec<u8>) -> Result<(), LoadError> {
    let seg = SegmentTcTree::from_bytes(bytes)?;
    seg.query_by_alpha(0.0)?;
    seg.to_tree()?;
    Ok(())
}

#[test]
fn network_segment_detects_every_bit_flip() {
    let clean = network_segment_bytes();
    assert!(tc_store::load_network_segment_from_bytes(&clean).is_ok());
    let step = (clean.len() / 211).max(1);
    for pos in (0..clean.len()).step_by(step) {
        for bit in [0, 4, 7] {
            let mut bad = clean.clone();
            bad[pos] ^= 1 << bit;
            let err = tc_store::load_network_segment_from_bytes(&bad);
            assert!(
                matches!(err, Err(e) if e.is_corruption()),
                "flip at {pos}:{bit} not reported as corruption"
            );
        }
    }
}

#[test]
fn tree_segment_detects_every_bit_flip() {
    let clean = tree_segment_bytes();
    load_damaged_tree(clean.clone()).unwrap();
    let step = (clean.len() / 211).max(1);
    for pos in (0..clean.len()).step_by(step) {
        let mut bad = clean.clone();
        bad[pos] ^= 0x20;
        let err = load_damaged_tree(bad);
        assert!(
            matches!(err, Err(e) if e.is_corruption()),
            "flip at byte {pos} not reported as corruption"
        );
    }
}

#[test]
fn segment_truncations_fail_at_open() {
    for bytes in [network_segment_bytes(), tree_segment_bytes()] {
        for cut in [
            0,
            1,
            7,
            tc_store::PAGE_SIZE - 1,
            tc_store::PAGE_SIZE,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            let truncated = bytes[..cut.min(bytes.len())].to_vec();
            let net_err = tc_store::load_network_segment_from_bytes(&truncated);
            assert!(
                matches!(net_err, Err(e) if e.is_corruption()),
                "network truncation to {cut} bytes accepted"
            );
            let tree_err = load_damaged_tree(truncated);
            assert!(
                matches!(tree_err, Err(e) if e.is_corruption()),
                "tree truncation to {cut} bytes accepted"
            );
        }
    }
}

/// The mmap read path is checksum-verified exactly like the buffered
/// path: a bit flip in a lazily-read page surfaces as the **same** typed
/// `LoadError::Checksum` (same message, even) whether the bytes arrived
/// via `read(2)` or a mapped load.
#[test]
fn mmap_bit_flip_reports_the_same_checksum_error_as_buffered() {
    use tc_store::{SourceKind, StoreOptions};
    let clean = tree_segment_bytes();
    let dir = std::env::temp_dir().join("tc_store_mmap_corruption");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tree.seg");
    // Flip a payload byte in the file's last page: that page belongs to
    // the LEVELS section, which open() never touches — the damage is only
    // reachable through lazy materialisation.
    let mut bad = clean.clone();
    let pos = bad.len() - tc_store::PAGE_SIZE + 12;
    bad[pos] ^= 0x40;
    std::fs::write(&path, &bad).unwrap();

    let mut messages = Vec::new();
    for kind in [SourceKind::Buffered, SourceKind::Mmap] {
        let opts = StoreOptions {
            source: kind,
            cache_bytes: None,
        };
        let seg = SegmentTcTree::open_with(&path, opts).expect("damage sits in a lazy region");
        let err = (|| {
            seg.query_by_alpha(0.0)?;
            seg.to_tree()?;
            Ok::<(), LoadError>(())
        })()
        .expect_err("flip undetected");
        assert!(
            matches!(err, LoadError::Checksum(_)),
            "{} path: wrong error type {err}",
            kind.name()
        );
        messages.push(err.to_string());
    }
    assert_eq!(messages[0], messages[1], "both paths report identically");
    std::fs::remove_file(&path).ok();
}

#[test]
fn segment_extension_fails_at_open() {
    // Appended garbage breaks the header's length promise.
    let mut bytes = tree_segment_bytes();
    bytes.extend_from_slice(&[0u8; 100]);
    assert!(matches!(
        SegmentTcTree::from_bytes(bytes),
        Err(e) if e.is_corruption()
    ));
}

fn shard_map_bytes() -> Vec<u8> {
    use tc_store::shardmap::{HashScheme, ShardEntry, ShardMap};
    ShardMap {
        scheme: HashScheme::Crc32Item,
        items: vec![0, 1, 2, 5, 9],
        shards: vec![
            ShardEntry {
                addr: "127.0.0.1:7701".into(),
                path: "shards/shard-000.seg".into(),
            },
            ShardEntry {
                addr: "127.0.0.1:7702".into(),
                path: "shards/shard-001.seg".into(),
            },
            ShardEntry {
                addr: "tc-shard-2.internal:7641".into(),
                path: "/var/lib/tc/shard-002.seg".into(),
            },
        ],
    }
    .to_bytes()
}

/// The shard map's payload is CRC-framed like everything else: every
/// single-bit flip anywhere in the file must surface as a typed error —
/// a silently mis-parsed map would scatter queries to the wrong fleet.
#[test]
fn shard_map_detects_every_bit_flip() {
    use tc_store::shardmap::ShardMap;
    let clean = shard_map_bytes();
    assert!(ShardMap::from_bytes(&clean).is_ok());
    for pos in 0..clean.len() {
        for bit in [0, 3, 7] {
            let mut bad = clean.clone();
            bad[pos] ^= 1 << bit;
            let err = ShardMap::from_bytes(&bad);
            assert!(
                matches!(err, Err(e) if e.is_corruption()),
                "flip at {pos}:{bit} not reported as corruption"
            );
        }
    }
}

#[test]
fn shard_map_truncations_and_extensions_fail() {
    use tc_store::shardmap::ShardMap;
    let clean = shard_map_bytes();
    for cut in 0..clean.len() {
        let err = ShardMap::from_bytes(&clean[..cut]);
        assert!(
            matches!(err, Err(e) if e.is_corruption()),
            "truncation to {cut} bytes accepted"
        );
    }
    let mut extended = clean;
    extended.extend_from_slice(&[0u8; 16]);
    assert!(matches!(
        ShardMap::from_bytes(&extended),
        Err(e) if e.is_corruption()
    ));
}

/// Version skew is its own failure mode (a newer tool wrote the map),
/// distinct from random damage: the error must say so.
#[test]
fn shard_map_version_skew_is_reported_as_such() {
    use tc_store::shardmap::{ShardMap, MAP_MAGIC};
    let clean = shard_map_bytes();
    let mut payload = clean[16..].to_vec();
    payload[0] = 2; // version u32 LE: v2
    let mut skewed = Vec::new();
    skewed.extend_from_slice(MAP_MAGIC);
    skewed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    skewed.extend_from_slice(&tc_util::crc32(&payload).to_le_bytes());
    skewed.extend_from_slice(&payload);
    let err = ShardMap::from_bytes(&skewed).unwrap_err();
    assert!(err.is_corruption());
    assert!(err.to_string().contains("version skew"), "{err}");
}

fn wal_records() -> Vec<WalRecord> {
    vec![
        WalRecord::AddItem {
            name: "item-0".into(),
        },
        WalRecord::AddEdge { u: 0, v: 1 },
        WalRecord::AddTransaction {
            vertex: 0,
            items: vec![0],
        },
        WalRecord::AddDatabase { vertex: 3 },
    ]
}

fn wal_image() -> Vec<u8> {
    encode_wal(&wal_records(), 1).unwrap()
}

/// Bit-flips each field class of a *mid-log* record (valid records follow
/// it, so the damage cannot be mistaken for a torn tail) and asserts the
/// typed error per class. A CRC-protected frame reports `Checksum` no
/// matter which covered field was hit; the length field gets a dedicated
/// low-bit flip so the frame boundary shifts while staying in-file.
#[test]
fn wal_field_class_flips_report_typed_errors() {
    let clean = wal_image();
    let first = WAL_HEADER_LEN; // offset of record 1's frame
    let classes = [
        ("length", first, 0x01u8),
        ("seqno", first + 4, 0x01),
        ("crc", first + 12, 0x01),
        ("payload", first + FRAME_HEADER_LEN, 0x01),
    ];
    for (class, pos, mask) in classes {
        let mut bad = clean.clone();
        bad[pos] ^= mask;
        let err = scan_wal(&bad).expect_err(&format!("{class} flip accepted"));
        assert!(err.is_corruption(), "{class} flip: untyped error {err}");
    }
    // Flips in the file header: magic → Corrupt, the rest → Checksum.
    for pos in 0..WAL_HEADER_LEN {
        let mut bad = clean.clone();
        bad[pos] ^= 0x10;
        let err = scan_wal(&bad).expect_err("header flip accepted");
        assert!(err.is_corruption(), "header flip at {pos}: {err}");
    }
}

/// Every single-bit flip anywhere in the log either reports a typed error
/// or truncates to a clean **strict** prefix (the torn-tail path: damage
/// in the final frame, or a length flip that pushes a frame past
/// end-of-file, is indistinguishable from a crash mid-append). Either way
/// the flip is detected — never a panic, never damaged bytes returned as
/// records.
#[test]
fn wal_every_bit_flip_is_typed_or_a_clean_prefix() {
    let records = wal_records();
    let clean = wal_image();
    for pos in 0..clean.len() {
        for bit in [0, 3, 7] {
            let mut bad = clean.clone();
            bad[pos] ^= 1 << bit;
            match scan_wal(&bad) {
                Err(e) => assert!(e.is_corruption(), "flip {pos}:{bit}: {e}"),
                Ok(scan) => {
                    let got: Vec<WalRecord> = scan.records.into_iter().map(|(_, r)| r).collect();
                    assert!(got.len() < records.len(), "flip {pos}:{bit} undetected");
                    assert_eq!(got, records[..got.len()], "flip {pos}:{bit}");
                }
            }
        }
    }
}

/// Tail truncation at every offset yields the committed prefix — the same
/// sweep the fault-injection suite runs via `Wal`, here asserted at the
/// raw scan layer alongside the other formats' truncation guards.
#[test]
fn wal_truncation_at_every_offset_is_a_committed_prefix() {
    let records = wal_records();
    let clean = wal_image();
    let mut prev = 0usize;
    for cut in 0..=clean.len() {
        let scan = scan_wal(&clean[..cut]).unwrap();
        let got: Vec<WalRecord> = scan.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(got, records[..got.len()], "cut at {cut}");
        assert!(got.len() >= prev, "prefix shrank at cut {cut}");
        prev = got.len();
    }
    assert_eq!(prev, records.len());
}

#[test]
fn text_network_damage_never_panics() {
    let mut clean = Vec::new();
    tc_data::save_network(&sample_network(), &mut clean).unwrap();
    // Truncations anywhere before the trailing "end" must error.
    for cut in [0, 1, clean.len() / 3, clean.len() / 2, clean.len() - 5] {
        let r = tc_data::load_network(std::io::Cursor::new(&clean[..cut]));
        assert!(r.is_err(), "network text truncated to {cut} bytes accepted");
    }
    // Bit flips: the format is unchecksummed free-form text, so some flips
    // remain valid — the guard is "no panic, and a definite answer".
    let step = (clean.len() / 173).max(1);
    for pos in (0..clean.len()).step_by(step) {
        let mut bad = clean.clone();
        bad[pos] ^= 0x02;
        let _ = tc_data::load_network(std::io::Cursor::new(&bad[..]));
    }
}

#[test]
fn text_tree_damage_never_panics() {
    let tree = sample_tree();
    let mut clean = Vec::new();
    tree.save(&mut clean).unwrap();
    for cut in [0, 1, clean.len() / 3, clean.len() / 2, clean.len() - 5] {
        let r = TcTree::load(std::io::Cursor::new(&clean[..cut]));
        assert!(r.is_err(), "tree text truncated to {cut} bytes accepted");
    }
    let step = (clean.len() / 173).max(1);
    for pos in (0..clean.len()).step_by(step) {
        let mut bad = clean.clone();
        bad[pos] ^= 0x02;
        let _ = TcTree::load(std::io::Cursor::new(&bad[..]));
    }
}
