//! Crash-recovery tests for the WAL, driven by the deterministic
//! fault-injection storage.
//!
//! The central invariant (ISSUE 6): for a log of N committed records,
//! **every** power-cut image — truncation at every byte offset, every
//! injected write failure, every dropped fsync — recovers to a clean
//! prefix of the committed record sequence, with nothing torn surfaced as
//! data and nothing acked-durable lost. Replay is idempotent, and folding
//! `wal + base` through a checkpoint is byte-identical to saving the
//! equivalent in-memory network directly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use proptest::prelude::*;
use tc_store::wal::{
    checkpoint, replay, scan_wal, Durability, FaultPlan, FaultWalStorage, MemWalStorage, Wal,
    WalRecord, WalStore,
};
use tc_store::{load_network_segment_from_bytes, save_network_segment};

fn ops() -> Vec<WalRecord> {
    vec![
        WalRecord::AddItem {
            name: "beer".into(),
        },
        WalRecord::AddItem {
            name: "diapers".into(),
        },
        WalRecord::AddTransaction {
            vertex: 0,
            items: vec![0, 1],
        },
        WalRecord::AddEdge { u: 0, v: 1 },
        WalRecord::AddTransaction {
            vertex: 1,
            items: vec![0],
        },
        WalRecord::AddEdge { u: 1, v: 2 },
        WalRecord::AddTransaction {
            vertex: 2,
            items: vec![1],
        },
        WalRecord::AddDatabase { vertex: 4 },
        WalRecord::AddEdge { u: 2, v: 0 },
    ]
}

fn segment_bytes(net: &tc_core::DatabaseNetwork) -> Vec<u8> {
    let mut buf = Vec::new();
    save_network_segment(net, &mut buf).unwrap();
    buf
}

/// Scans `image`, asserts its records are exactly a prefix of `intended`,
/// replays them, and returns the prefix length.
fn assert_recovers_prefix(image: &[u8], intended: &[WalRecord]) -> usize {
    let scan = scan_wal(image).unwrap_or_else(|e| panic!("crash image unreadable: {e}"));
    let recovered: Vec<WalRecord> = scan.records.iter().map(|(_, r)| r.clone()).collect();
    assert!(
        recovered.len() <= intended.len(),
        "recovered {} records from a log of {}",
        recovered.len(),
        intended.len()
    );
    assert_eq!(
        recovered,
        intended[..recovered.len()],
        "recovered records are not a prefix"
    );
    replay(None, &recovered).expect("a committed prefix must replay cleanly");
    recovered.len()
}

#[test]
fn truncation_at_every_byte_offset_recovers_a_committed_prefix() {
    let mem = MemWalStorage::new();
    let (wal, _) = Wal::open(Box::new(mem.clone()), Durability::Always).unwrap();
    let intended = ops();
    for rec in &intended {
        wal.append(rec).unwrap();
    }
    drop(wal);
    let image = mem.image();

    let mut seen = Vec::new();
    for cut in 0..=image.len() {
        let k = assert_recovers_prefix(&image[..cut], &intended);
        seen.push(k);
    }
    // Prefix length is monotone in the cut and reaches the full log.
    assert!(seen.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(*seen.last().unwrap(), intended.len());
    assert_eq!(seen[0], 0);
}

#[test]
fn every_write_failure_point_leaves_a_recoverable_committed_prefix() {
    let intended = ops();
    // Writes: 1 = header at open, then one per record.
    for fail_at in 1..=(intended.len() as u64 + 1) {
        let storage = FaultWalStorage::with_plan(FaultPlan {
            fail_write: Some(fail_at),
            ..FaultPlan::default()
        });
        let mut acked = 0usize;
        match Wal::open(Box::new(storage.clone()), Durability::Always) {
            Err(_) => assert_eq!(fail_at, 1, "only the header write can fail open"),
            Ok((wal, _)) => {
                for rec in &intended {
                    match wal.append(rec) {
                        Ok(_) => acked += 1,
                        Err(_) => break,
                    }
                }
            }
        }
        for image in storage.crash_images() {
            let k = assert_recovers_prefix(&image, &intended);
            assert!(
                k >= acked,
                "fail_write={fail_at}: acked {acked} records but a crash image \
                 recovers only {k}"
            );
        }
        // The durable image alone (cache fully lost) must hold every ack.
        let k = assert_recovers_prefix(&storage.durable_image(), &intended);
        assert_eq!(k, acked, "fail_write={fail_at}: durable image out of step");
    }
}

#[test]
fn every_short_write_point_leaves_a_recoverable_committed_prefix() {
    let intended = ops();
    for tear_at in 2..=(intended.len() as u64 + 1) {
        // Tear the record frame after 0, 1, 5, and 15 bytes.
        for keep in [0usize, 1, 5, 15] {
            let storage = FaultWalStorage::with_plan(FaultPlan {
                short_write: Some((tear_at, keep)),
                ..FaultPlan::default()
            });
            let (wal, _) = Wal::open(Box::new(storage.clone()), Durability::Always).unwrap();
            let mut acked = 0usize;
            for rec in &intended {
                match wal.append(rec) {
                    Ok(_) => acked += 1,
                    Err(_) => break,
                }
            }
            assert_eq!(acked as u64, tear_at - 2, "tear_at={tear_at} keep={keep}");
            for image in storage.crash_images() {
                let k = assert_recovers_prefix(&image, &intended);
                assert!(k >= acked, "tear_at={tear_at} keep={keep}: lost an ack");
            }
        }
    }
}

#[test]
fn dropped_fsyncs_still_recover_a_committed_prefix() {
    let intended = ops();
    // A disk that acks fsyncs without persisting from sync k on: acked
    // records may be lost (the disk lied), but every crash image must
    // still be a clean committed prefix — corruption is never on the menu.
    for drop_from in 1..=(intended.len() as u64 + 1) {
        let storage = FaultWalStorage::with_plan(FaultPlan {
            drop_syncs_from: Some(drop_from),
            ..FaultPlan::default()
        });
        let (wal, _) = Wal::open(Box::new(storage.clone()), Durability::Always).unwrap();
        for rec in &intended {
            wal.append(rec).unwrap();
        }
        drop(wal);
        for image in storage.crash_images() {
            assert_recovers_prefix(&image, &intended);
        }
    }
}

#[test]
fn recovery_is_idempotent() {
    let mem = MemWalStorage::new();
    let (wal, _) = Wal::open(Box::new(mem.clone()), Durability::Always).unwrap();
    for rec in &ops() {
        wal.append(rec).unwrap();
    }
    drop(wal);
    // Tear the tail so recovery has real repair work to do.
    let mut image = mem.image();
    image.truncate(image.len() - 7);

    // Two independent recoveries of the same torn image agree.
    let twin = WalStore::open_with_storage(
        None,
        Box::new(MemWalStorage::from_bytes(image.clone())),
        Durability::Always,
    )
    .unwrap();
    let storage = MemWalStorage::from_bytes(image);
    let first =
        WalStore::open_with_storage(None, Box::new(storage.clone()), Durability::Always).unwrap();
    let recovered = first.recovered_records();
    let bytes = segment_bytes(first.network());
    assert!(first.truncated_bytes() > 0, "the tear was repaired");
    assert_eq!(twin.recovered_records(), recovered);
    assert_eq!(
        segment_bytes(twin.network()),
        bytes,
        "two recoveries of the same log must agree byte-for-byte"
    );
    drop(first);

    // The repair happened in place: recovering the repaired log finds a
    // clean tail and the same state — replay is idempotent.
    let second = WalStore::open_with_storage(None, Box::new(storage), Durability::Always).unwrap();
    assert_eq!(second.recovered_records(), recovered);
    assert_eq!(second.truncated_bytes(), 0);
    assert_eq!(segment_bytes(second.network()), bytes);
}

#[test]
fn batch_durability_crash_loses_at_most_the_unflushed_tail() {
    let intended = ops();
    let storage = FaultWalStorage::new();
    let (wal, _) = Wal::open(
        Box::new(storage.clone()),
        Durability::Batch {
            max_records: 4,
            max_delay: Duration::from_secs(3600),
        },
    )
    .unwrap();
    for rec in &intended {
        wal.append(rec).unwrap();
    }
    // 9 records, batches of 4: records 1..=8 are durable, record 9 is not.
    let durable = assert_recovers_prefix(&storage.durable_image(), &intended);
    assert_eq!(durable, 8);
    for image in storage.crash_images() {
        let k = assert_recovers_prefix(&image, &intended);
        assert!(k >= durable);
    }
    // An explicit flush closes the window.
    wal.flush().unwrap();
    assert_eq!(
        assert_recovers_prefix(&storage.durable_image(), &intended),
        intended.len()
    );
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tc_wal_test_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn checkpoint_over_a_base_is_byte_identical_to_direct_save() {
    let dir = scratch_dir();
    let wal_path = dir.join("net.wal");
    let base_seg = dir.join("base.seg");
    let out_seg = dir.join("out.seg");

    let all = ops();
    let (phase1, phase2) = all.split_at(5);

    // Phase 1 → checkpoint into base.seg.
    let store = WalStore::open(None, &wal_path, Durability::Always).unwrap();
    for rec in phase1 {
        store.append(rec).unwrap();
    }
    drop(store);
    let report = checkpoint(None, &wal_path, &base_seg).unwrap();
    assert_eq!(report.folded_records, 5);

    // Phase 2 on top of the base → checkpoint into out.seg.
    let store = WalStore::open(Some(&base_seg), &wal_path, Durability::Always).unwrap();
    assert_eq!(store.recovered_records(), 1, "marker-only log after fold");
    for rec in phase2 {
        store.append(rec).unwrap();
    }
    drop(store);
    let report = checkpoint(Some(&base_seg), &wal_path, &out_seg).unwrap();
    assert_eq!(report.folded_records, 1 + phase2.len() as u64);

    // The folded segment equals the network built in one shot.
    let direct = replay(None, &all).unwrap();
    assert_eq!(std::fs::read(&out_seg).unwrap(), segment_bytes(&direct));

    // And it loads back to the same stats through the ordinary reader.
    let loaded = load_network_segment_from_bytes(&std::fs::read(&out_seg).unwrap()).unwrap();
    assert_eq!(loaded.stats(), direct.stats());

    std::fs::remove_dir_all(&dir).ok();
}

/// Normalizes arbitrary raw tuples into a valid record sequence: item ids
/// are reduced modulo the number of items interned so far (records that
/// need items when none exist intern one first).
fn normalize_ops(raw: &[(u8, u32, u32, Vec<u32>)]) -> Vec<WalRecord> {
    let mut out = Vec::new();
    let mut interned = 0u32;
    for (kind, a, b, items) in raw {
        match kind % 4 {
            0 => {
                out.push(WalRecord::AddItem {
                    name: format!("w{interned}"),
                });
                interned += 1;
            }
            1 => {
                let (u, v) = (a % 8, b % 8);
                if u != v {
                    out.push(WalRecord::AddEdge { u, v });
                }
            }
            2 => {
                if interned == 0 {
                    out.push(WalRecord::AddItem {
                        name: format!("w{interned}"),
                    });
                    interned += 1;
                }
                out.push(WalRecord::AddTransaction {
                    vertex: a % 8,
                    items: items.iter().map(|i| i % interned).collect(),
                });
            }
            _ => out.push(WalRecord::AddDatabase { vertex: a % 8 }),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_log_truncated_anywhere_recovers_a_prefix(
        raw in prop::collection::vec(
            (0u8..8, 0u32..64, 0u32..64, prop::collection::vec(0u32..64, 0..4)),
            1..20,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let intended = normalize_ops(&raw);
        let mem = MemWalStorage::new();
        let (wal, _) = Wal::open(Box::new(mem.clone()), Durability::Always).unwrap();
        for rec in &intended {
            wal.append(rec).unwrap();
        }
        drop(wal);
        let image = mem.image();
        let cut = (image.len() as f64 * cut_frac) as usize;
        let k = assert_recovers_prefix(&image[..cut], &intended);
        prop_assert!(k <= intended.len());
    }

    #[test]
    fn random_wal_checkpoint_reopen_is_byte_identical(
        raw in prop::collection::vec(
            (0u8..8, 0u32..64, 0u32..64, prop::collection::vec(0u32..64, 0..4)),
            1..16,
        ),
    ) {
        let intended = normalize_ops(&raw);
        let dir = scratch_dir();
        let wal_path = dir.join("net.wal");
        let out_seg = dir.join("out.seg");

        let store = WalStore::open(None, &wal_path, Durability::Always).unwrap();
        for rec in &intended {
            store.append(rec).unwrap();
        }
        drop(store);
        checkpoint(None, &wal_path, &out_seg).unwrap();

        let direct = replay(None, &intended).unwrap();
        prop_assert_eq!(std::fs::read(&out_seg).unwrap(), segment_bytes(&direct));

        // Reopening over the checkpointed base reproduces the network.
        let store = WalStore::open(Some(&out_seg), &wal_path, Durability::Always).unwrap();
        prop_assert_eq!(segment_bytes(store.network()), segment_bytes(&direct));
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}
