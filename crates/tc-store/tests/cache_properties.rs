//! Property tests for the byte-budgeted node cache: for **any** query
//! sequence and **any** budget with room for at least the largest single
//! node,
//!
//! * answers are byte-identical to the unbounded tree (budget is an
//!   envelope knob, never a correctness knob);
//! * `cache_bytes_used` never exceeds the budget at any observation
//!   point between queries;
//! * a re-materialised (previously evicted) node equals its first
//!   materialisation field-for-field — and the segment format is
//!   canonical, so value equality is byte identity;
//! * the ledger balances: `materialized_total - resident == evictions`.

use proptest::prelude::*;
use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder, TrussDecomposition};
use tc_index::{TcTree, TcTreeBuilder};
use tc_store::{SegmentTcTree, StoreOptions};
use tc_txdb::Item;

const MAX_V: u32 = 7;
const MAX_ITEMS: u32 = 5;

/// Builds a valid network from arbitrary raw parts: endpoints are reduced
/// mod the vertex count, self loops dropped, transactions deduplicated.
fn build_network(n: u32, raw_edges: &[(u32, u32)], raw_txs: &[(u32, Vec<u32>)]) -> DatabaseNetwork {
    let mut b = DatabaseNetworkBuilder::new();
    let items: Vec<Item> = (0..MAX_ITEMS)
        .map(|i| b.intern_item(&format!("w{i}")))
        .collect();
    for &(u, v) in raw_edges {
        let (u, v) = (u % n, v % n);
        if u != v {
            b.add_edge(u, v);
        }
    }
    for (v, tx) in raw_txs {
        let mut ids: Vec<u32> = tx.iter().map(|&i| i % MAX_ITEMS).collect();
        ids.sort_unstable();
        ids.dedup();
        let tx: Vec<Item> = ids.into_iter().map(|i| items[i as usize]).collect();
        b.add_transaction(v % n, &tx);
    }
    b.ensure_vertex(n - 1);
    b.build().unwrap()
}

fn tree_and_segment(
    n: u32,
    raw_edges: &[(u32, u32)],
    raw_txs: &[(u32, Vec<u32>)],
) -> (TcTree, Vec<u8>) {
    let net = build_network(n, raw_edges, raw_txs);
    let tree = TcTreeBuilder {
        threads: 1,
        max_len: usize::MAX,
    }
    .build(&net);
    let mut buf = Vec::new();
    tc_store::save_tree_segment(&tree, &mut buf).unwrap();
    (tree, buf)
}

/// Materialises every node of an unbounded probe tree one by one and
/// reads the per-node accounted size off the ledger deltas. Returns
/// `(largest_entry, total_bytes)`.
fn probe_entry_sizes(bytes: &[u8]) -> (u64, u64) {
    let probe = SegmentTcTree::from_bytes(bytes.to_vec()).unwrap();
    let mut max_entry = 0u64;
    let mut prev = 0u64;
    for id in 1..=probe.num_nodes() as u32 {
        probe.truss(id).unwrap();
        let b = probe.cache_stats().bytes_used;
        max_entry = max_entry.max(b - prev);
        prev = b;
    }
    (max_entry, prev)
}

/// Both segment trees walk the same skeleton in the same order, so answers
/// must agree element-for-element, not just as sets.
fn assert_same_answer(a: &tc_index::QueryResult, b: &tc_index::QueryResult) {
    assert_eq!(a.retrieved_nodes, b.retrieved_nodes);
    assert_eq!(a.trusses.len(), b.trusses.len());
    for (ta, tb) in a.trusses.iter().zip(&b.trusses) {
        assert_eq!(&ta.pattern, &tb.pattern);
        assert_eq!(&ta.edges, &tb.edges);
        assert_eq!(&ta.vertices, &tb.vertices);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn budgeted_answers_equal_unbounded_within_budget(
        n in 3u32..MAX_V,
        raw_edges in prop::collection::vec((0u32..64, 0u32..64), 4..28),
        raw_txs in prop::collection::vec((0u32..64, prop::collection::vec(0u32..64, 1..4)), 4..40),
        queries in prop::collection::vec((0u32..64, 0.0f64..1.5), 1..24),
        budget_scale in 0.0f64..1.0,
    ) {
        let (tree, bytes) = tree_and_segment(n, &raw_edges, &raw_txs);
        let (max_entry, total) = probe_entry_sizes(&bytes);
        // Any budget with room for at least the largest single node.
        let budget = max_entry + ((total.saturating_sub(max_entry)) as f64 * budget_scale) as u64;
        let unbounded = SegmentTcTree::from_bytes(bytes.clone()).unwrap();
        let budgeted = SegmentTcTree::from_bytes_with(
            bytes,
            StoreOptions { cache_bytes: Some(budget), ..StoreOptions::default() },
        ).unwrap();

        for &(sel, alpha) in &queries {
            if sel % 2 == 0 || tree.num_nodes() == 0 {
                let a = unbounded.query_by_alpha(alpha).unwrap();
                let b = budgeted.query_by_alpha(alpha).unwrap();
                assert_same_answer(&a, &b);
            } else {
                let id = 1 + sel % tree.num_nodes() as u32;
                let q = tree.node(id).pattern.clone();
                let a = unbounded.query_by_pattern(&q).unwrap();
                let b = budgeted.query_by_pattern(&q).unwrap();
                assert_same_answer(&a, &b);
            }
            let used = budgeted.cache_stats().bytes_used;
            prop_assert!(
                used <= budget,
                "cache_bytes_used {} exceeds budget {} (max entry {}, total {})",
                used, budget, max_entry, total
            );
        }

        // The ledger balances and the gauges agree.
        let s = budgeted.cache_stats();
        prop_assert_eq!(s.resident, budgeted.materialized_nodes());
        prop_assert_eq!(s.budget, Some(budget));
        prop_assert_eq!(
            s.materialized_total - s.resident as u64,
            s.evictions,
            "every materialisation is either resident or evicted"
        );
        // The unbounded reference never evicts and its gauge equals its counter.
        let u = unbounded.cache_stats();
        prop_assert_eq!(u.evictions, 0);
        prop_assert_eq!(u.materialized_total, u.resident as u64);
    }

    #[test]
    fn rematerialized_nodes_are_identical_to_first_materialisation(
        n in 3u32..MAX_V,
        raw_edges in prop::collection::vec((0u32..64, 0u32..64), 4..28),
        raw_txs in prop::collection::vec((0u32..64, prop::collection::vec(0u32..64, 1..4)), 4..40),
    ) {
        let (_tree, bytes) = tree_and_segment(n, &raw_edges, &raw_txs);
        let (max_entry, _total) = probe_entry_sizes(&bytes);
        let probe = SegmentTcTree::from_bytes(bytes.clone()).unwrap();
        let nodes = probe.num_nodes();
        if nodes < 2 {
            return Ok(()); // nothing to evict against
        }
        // Room for roughly one node: every touch of a different node
        // evicts the previous one, so the second pass re-materialises.
        let seg = SegmentTcTree::from_bytes_with(
            bytes,
            StoreOptions { cache_bytes: Some(max_entry), ..StoreOptions::default() },
        ).unwrap();
        let first: Vec<TrussDecomposition> = (1..=nodes as u32)
            .map(|id| seg.truss(id).unwrap().as_ref().clone())
            .collect();
        prop_assert!(seg.cache_stats().evictions > 0, "one-node budget must evict");
        for pass in 0..2 {
            for id in 1..=nodes as u32 {
                let again = seg.truss(id).unwrap();
                prop_assert_eq!(
                    again.as_ref(),
                    &first[(id - 1) as usize],
                    "node {} diverged on re-materialisation (pass {})",
                    id, pass
                );
            }
        }
    }
}
