//! Threaded stress tests for [`SegmentTcTree`]: many concurrent QBA/QBP
//! callers over one shared tree — the access pattern the `tc-serve`
//! daemon's worker pool produces.
//!
//! Contracts asserted under contention:
//!
//! * every concurrent answer equals the in-memory [`TcTree`]'s answer
//!   for the same query — with an unbounded cache (materialisation races
//!   are benign: losers adopt the winner's entry) **and** with a byte
//!   budget a tenth of the working set (eviction never touches pinned
//!   in-flight nodes, and re-materialised nodes parse identical bytes);
//! * the `materialized_nodes()` gauge never exceeds the node count, and
//!   with a budget the ledger balances:
//!   `materialized_total - resident == evictions`;
//! * an unbounded cache never evicts — the pre-cache behaviour is the
//!   `cache_bytes: None` fast path, not a degenerate budget.

use tc_data::{generate_coauthor, CoauthorConfig};
use tc_index::{TcTree, TcTreeBuilder};
use tc_store::{SegmentTcTree, StoreOptions};
use tc_txdb::Pattern;

fn sample_tree() -> TcTree {
    let net = generate_coauthor(&CoauthorConfig {
        groups: 4,
        authors_per_group: 10,
        seed: 23,
        ..CoauthorConfig::default()
    })
    .network;
    TcTreeBuilder::default().build(&net)
}

/// Sorted `(pattern, edges)` pairs — the order-insensitive answer key.
fn answer_key(trusses: &[tc_core::PatternTruss]) -> Vec<(Pattern, Vec<(u32, u32)>)> {
    let mut key: Vec<_> = trusses
        .iter()
        .map(|t| (t.pattern.clone(), t.edges.clone()))
        .collect();
    key.sort();
    key
}

#[test]
fn concurrent_queries_match_the_in_memory_tree() {
    let tree = sample_tree();
    let mut bytes = Vec::new();
    tc_store::save_tree_segment(&tree, &mut bytes).unwrap();
    let seg = SegmentTcTree::from_bytes(bytes).unwrap();
    assert_eq!(seg.materialized_nodes(), 0, "open must stay lazy");

    // Precompute the reference answers serially from the in-memory tree.
    let bound = seg.alpha_upper_bound();
    let alphas: Vec<f64> = (0..8).map(|i| bound * i as f64 / 7.0).collect();
    let qba_expected: Vec<_> = alphas
        .iter()
        .map(|&a| answer_key(&tree.query_by_alpha(a).trusses))
        .collect();
    let patterns: Vec<Pattern> = (1..=tree.num_nodes() as u32)
        .map(|id| tree.node(id).pattern.clone())
        .collect();
    let qbp_expected: Vec<_> = patterns
        .iter()
        .map(|q| answer_key(&tree.query_by_pattern(q).trusses))
        .collect();

    let threads = 8;
    let rounds = 30;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (seg, alphas, qba_expected, patterns, qbp_expected) =
                (&seg, &alphas, &qba_expected, &patterns, &qbp_expected);
            scope.spawn(move || {
                for round in 0..rounds {
                    // Phase-shift per thread so materialisation races hit
                    // different nodes at different times. `pick / 2` strides
                    // the whole fixture pool: `pick` itself has fixed parity
                    // inside each branch and would alias to half the indices.
                    let pick = t + round;
                    if pick % 2 == 0 {
                        let i = (pick / 2) % alphas.len();
                        let r = seg.query_by_alpha(alphas[i]).unwrap();
                        assert_eq!(
                            answer_key(&r.trusses),
                            qba_expected[i],
                            "QBA diverged at alpha {}",
                            alphas[i]
                        );
                    } else {
                        let i = (pick / 2) % patterns.len();
                        let r = seg.query_by_pattern(&patterns[i]).unwrap();
                        assert_eq!(
                            answer_key(&r.trusses),
                            qbp_expected[i],
                            "QBP diverged at {}",
                            patterns[i]
                        );
                    }
                    // The cache gauge is bounded at every instant, not
                    // just at the end.
                    assert!(
                        seg.materialized_nodes() <= seg.num_nodes(),
                        "materialized {} of {} nodes",
                        seg.materialized_nodes(),
                        seg.num_nodes()
                    );
                }
            });
        }
    });

    // After a full QBA sweep at alpha 0 every node is materialised at
    // most once; the gauge sits exactly within [1, num_nodes].
    let full = seg.query_by_alpha(0.0).unwrap();
    assert!(full.retrieved_nodes > 0);
    let m = seg.materialized_nodes();
    assert!(
        m <= seg.num_nodes() && m > 0,
        "gauge out of range: {m} of {}",
        seg.num_nodes()
    );
    // Unbounded means unbounded: nothing is ever evicted, and the
    // all-time counter equals the resident gauge.
    let stats = seg.cache_stats();
    assert_eq!(stats.budget, None);
    assert_eq!(stats.evictions, 0, "unbounded cache evicted");
    assert_eq!(stats.materialized_total, m as u64);
}

/// The same concurrent workload against a cache budgeted at a tenth of
/// the fully-materialised working set. Eviction churns continuously, yet
/// every answer must still match the in-memory tree: sweeps skip pinned
/// (in-flight) entries, and a re-materialised node parses the same
/// segment bytes.
#[test]
fn concurrent_budgeted_queries_match_and_the_ledger_balances() {
    let tree = sample_tree();
    let mut bytes = Vec::new();
    tc_store::save_tree_segment(&tree, &mut bytes).unwrap();

    // Probe per-node entry sizes off an unbounded twin's ledger.
    let probe = SegmentTcTree::from_bytes(bytes.clone()).unwrap();
    let (mut max_entry, mut prev) = (0u64, 0u64);
    for id in 1..=probe.num_nodes() as u32 {
        probe.truss(id).unwrap();
        let used = probe.cache_stats().bytes_used;
        max_entry = max_entry.max(used - prev);
        prev = used;
    }
    let total = prev;
    let budget = (total / 10).max(max_entry);
    assert!(budget < total, "fixture too small to exercise eviction");

    let seg = SegmentTcTree::from_bytes_with(
        bytes,
        StoreOptions {
            cache_bytes: Some(budget),
            ..StoreOptions::default()
        },
    )
    .unwrap();

    let bound = seg.alpha_upper_bound();
    let alphas: Vec<f64> = (0..8).map(|i| bound * i as f64 / 7.0).collect();
    let qba_expected: Vec<_> = alphas
        .iter()
        .map(|&a| answer_key(&tree.query_by_alpha(a).trusses))
        .collect();
    let patterns: Vec<Pattern> = (1..=tree.num_nodes() as u32)
        .map(|id| tree.node(id).pattern.clone())
        .collect();
    let qbp_expected: Vec<_> = patterns
        .iter()
        .map(|q| answer_key(&tree.query_by_pattern(q).trusses))
        .collect();

    let threads = 8;
    let rounds = 30;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (seg, alphas, qba_expected, patterns, qbp_expected) =
                (&seg, &alphas, &qba_expected, &patterns, &qbp_expected);
            scope.spawn(move || {
                for round in 0..rounds {
                    let pick = t + round;
                    if pick % 2 == 0 {
                        let i = (pick / 2) % alphas.len();
                        let r = seg.query_by_alpha(alphas[i]).unwrap();
                        assert_eq!(
                            answer_key(&r.trusses),
                            qba_expected[i],
                            "QBA diverged at alpha {}",
                            alphas[i]
                        );
                    } else {
                        let i = (pick / 2) % patterns.len();
                        let r = seg.query_by_pattern(&patterns[i]).unwrap();
                        assert_eq!(
                            answer_key(&r.trusses),
                            qbp_expected[i],
                            "QBP diverged at {}",
                            patterns[i]
                        );
                    }
                    // Transient envelope: the budget plus, per thread, one
                    // pinned entry the sweep must skip and one mid-insert
                    // charge not yet enforced.
                    let used = seg.cache_stats().bytes_used;
                    let slack = 2 * threads as u64 * max_entry;
                    assert!(
                        used <= budget + slack,
                        "cache_bytes_used {used} above budget {budget} + slack {slack}"
                    );
                }
            });
        }
    });

    // Quiescent: the ledger balances and eviction actually happened.
    let stats = seg.cache_stats();
    assert_eq!(stats.budget, Some(budget));
    assert!(
        stats.evictions > 0,
        "tenth-of-working-set budget never evicted"
    );
    assert_eq!(
        stats.materialized_total - stats.resident as u64,
        stats.evictions,
        "every materialisation is either resident or evicted"
    );
    assert_eq!(stats.resident, seg.materialized_nodes());
    assert!(stats.hits + stats.misses > 0);
}
