//! Property tests for the segment format, over randomly generated
//! networks and TC-Trees:
//!
//! * **save → load → save is byte-identical** — a segment is a pure,
//!   canonical function of the value it stores;
//! * **text → segment → text is semantically equal** (and, because both
//!   text writers are canonical too, byte-identical) — the two formats
//!   interconvert without loss.

use proptest::prelude::*;
use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder};
use tc_index::{TcTree, TcTreeBuilder};
use tc_store::SegmentTcTree;
use tc_txdb::{Item, Pattern};

const MAX_V: u32 = 7;
const MAX_ITEMS: u32 = 5;

/// Builds a valid network from arbitrary raw parts: endpoints are reduced
/// mod the vertex count, self loops dropped, transactions deduplicated.
fn build_network(n: u32, raw_edges: &[(u32, u32)], raw_txs: &[(u32, Vec<u32>)]) -> DatabaseNetwork {
    let mut b = DatabaseNetworkBuilder::new();
    let items: Vec<Item> = (0..MAX_ITEMS)
        .map(|i| b.intern_item(&format!("w{i}")))
        .collect();
    for &(u, v) in raw_edges {
        let (u, v) = (u % n, v % n);
        if u != v {
            b.add_edge(u, v);
        }
    }
    for (v, tx) in raw_txs {
        let mut ids: Vec<u32> = tx.iter().map(|&i| i % MAX_ITEMS).collect();
        ids.sort_unstable();
        ids.dedup();
        let tx: Vec<Item> = ids.into_iter().map(|i| items[i as usize]).collect();
        b.add_transaction(v % n, &tx);
    }
    b.ensure_vertex(n - 1);
    b.build().unwrap()
}

fn network_segment(net: &DatabaseNetwork) -> Vec<u8> {
    let mut buf = Vec::new();
    tc_store::save_network_segment(net, &mut buf).unwrap();
    buf
}

fn tree_segment(tree: &TcTree) -> Vec<u8> {
    let mut buf = Vec::new();
    tc_store::save_tree_segment(tree, &mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn network_save_load_save_is_byte_identical(
        n in 1u32..MAX_V,
        raw_edges in prop::collection::vec((0u32..64, 0u32..64), 0..24),
        raw_txs in prop::collection::vec((0u32..64, prop::collection::vec(0u32..64, 1..5)), 0..32),
    ) {
        let net = build_network(n, &raw_edges, &raw_txs);
        let first = network_segment(&net);
        let loaded = tc_store::load_network_segment_from_bytes(&first).unwrap();
        let second = network_segment(&loaded);
        prop_assert_eq!(first, second);
        prop_assert_eq!(loaded.stats(), net.stats());
    }

    #[test]
    fn network_text_to_segment_to_text_is_lossless(
        n in 1u32..MAX_V,
        raw_edges in prop::collection::vec((0u32..64, 0u32..64), 0..24),
        raw_txs in prop::collection::vec((0u32..64, prop::collection::vec(0u32..64, 1..5)), 0..32),
    ) {
        let net = build_network(n, &raw_edges, &raw_txs);
        let mut text1 = Vec::new();
        tc_data::save_network(&net, &mut text1).unwrap();
        // text → value → segment → value → text
        let from_text = tc_data::load_network(std::io::Cursor::new(&text1)).unwrap();
        let seg = network_segment(&from_text);
        let from_seg = tc_store::load_network_segment_from_bytes(&seg).unwrap();
        let mut text2 = Vec::new();
        tc_data::save_network(&from_seg, &mut text2).unwrap();
        prop_assert_eq!(text1, text2);
        // Semantic spot checks: stats, names, singleton frequencies.
        prop_assert_eq!(from_seg.stats(), net.stats());
        for item in net.item_space().items() {
            prop_assert_eq!(net.item_space().name(item), from_seg.item_space().name(item));
        }
        for item in net.items_in_use() {
            let p = Pattern::singleton(item);
            for v in 0..net.num_vertices() as u32 {
                prop_assert!((net.frequency(v, &p) - from_seg.frequency(v, &p)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tree_save_load_save_is_byte_identical(
        n in 3u32..MAX_V,
        raw_edges in prop::collection::vec((0u32..64, 0u32..64), 4..28),
        raw_txs in prop::collection::vec((0u32..64, prop::collection::vec(0u32..64, 1..4)), 4..40),
    ) {
        let net = build_network(n, &raw_edges, &raw_txs);
        let tree = TcTreeBuilder { threads: 1, max_len: usize::MAX }.build(&net);
        let first = tree_segment(&tree);
        let loaded = SegmentTcTree::from_bytes(first.clone()).unwrap().to_tree().unwrap();
        let second = tree_segment(&loaded);
        prop_assert_eq!(first, second);
        prop_assert_eq!(loaded.num_nodes(), tree.num_nodes());
    }

    #[test]
    fn tree_text_to_segment_to_text_is_lossless(
        n in 3u32..MAX_V,
        raw_edges in prop::collection::vec((0u32..64, 0u32..64), 4..28),
        raw_txs in prop::collection::vec((0u32..64, prop::collection::vec(0u32..64, 1..4)), 4..40),
    ) {
        let net = build_network(n, &raw_edges, &raw_txs);
        let tree = TcTreeBuilder { threads: 1, max_len: usize::MAX }.build(&net);
        let mut text1 = Vec::new();
        tree.save(&mut text1).unwrap();
        let from_text = TcTree::load(std::io::Cursor::new(&text1)).unwrap();
        let seg = tree_segment(&from_text);
        let from_seg = SegmentTcTree::from_bytes(seg).unwrap().to_tree().unwrap();
        let mut text2 = Vec::new();
        from_seg.save(&mut text2).unwrap();
        prop_assert_eq!(text1, text2);
    }

    #[test]
    fn segment_queries_match_in_memory_queries(
        n in 3u32..MAX_V,
        raw_edges in prop::collection::vec((0u32..64, 0u32..64), 4..28),
        raw_txs in prop::collection::vec((0u32..64, prop::collection::vec(0u32..64, 1..4)), 4..40),
        alpha in 0.0f64..2.0,
    ) {
        let net = build_network(n, &raw_edges, &raw_txs);
        let tree = TcTreeBuilder { threads: 1, max_len: usize::MAX }.build(&net);
        let seg = SegmentTcTree::from_bytes(tree_segment(&tree)).unwrap();
        let a = tree.query_by_alpha(alpha);
        let b = seg.query_by_alpha(alpha).unwrap();
        prop_assert_eq!(a.retrieved_nodes, b.retrieved_nodes);
        for (ta, tb) in a.trusses.iter().zip(&b.trusses) {
            prop_assert_eq!(&ta.pattern, &tb.pattern);
            prop_assert_eq!(&ta.edges, &tb.edges);
        }
    }
}
