//! The paged segment substrate: fixed-size CRC-checked pages, a
//! checksummed header page, and section-addressed byte streams.
//!
//! The normative byte-level specification, with worked hexdumps, is
//! `docs/SEGMENT_FORMAT.md` in the repository; this module is its
//! implementation.
//!
//! ## File layout
//!
//! A segment file is a sequence of fixed-size pages ([`PAGE_SIZE`] bytes).
//! Every page is self-checking:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length (LE u32, ≤ PAGE_CAP)
//! 4       4     CRC-32 over the whole page except this field
//! 8       len   payload
//! 8+len   …     zero padding to PAGE_SIZE
//! ```
//!
//! The checksum covers the length field *and* the padding, so any bit flip
//! anywhere in the file lands in some page's checksummed region.
//!
//! Page 0 is the **header page**. Its payload is:
//!
//! ```text
//! magic "TCSEG01\n" (8 bytes) · version u16 · kind u16 · page_size u32
//! section_count u32 · per section: id u32, first_page u64,
//! page_count u64, byte_len u64
//! ```
//!
//! Each **section** is a logical byte stream chunked into consecutive
//! pages: every page holds exactly [`PAGE_CAP`] payload bytes except the
//! last, so byte offset → page arithmetic is a division. Readers fetch
//! sub-ranges of a section without touching the rest of the file — the
//! basis of the lazy TC-Tree reader in [`crate::tree`].

use crate::source::{open_source, MemSource, PageSource, SourceKind};
use std::io::Write;
use std::path::Path;
use tc_util::bytes::{checked_len_u32, put_u16, put_u32, put_u64, ByteReader};
use tc_util::{Crc32, LoadError};

/// Bytes per page, header included.
pub const PAGE_SIZE: usize = 4096;
/// Bytes of page bookkeeping (payload length + CRC-32).
pub const PAGE_HEADER: usize = 8;
/// Payload capacity of one page.
pub const PAGE_CAP: usize = PAGE_SIZE - PAGE_HEADER;
/// The 8-byte magic prefix of every segment file (also the sniffing key).
pub const MAGIC: [u8; 8] = *b"TCSEG01\n";
/// Current format version.
pub const VERSION: u16 = 1;

/// What a segment file stores, recorded in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// A [`tc_core::DatabaseNetwork`].
    Network,
    /// A [`tc_index::TcTree`].
    TcTree,
}

impl SegmentKind {
    fn code(self) -> u16 {
        match self {
            SegmentKind::Network => 1,
            SegmentKind::TcTree => 2,
        }
    }

    fn from_code(code: u16) -> Option<SegmentKind> {
        match code {
            1 => Some(SegmentKind::Network),
            2 => Some(SegmentKind::TcTree),
            _ => None,
        }
    }
}

/// One section's location and extent, from the header page.
#[derive(Debug, Clone, Copy)]
pub struct SectionInfo {
    /// Format-defined section id (see [`crate::network`] / [`crate::tree`]).
    pub id: u32,
    /// First page of the section.
    pub first_page: u64,
    /// Number of pages the section spans.
    pub page_count: u64,
    /// Logical byte length of the section stream.
    pub byte_len: u64,
}

/// The decoded header page.
#[derive(Debug, Clone)]
pub struct Header {
    /// What the file stores.
    pub kind: SegmentKind,
    /// Sections in file order.
    pub sections: Vec<SectionInfo>,
}

impl Header {
    /// Finds a section by id.
    pub fn section(&self, id: u32) -> Result<SectionInfo, LoadError> {
        self.sections
            .iter()
            .copied()
            .find(|s| s.id == id)
            .ok_or_else(|| LoadError::corrupt(format!("segment: missing section {id}")))
    }
}

/// Pages a section of `byte_len` bytes occupies.
fn pages_for(byte_len: u64) -> u64 {
    byte_len.div_ceil(PAGE_CAP as u64)
}

/// Encodes one page: length, checksum, payload, zero padding.
///
/// The length field is `u32`, so the payload size goes through a checked
/// conversion: an oversized payload is a save-time `InvalidInput` error,
/// never a silently wrapped length that would read back corrupt.
fn encode_page(payload: &[u8]) -> std::io::Result<[u8; PAGE_SIZE]> {
    // The capacity check comes first: it subsumes the u32 range (PAGE_CAP
    // is far below u32::MAX) and names the real limit in its error.
    if payload.len() > PAGE_CAP {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "page payload of {} bytes exceeds the {PAGE_CAP}-byte page capacity",
                payload.len()
            ),
        ));
    }
    let len = checked_len_u32(payload.len(), "page payload length")?;
    let mut page = [0u8; PAGE_SIZE];
    page[..4].copy_from_slice(&len.to_le_bytes());
    page[PAGE_HEADER..PAGE_HEADER + payload.len()].copy_from_slice(payload);
    let mut crc = Crc32::new();
    crc.update(&page[..4]);
    crc.update(&page[PAGE_HEADER..]);
    page[4..8].copy_from_slice(&crc.finish().to_le_bytes());
    Ok(page)
}

/// Writes a complete segment file: header page, then every section chunked
/// into pages. `sections` pairs a section id with its byte stream.
pub fn write_segment<W: Write>(
    w: &mut W,
    kind: SegmentKind,
    sections: &[(u32, Vec<u8>)],
) -> std::io::Result<()> {
    let mut header = Vec::with_capacity(PAGE_CAP);
    header.extend_from_slice(&MAGIC);
    put_u16(&mut header, VERSION);
    put_u16(&mut header, kind.code());
    put_u32(&mut header, PAGE_SIZE as u32);
    put_u32(
        &mut header,
        checked_len_u32(sections.len(), "section count")?,
    );
    let mut next_page = 1u64;
    for (id, bytes) in sections {
        put_u32(&mut header, *id);
        put_u64(&mut header, next_page);
        let pages = pages_for(bytes.len() as u64);
        put_u64(&mut header, pages);
        put_u64(&mut header, bytes.len() as u64);
        next_page += pages;
    }
    assert!(header.len() <= PAGE_CAP, "header exceeds one page");

    let mut w = std::io::BufWriter::new(w);
    w.write_all(&encode_page(&header)?)?;
    // An empty section spans zero pages; the header records byte_len 0.
    for (_, bytes) in sections {
        for chunk in bytes.chunks(PAGE_CAP) {
            w.write_all(&encode_page(chunk)?)?;
        }
    }
    w.flush()
}

/// Random-access page reader over a segment file (or an in-memory copy).
///
/// Every page read re-verifies that page's CRC, so damage in regions that
/// are only touched lazily still surfaces as [`LoadError::Checksum`] at
/// access time — regardless of the [`PageSource`] backing the reads;
/// [`PageFile::open`] additionally validates the header page and the
/// file's total length eagerly, so truncation is caught up front.
#[derive(Debug)]
pub struct PageFile {
    source: Box<dyn PageSource>,
    header: Header,
}

impl PageFile {
    /// Opens `path` with the default buffered reader, validating the
    /// header page, section geometry, and the total file length.
    pub fn open(path: &Path) -> Result<PageFile, LoadError> {
        Self::open_with(path, SourceKind::default())
    }

    /// Opens `path` through the requested [`SourceKind`].
    pub fn open_with(path: &Path, kind: SourceKind) -> Result<PageFile, LoadError> {
        Self::with_source(open_source(path, kind)?)
    }

    /// Opens an in-memory segment image (tests, conversions).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<PageFile, LoadError> {
        Self::with_source(Box::new(MemSource(bytes)))
    }

    /// The backing this file reads through (for diagnostics).
    pub fn source_kind(&self) -> SourceKind {
        self.source.kind()
    }

    fn with_source(source: Box<dyn PageSource>) -> Result<PageFile, LoadError> {
        let actual_len = source.len();
        let mut pf = PageFile {
            source,
            header: Header {
                kind: SegmentKind::Network,
                sections: Vec::new(),
            },
        };
        pf.header = pf.read_header()?;
        // Geometry: sections must tile pages 1.. contiguously, and the file
        // must contain exactly the promised pages — truncation anywhere is
        // caught here, before any lazy read.
        let mut next_page = 1u64;
        for s in &pf.header.sections {
            if s.first_page != next_page {
                return Err(LoadError::corrupt(format!(
                    "segment: section {} starts at page {} (want {next_page})",
                    s.id, s.first_page
                )));
            }
            if s.page_count != pages_for(s.byte_len) {
                return Err(LoadError::corrupt(format!(
                    "segment: section {} spans {} pages for {} bytes",
                    s.id, s.page_count, s.byte_len
                )));
            }
            next_page += s.page_count;
        }
        let expect_len = next_page * PAGE_SIZE as u64;
        if actual_len != expect_len {
            return Err(LoadError::corrupt(format!(
                "segment: file is {actual_len} bytes, header promises {expect_len}"
            )));
        }
        Ok(pf)
    }

    /// The decoded header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    fn read_raw_page(&self, index: u64) -> Result<[u8; PAGE_SIZE], LoadError> {
        let mut page = [0u8; PAGE_SIZE];
        let off = index * PAGE_SIZE as u64;
        if off
            .checked_add(PAGE_SIZE as u64)
            .is_none_or(|end| end > self.source.len())
        {
            return Err(LoadError::corrupt(format!(
                "segment: page {index} truncated"
            )));
        }
        self.source.read_at(off, &mut page).map_err(|e| match e {
            LoadError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                LoadError::corrupt(format!("segment: page {index} truncated"))
            }
            other => other,
        })?;
        Ok(page)
    }

    /// Reads and checksum-verifies page `index`, returning its payload.
    pub fn read_page(&self, index: u64) -> Result<Vec<u8>, LoadError> {
        let page = self.read_raw_page(index)?;
        let stored = u32::from_le_bytes([page[4], page[5], page[6], page[7]]);
        let mut crc = Crc32::new();
        crc.update(&page[..4]);
        crc.update(&page[PAGE_HEADER..]);
        if crc.finish() != stored {
            return Err(LoadError::checksum(format!("segment: page {index}")));
        }
        let len = u32::from_le_bytes([page[0], page[1], page[2], page[3]]) as usize;
        if len > PAGE_CAP {
            return Err(LoadError::corrupt(format!(
                "segment: page {index} claims {len} payload bytes"
            )));
        }
        Ok(page[PAGE_HEADER..PAGE_HEADER + len].to_vec())
    }

    fn read_header(&self) -> Result<Header, LoadError> {
        // Sniff the magic before trusting the page checksum, so a non-
        // segment file reports "not a segment" instead of a CRC error.
        let raw = self.read_raw_page(0)?;
        if raw[PAGE_HEADER..PAGE_HEADER + MAGIC.len()] != MAGIC {
            return Err(LoadError::corrupt("segment: bad magic (not a tcseg file)"));
        }
        let payload = self.read_page(0)?;
        let mut r = ByteReader::new(&payload);
        let eof = || LoadError::corrupt("segment: header page too short");
        r.take(MAGIC.len()).ok_or_else(eof)?;
        let version = r.u16().ok_or_else(eof)?;
        if version != VERSION {
            return Err(LoadError::corrupt(format!(
                "segment: unsupported version {version} (reader supports {VERSION})"
            )));
        }
        let kind_code = r.u16().ok_or_else(eof)?;
        let kind = SegmentKind::from_code(kind_code)
            .ok_or_else(|| LoadError::corrupt(format!("segment: unknown kind {kind_code}")))?;
        let page_size = r.u32().ok_or_else(eof)?;
        if page_size as usize != PAGE_SIZE {
            return Err(LoadError::corrupt(format!(
                "segment: page size {page_size} unsupported (want {PAGE_SIZE})"
            )));
        }
        let count = r.u32().ok_or_else(eof)?;
        // The header fits one page, which bounds the section count; reject
        // absurd counts before allocating.
        if count as usize > PAGE_CAP / 28 {
            return Err(LoadError::corrupt(
                "segment: section table overflows header",
            ));
        }
        let mut sections = Vec::with_capacity(count as usize);
        for _ in 0..count {
            sections.push(SectionInfo {
                id: r.u32().ok_or_else(eof)?,
                first_page: r.u64().ok_or_else(eof)?,
                page_count: r.u64().ok_or_else(eof)?,
                byte_len: r.u64().ok_or_else(eof)?,
            });
        }
        if !r.is_empty() {
            return Err(LoadError::corrupt("segment: trailing bytes in header"));
        }
        Ok(Header { kind, sections })
    }

    /// Reads `len` bytes of section `s` starting at logical offset `start`,
    /// touching (and verifying) only the pages that overlap the range.
    pub fn read_section_range(
        &self,
        s: &SectionInfo,
        start: u64,
        len: u64,
    ) -> Result<Vec<u8>, LoadError> {
        let end = start
            .checked_add(len)
            .filter(|&e| e <= s.byte_len)
            .ok_or_else(|| {
                LoadError::corrupt(format!(
                    "segment: range {start}+{len} outside section {} ({} bytes)",
                    s.id, s.byte_len
                ))
            })?;
        let mut out = Vec::with_capacity(len as usize);
        let cap = PAGE_CAP as u64;
        let mut off = start;
        while off < end {
            let page_idx = off / cap;
            let payload = self.read_page(s.first_page + page_idx)?;
            let in_page = (off % cap) as usize;
            let want = ((end - off) as usize).min(PAGE_CAP - in_page);
            if payload.len() < in_page + want {
                return Err(LoadError::corrupt(format!(
                    "segment: page {} short for section {} range",
                    s.first_page + page_idx,
                    s.id
                )));
            }
            out.extend_from_slice(&payload[in_page..in_page + want]);
            off += want as u64;
        }
        Ok(out)
    }

    /// Reads a whole section.
    pub fn read_section(&self, s: &SectionInfo) -> Result<Vec<u8>, LoadError> {
        self.read_section_range(s, 0, s.byte_len)
    }

    /// Verifies every page checksum in the file (header included) without
    /// decoding any content — a full integrity scan.
    pub fn verify_all(&self) -> Result<(), LoadError> {
        let pages = 1 + self
            .header
            .sections
            .iter()
            .map(|s| s.page_count)
            .sum::<u64>();
        for i in 0..pages {
            self.read_page(i)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sections: &[(u32, Vec<u8>)]) -> PageFile {
        let mut buf = Vec::new();
        write_segment(&mut buf, SegmentKind::Network, sections).unwrap();
        assert_eq!(buf.len() % PAGE_SIZE, 0, "whole pages only");
        PageFile::from_bytes(buf).unwrap()
    }

    #[test]
    fn empty_and_multi_page_sections_roundtrip() {
        let big: Vec<u8> = (0..3 * PAGE_CAP + 17).map(|i| (i % 251) as u8).collect();
        let pf = roundtrip(&[(1, Vec::new()), (2, b"abc".to_vec()), (3, big.clone())]);
        assert_eq!(pf.header().kind, SegmentKind::Network);
        let s1 = pf.header().section(1).unwrap();
        assert_eq!(pf.read_section(&s1).unwrap(), Vec::<u8>::new());
        let s3 = pf.header().section(3).unwrap();
        assert_eq!(pf.read_section(&s3).unwrap(), big);
        pf.verify_all().unwrap();
    }

    #[test]
    fn section_range_reads_cross_page_boundaries() {
        let data: Vec<u8> = (0..2 * PAGE_CAP + 100).map(|i| (i % 199) as u8).collect();
        let pf = roundtrip(&[(7, data.clone())]);
        let s = pf.header().section(7).unwrap();
        for (start, len) in [
            (0u64, 10u64),
            (PAGE_CAP as u64 - 3, 7),
            (PAGE_CAP as u64, PAGE_CAP as u64),
            (data.len() as u64 - 5, 5),
        ] {
            let got = pf.read_section_range(&s, start, len).unwrap();
            assert_eq!(got, data[start as usize..(start + len) as usize]);
        }
        assert!(pf.read_section_range(&s, data.len() as u64, 1).is_err());
    }

    #[test]
    fn missing_section_is_corrupt() {
        let pf = roundtrip(&[(1, b"x".to_vec())]);
        assert!(matches!(pf.header().section(9), Err(LoadError::Corrupt(_))));
    }

    #[test]
    fn any_bit_flip_is_detected() {
        let mut buf = Vec::new();
        write_segment(
            &mut buf,
            SegmentKind::TcTree,
            &[(1, (0..500u32).flat_map(u32::to_le_bytes).collect())],
        )
        .unwrap();
        // Flip one bit at a spread of positions, including padding and the
        // checksum fields themselves.
        let step = (buf.len() / 61).max(1);
        for pos in (0..buf.len()).step_by(step) {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            let damaged = (|| {
                let pf = PageFile::from_bytes(bad)?;
                let s = pf.header().section(1)?;
                pf.read_section(&s)?;
                Ok::<(), LoadError>(())
            })();
            assert!(damaged.is_err(), "flip at byte {pos} undetected");
        }
    }

    #[test]
    fn truncation_is_caught_at_open() {
        let mut buf = Vec::new();
        write_segment(
            &mut buf,
            SegmentKind::Network,
            &[(1, vec![9u8; PAGE_CAP * 2])],
        )
        .unwrap();
        for cut in [0, 1, PAGE_SIZE - 1, PAGE_SIZE, buf.len() - 1] {
            assert!(
                PageFile::from_bytes(buf[..cut].to_vec()).is_err(),
                "truncation to {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn oversized_page_payload_is_a_save_time_error_not_a_wrap() {
        // Regression: the length field used to be written with a bare
        // `as u32`; an oversized payload must now surface as InvalidInput
        // at save time, never as a wrapped length read back corrupt.
        let err = encode_page(&vec![0u8; PAGE_CAP + 1]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("page capacity"), "{err}");
        assert_eq!(encode_page(&vec![7u8; PAGE_CAP]).unwrap().len(), PAGE_SIZE);
    }

    #[test]
    fn non_segment_bytes_report_bad_magic() {
        let err = PageFile::from_bytes(vec![0u8; PAGE_SIZE]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        let err = PageFile::from_bytes(b"dbnet v1\n".to_vec()).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_)));
    }
}
