//! Binary segment persistence for [`TcTree`] (segment kind 2), with a
//! **lazy** reader that serves QBA / QBP queries straight off the file.
//!
//! Two sections:
//!
//! | id | name   | stream layout |
//! |----|--------|---------------|
//! | 1  | NODES  | `count u64`, then per node (root first) `parent u32 · item u32 · level_count u32 · max_alpha f64 · blob_off u64 · blob_len u64` |
//! | 2  | LEVELS | per node, at its `blob_off`: per level `alpha f64 · edge_count u32 · (u u32 · v u32) …` |
//!
//! [`SegmentTcTree::open`] reads only the NODES directory — parents,
//! items, per-node `α*` bounds, and byte ranges into the LEVELS blob.
//! That skeleton is enough to run Algorithm 5's pruning walk; the truss
//! decompositions themselves (the bulk of the data) are materialised per
//! node on first touch, from exactly the pages that overlap the node's
//! byte range. A query that prunes a subtree never reads its pages.
//!
//! Materialised nodes live in a byte-budgeted node cache: unbounded by
//! default (every touched node stays resident, the original behaviour),
//! or byte-budgeted via [`StoreOptions::cache_bytes`] so a daemon can
//! serve a segment much larger than its memory envelope. Page reads go
//! through a pluggable [`crate::source::PageSource`]
//! ([`StoreOptions::source`]): buffered `read(2)` or `mmap(2)`.
//! See `docs/SEGMENT_FORMAT.md` for the byte-level format specification.

use crate::cache::{CacheStats, NodeCache};
use crate::page::{write_segment, PageFile, SectionInfo, SegmentKind};
use crate::source::SourceKind;
use std::io::Write;
use std::path::Path;
use tc_core::{TrussDecomposition, TrussLevel};
use tc_index::{QueryResult, TcNode, TcTree};
use tc_txdb::{Item, Pattern};
use tc_util::bytes::{checked_len_u32, put_f64, put_u32, put_u64, ByteReader};
use tc_util::sync::Arc;
use tc_util::{float, LoadError, Stopwatch};

const SEC_NODES: u32 = 1;
const SEC_LEVELS: u32 = 2;

fn corrupt(msg: impl Into<String>) -> LoadError {
    LoadError::Corrupt(format!("treeseg: {}", msg.into()))
}

/// Writes `tree` to `w` as a segment file.
pub fn save_tree_segment<W: Write>(tree: &TcTree, w: &mut W) -> std::io::Result<()> {
    let mut nodes = Vec::new();
    let mut levels = Vec::new();
    put_u64(&mut nodes, tree.nodes().len() as u64);
    for node in tree.nodes() {
        let blob_off = levels.len() as u64;
        for level in &node.truss.levels {
            put_f64(&mut levels, level.alpha);
            put_u32(
                &mut levels,
                checked_len_u32(level.edges.len(), "level edge count")?,
            );
            for &(u, v) in &level.edges {
                put_u32(&mut levels, u);
                put_u32(&mut levels, v);
            }
        }
        put_u32(&mut nodes, node.parent);
        put_u32(&mut nodes, node.item.0);
        put_u32(
            &mut nodes,
            checked_len_u32(node.truss.levels.len(), "level count")?,
        );
        put_f64(&mut nodes, node.truss.max_alpha().unwrap_or(0.0));
        put_u64(&mut nodes, blob_off);
        put_u64(&mut nodes, levels.len() as u64 - blob_off);
    }
    write_segment(
        w,
        SegmentKind::TcTree,
        &[(SEC_NODES, nodes), (SEC_LEVELS, levels)],
    )
}

/// Writes to a file path.
pub fn save_tree_segment_to_path(tree: &TcTree, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    save_tree_segment(tree, &mut f)
}

/// The eagerly-read per-node skeleton: everything Algorithm 5 needs to
/// walk and prune, but no truss edges.
#[derive(Debug)]
struct NodeSkel {
    parent: u32,
    item: Item,
    pattern: Pattern,
    children: Vec<u32>,
    level_count: u32,
    max_alpha: f64,
    blob_off: u64,
    blob_len: u64,
}

/// How to open a [`SegmentTcTree`]: which [`PageSource`] backs page
/// reads, and whether materialised nodes are byte-budgeted.
///
/// The default (`buffered` source, unbounded cache) is exactly the
/// pre-cache behaviour.
///
/// [`PageSource`]: crate::source::PageSource
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreOptions {
    /// Page-read backing (buffered `read(2)` or `mmap(2)`).
    pub source: SourceKind,
    /// Byte budget for resident truss decompositions; `None` = unbounded.
    pub cache_bytes: Option<u64>,
}

/// A TC-Tree served lazily from a segment file.
///
/// Opening validates the header, the file length, and the NODES directory;
/// truss decompositions are parsed on demand (checksum-verified per page)
/// and held in the node cache, so repeated queries touch the file once
/// per node — until the cache's byte budget (if any) evicts cold nodes,
/// after which a re-touch re-parses the identical bytes.
#[derive(Debug)]
pub struct SegmentTcTree {
    pages: PageFile,
    levels: SectionInfo,
    skel: Vec<NodeSkel>,
    cache: NodeCache,
}

impl SegmentTcTree {
    /// Opens a tree segment at `path` with default [`StoreOptions`].
    pub fn open(path: &Path) -> Result<SegmentTcTree, LoadError> {
        Self::open_with(path, StoreOptions::default())
    }

    /// Opens a tree segment at `path` with an explicit source and cache
    /// budget.
    pub fn open_with(path: &Path, opts: StoreOptions) -> Result<SegmentTcTree, LoadError> {
        Self::from_pages(PageFile::open_with(path, opts.source)?, opts)
    }

    /// Opens an in-memory segment image (tests, conversions).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<SegmentTcTree, LoadError> {
        Self::from_bytes_with(bytes, StoreOptions::default())
    }

    /// Opens an in-memory segment image with an explicit cache budget
    /// (the source option is moot — the image is already in memory).
    pub fn from_bytes_with(bytes: Vec<u8>, opts: StoreOptions) -> Result<SegmentTcTree, LoadError> {
        Self::from_pages(PageFile::from_bytes(bytes)?, opts)
    }

    fn from_pages(pages: PageFile, opts: StoreOptions) -> Result<SegmentTcTree, LoadError> {
        if pages.header().kind != SegmentKind::TcTree {
            return Err(corrupt("segment holds a network, not a TC-Tree"));
        }
        let levels = pages.header().section(SEC_LEVELS)?;
        let dir = pages.read_section(&pages.header().section(SEC_NODES)?)?;
        let mut r = ByteReader::new(&dir);
        let eof = || corrupt("NODES directory truncated");
        let count = r.u64().ok_or_else(eof)?;
        if count == 0 {
            return Err(corrupt("a tree has at least the root node"));
        }
        // A directory record is exactly 36 bytes; a count the stream cannot
        // hold is corrupt, and bounding it here also bounds the allocation.
        if count > (dir.len() as u64).saturating_sub(8) / 36 {
            return Err(corrupt("node count exceeds directory size"));
        }
        let mut skel: Vec<NodeSkel> = Vec::with_capacity(count as usize);
        for id in 0..count {
            let parent = r.u32().ok_or_else(eof)?;
            let item = Item(r.u32().ok_or_else(eof)?);
            let level_count = r.u32().ok_or_else(eof)?;
            let max_alpha = r.f64().ok_or_else(eof)?;
            let blob_off = r.u64().ok_or_else(eof)?;
            let blob_len = r.u64().ok_or_else(eof)?;
            if id > 0 && parent as u64 >= id {
                return Err(corrupt("parent must precede child"));
            }
            if blob_off
                .checked_add(blob_len)
                .is_none_or(|end| end > levels.byte_len)
            {
                return Err(corrupt(format!("node {id} blob outside LEVELS section")));
            }
            if !max_alpha.is_finite() || max_alpha < 0.0 {
                return Err(corrupt(format!("node {id} has invalid alpha bound")));
            }
            let pattern = if id == 0 {
                Pattern::empty()
            } else {
                skel[parent as usize].pattern.with_item(item)
            };
            skel.push(NodeSkel {
                parent,
                item,
                pattern,
                children: Vec::new(),
                level_count,
                max_alpha,
                blob_off,
                blob_len,
            });
            if id > 0 {
                skel[parent as usize].children.push(id as u32);
            }
        }
        if !r.is_empty() {
            return Err(corrupt("trailing bytes in NODES directory"));
        }
        let cache = NodeCache::new(skel.len(), opts.cache_bytes);
        Ok(SegmentTcTree {
            pages,
            levels,
            skel,
            cache,
        })
    }

    /// Number of nodes **excluding** the root, matching
    /// [`TcTree::num_nodes`].
    pub fn num_nodes(&self) -> usize {
        self.skel.len() - 1
    }

    /// The pattern spelled by node `id`'s root path.
    pub fn pattern(&self, id: u32) -> &Pattern {
        &self.skel[id as usize].pattern
    }

    /// `max_p α*_p` over all nodes, from the directory alone — no truss
    /// materialisation.
    pub fn alpha_upper_bound(&self) -> f64 {
        self.skel.iter().map(|n| n.max_alpha).fold(0.0, f64::max)
    }

    /// Nodes **currently resident** in the cache — a true gauge: it rises
    /// on materialisation and falls on eviction. (Cumulative work is
    /// [`SegmentTcTree::materialized_total`].)
    pub fn materialized_nodes(&self) -> usize {
        self.cache.resident()
    }

    /// Materialisations since open, cumulative — a re-materialised
    /// (previously evicted) node counts again.
    pub fn materialized_total(&self) -> u64 {
        self.cache.stats().materialized_total
    }

    /// Snapshot of the node-cache counters (bytes, budget, hits, misses,
    /// evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The [`SourceKind`] backing page reads.
    pub fn source_kind(&self) -> SourceKind {
        self.pages.source_kind()
    }

    /// The decomposition of node `id`, reading it from the file on first
    /// touch (or again after eviction). The returned `Arc` pins the data
    /// for the caller — eviction can never invalidate it mid-query.
    pub fn truss(&self, id: u32) -> Result<Arc<TrussDecomposition>, LoadError> {
        if let Some(t) = self.cache.get(id) {
            return Ok(t);
        }
        // A concurrent materialisation of the same node parses identical
        // bytes, so losing the insert race is harmless — `insert` adopts
        // the winner's entry.
        let parsed = self.parse_node(id)?;
        Ok(self.cache.insert(id, parsed))
    }

    fn parse_node(&self, id: u32) -> Result<TrussDecomposition, LoadError> {
        let n = &self.skel[id as usize];
        let blob = self
            .pages
            .read_section_range(&self.levels, n.blob_off, n.blob_len)?;
        let mut r = ByteReader::new(&blob);
        let eof = || corrupt(format!("node {id} levels truncated"));
        // Cap pre-allocations by the bytes actually present (a level is at
        // least 12 bytes, an edge exactly 8): crafted counts must hit EOF
        // below, not abort on a huge reservation.
        let mut levels = Vec::with_capacity((n.level_count as usize).min(blob.len() / 12));
        let mut prev_alpha = f64::NEG_INFINITY;
        for _ in 0..n.level_count {
            let alpha = r.f64().ok_or_else(eof)?;
            if !alpha.is_finite() || alpha <= prev_alpha {
                return Err(corrupt(format!("node {id} level alphas must ascend")));
            }
            prev_alpha = alpha;
            let m = r.u32().ok_or_else(eof)?;
            let mut edges = Vec::with_capacity((m as usize).min(r.remaining() / 8));
            for _ in 0..m {
                let u = r.u32().ok_or_else(eof)?;
                let v = r.u32().ok_or_else(eof)?;
                if u >= v {
                    return Err(corrupt(format!("node {id} edge not canonical (u < v)")));
                }
                edges.push((u, v));
            }
            levels.push(TrussLevel { alpha, edges });
        }
        if !r.is_empty() {
            return Err(corrupt(format!("node {id} has trailing level bytes")));
        }
        if levels.last().map(|l| l.alpha).unwrap_or(0.0) != n.max_alpha {
            return Err(corrupt(format!(
                "node {id} alpha bound disagrees with levels"
            )));
        }
        Ok(TrussDecomposition {
            pattern: n.pattern.clone(),
            levels,
        })
    }

    /// Algorithm 5 over the segment: answers `(q, α_q)` materialising only
    /// the nodes the pruned walk actually retrieves.
    pub fn query(&self, q: &Pattern, alpha_q: f64) -> Result<QueryResult, LoadError> {
        let sw = Stopwatch::start();
        let mut trusses = Vec::new();
        let mut visited = 0usize;
        let mut queue = std::collections::VecDeque::from([0u32]);
        while let Some(nf) = queue.pop_front() {
            for &nc in &self.skel[nf as usize].children {
                let node = &self.skel[nc as usize];
                visited += 1;
                // Prune subtrees branching on items outside q.
                if !q.contains(node.item) {
                    continue;
                }
                // Prune by the directory's α* bound before touching the
                // file: C*_p(α) = ∅ for α ≥ α*_p (Proposition 5.2 again).
                if !float::gt_eps(node.max_alpha, alpha_q) {
                    continue;
                }
                let truss = self.truss(nc)?.truss_at(alpha_q);
                if truss.is_empty() {
                    continue;
                }
                trusses.push(truss);
                queue.push_back(nc);
            }
        }
        Ok(QueryResult {
            query: q.clone(),
            alpha: alpha_q,
            retrieved_nodes: trusses.len(),
            visited_nodes: visited,
            trusses,
            elapsed_secs: sw.elapsed_secs(),
        })
    }

    /// Query-by-alpha (QBA): `q = S`, only `α_q` filters.
    pub fn query_by_alpha(&self, alpha_q: f64) -> Result<QueryResult, LoadError> {
        let all_items: Pattern = self.skel[0]
            .children
            .iter()
            .map(|&c| self.skel[c as usize].item)
            .collect();
        self.query(&all_items, alpha_q)
    }

    /// Query-by-pattern (QBP): `α_q = 0`.
    pub fn query_by_pattern(&self, q: &Pattern) -> Result<QueryResult, LoadError> {
        self.query(q, 0.0)
    }

    /// Materialises every node into an in-memory [`TcTree`] (the eager
    /// conversion path).
    pub fn to_tree(&self) -> Result<TcTree, LoadError> {
        let mut nodes = Vec::with_capacity(self.skel.len());
        for id in 0..self.skel.len() as u32 {
            let n = &self.skel[id as usize];
            nodes.push(TcNode {
                item: n.item,
                pattern: n.pattern.clone(),
                parent: n.parent,
                children: n.children.clone(),
                truss: self.truss(id)?.as_ref().clone(),
            });
        }
        Ok(TcTree::from_nodes(nodes))
    }
}

/// The lazy reader's residency comes straight from its node cache: the
/// gauge falls on eviction, the total keeps counting re-parses.
impl tc_index::Materialization for SegmentTcTree {
    fn materialized_nodes(&self) -> usize {
        SegmentTcTree::materialized_nodes(self)
    }

    fn materialized_total(&self) -> u64 {
        SegmentTcTree::materialized_total(self)
    }
}

/// Reads a tree segment fully into memory.
pub fn load_tree_segment_from_path(path: &Path) -> Result<TcTree, LoadError> {
    SegmentTcTree::open(path)?.to_tree()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::DatabaseNetworkBuilder;
    use tc_index::TcTreeBuilder;

    fn sample_tree() -> TcTree {
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        let y = b.intern_item("y");
        let z = b.intern_item("z");
        for v in 0..4u32 {
            for _ in 0..3 {
                b.add_transaction(v, &[x, y]);
            }
            b.add_transaction(v, &[x, z]);
        }
        for (u, v) in [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        TcTreeBuilder::default().build(&b.build().unwrap())
    }

    fn segment_bytes(tree: &TcTree) -> Vec<u8> {
        let mut buf = Vec::new();
        save_tree_segment(tree, &mut buf).unwrap();
        buf
    }

    #[test]
    fn full_materialisation_equals_source() {
        let tree = sample_tree();
        let seg = SegmentTcTree::from_bytes(segment_bytes(&tree)).unwrap();
        let loaded = seg.to_tree().unwrap();
        assert_eq!(loaded.num_nodes(), tree.num_nodes());
        for (a, b) in tree.nodes().iter().zip(loaded.nodes()) {
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.children, b.children);
            assert_eq!(a.truss.levels, b.truss.levels);
        }
    }

    #[test]
    fn queries_agree_with_in_memory_tree() {
        let tree = sample_tree();
        let seg = SegmentTcTree::from_bytes(segment_bytes(&tree)).unwrap();
        for alpha in [0.0, 0.25, 0.5, 1.0] {
            let a = tree.query_by_alpha(alpha);
            let b = seg.query_by_alpha(alpha).unwrap();
            assert_eq!(a.retrieved_nodes, b.retrieved_nodes, "α = {alpha}");
            let mut got: Vec<_> = b
                .trusses
                .iter()
                .map(|t| (t.pattern.clone(), t.edges.clone()))
                .collect();
            got.sort();
            let mut want: Vec<_> = a
                .trusses
                .iter()
                .map(|t| (t.pattern.clone(), t.edges.clone()))
                .collect();
            want.sort();
            assert_eq!(got, want, "α = {alpha}");
        }
        for id in 1..tree.nodes().len() as u32 {
            let q = tree.node(id).pattern.clone();
            let a = tree.query_by_pattern(&q);
            let b = seg.query_by_pattern(&q).unwrap();
            assert_eq!(a.retrieved_nodes, b.retrieved_nodes, "q = {q}");
        }
    }

    #[test]
    fn open_is_lazy_and_queries_materialize_on_demand() {
        let tree = sample_tree();
        let seg = SegmentTcTree::from_bytes(segment_bytes(&tree)).unwrap();
        assert_eq!(seg.materialized_nodes(), 0, "open must not parse trusses");
        assert!(
            seg.alpha_upper_bound() > 0.0,
            "bound comes from the directory"
        );

        // A singleton QBP touches only the nodes on that item's path.
        let item = tree.node(tree.node(0).children[0]).item;
        let r = seg.query_by_pattern(&Pattern::singleton(item)).unwrap();
        assert!(r.retrieved_nodes >= 1);
        assert!(
            seg.materialized_nodes() < seg.num_nodes(),
            "QBP on one item must not materialise the whole tree ({} of {})",
            seg.materialized_nodes(),
            seg.num_nodes()
        );

        // An α above the bound retrieves nothing and reads nothing.
        let before = seg.materialized_nodes();
        let r = seg.query_by_alpha(seg.alpha_upper_bound() + 1.0).unwrap();
        assert_eq!(r.retrieved_nodes, 0);
        assert_eq!(
            seg.materialized_nodes(),
            before,
            "pruned walk reads no pages"
        );
    }

    #[test]
    fn resave_is_byte_identical() {
        let tree = sample_tree();
        let first = segment_bytes(&tree);
        let loaded = SegmentTcTree::from_bytes(first.clone())
            .unwrap()
            .to_tree()
            .unwrap();
        let second = segment_bytes(&loaded);
        assert_eq!(first, second);
    }

    #[test]
    fn file_roundtrip() {
        let tree = sample_tree();
        let dir = std::env::temp_dir().join("tc_store_tree_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.seg");
        save_tree_segment_to_path(&tree, &path).unwrap();
        let seg = SegmentTcTree::open(&path).unwrap();
        assert_eq!(seg.num_nodes(), tree.num_nodes());
        let loaded = load_tree_segment_from_path(&path).unwrap();
        assert_eq!(loaded.num_nodes(), tree.num_nodes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crafted_counts_error_without_huge_allocations() {
        use crate::page::write_segment;
        use tc_util::bytes::{put_f64, put_u32, put_u64};

        // A directory claiming u64::MAX nodes must be rejected up front.
        let mut nodes = Vec::new();
        put_u64(&mut nodes, u64::MAX);
        let mut buf = Vec::new();
        write_segment(
            &mut buf,
            SegmentKind::TcTree,
            &[(1, nodes), (2, Vec::new())],
        )
        .unwrap();
        let err = SegmentTcTree::from_bytes(buf).unwrap_err();
        assert!(err.is_corruption(), "{err}");

        // Valid checksums, but a node blob claiming u32::MAX levels and
        // edges: materialisation must report corruption, not abort trying
        // to reserve gigabytes.
        let mut blob = Vec::new();
        put_f64(&mut blob, 0.5);
        put_u32(&mut blob, u32::MAX);
        let mut nodes = Vec::new();
        put_u64(&mut nodes, 2);
        for (parent, item, level_count, max_alpha, off, len) in [
            (0u32, 0u32, 0u32, 0.0f64, 0u64, 0u64),
            (0, 7, u32::MAX, 0.5, 0, blob.len() as u64),
        ] {
            put_u32(&mut nodes, parent);
            put_u32(&mut nodes, item);
            put_u32(&mut nodes, level_count);
            put_f64(&mut nodes, max_alpha);
            put_u64(&mut nodes, off);
            put_u64(&mut nodes, len);
        }
        let mut buf = Vec::new();
        write_segment(&mut buf, SegmentKind::TcTree, &[(1, nodes), (2, blob)]).unwrap();
        let seg = SegmentTcTree::from_bytes(buf).unwrap();
        let err = seg.truss(1).unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn network_segment_is_rejected_as_tree() {
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        b.add_transaction(0, &[x]);
        b.add_edge(0, 1);
        let net = b.build().unwrap();
        let mut buf = Vec::new();
        crate::network::save_network_segment(&net, &mut buf).unwrap();
        let err = SegmentTcTree::from_bytes(buf).unwrap_err();
        assert!(err.to_string().contains("network"), "{err}");
    }
}
