//! Disk-backed storage for database networks and TC-Trees — the
//! "data warehouse of maximal pattern trusses" (§6) made durable.
//!
//! The text formats in `tc_data::io` and `tc_index::serialize` must be
//! fully parsed into RAM before the first query. This crate adds an
//! **append-only, paged, checksummed binary segment format** plus a lazy
//! reader, so a TC-Tree can be *opened* and *queried* without
//! deserialising the whole index:
//!
//! * [`page`] — the substrate: fixed-size pages, per-page CRC-32, a
//!   magic/version header, and section-addressed byte streams
//!   (byte-level spec: `docs/SEGMENT_FORMAT.md` in the repository);
//! * [`source`] — pluggable [`PageSource`] backings for page reads:
//!   buffered `read(2)` or `mmap(2)` (direct syscall binding, no new
//!   dependencies);
//! * [`cache`] — the byte-budgeted node cache with clock/second-chance
//!   eviction that bounds a serving daemon's memory envelope;
//! * [`network`] — segment save/load for [`tc_core::DatabaseNetwork`];
//! * [`tree`] — segment save for [`tc_index::TcTree`] and
//!   [`SegmentTcTree`], which serves QBA / QBP queries by materialising
//!   truss decompositions on demand from page offsets;
//! * [`shardmap`] — the `TCMAP01` shard map: how `tc shard` partitions a
//!   TC-Tree across N self-contained segment shards and how the
//!   `tc-router` gateway finds them (byte-level spec: `docs/SHARDING.md`);
//! * [`sniff`] — format detection by magic bytes (segments vs. the two
//!   text formats);
//! * [`convert`] — text ↔ segment conversions, both directions, for both
//!   value types;
//! * [`wal`] — the durable write path: an append-only, CRC-framed
//!   write-ahead log with group commit, crash recovery that truncates torn
//!   tails and replays over a base segment, and a deterministic
//!   fault-injection harness that proves it.
//!
//! ## Quick taste
//!
//! ```
//! use tc_core::DatabaseNetworkBuilder;
//! use tc_index::TcTreeBuilder;
//! use tc_store::SegmentTcTree;
//!
//! let mut b = DatabaseNetworkBuilder::new();
//! let beer = b.intern_item("beer");
//! for v in 0..3u32 {
//!     for _ in 0..4 {
//!         b.add_transaction(v, &[beer]);
//!     }
//! }
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let tree = TcTreeBuilder::default().build(&b.build().unwrap());
//!
//! let mut bytes = Vec::new();
//! tc_store::save_tree_segment(&tree, &mut bytes).unwrap();
//! let seg = SegmentTcTree::from_bytes(bytes).unwrap();
//! assert_eq!(seg.materialized_nodes(), 0); // nothing parsed yet
//! let answer = seg.query_by_alpha(0.0).unwrap();
//! assert_eq!(answer.retrieved_nodes, tree.query_by_alpha(0.0).retrieved_nodes);
//! ```
//!
//! Corruption anywhere in a segment file — bit flips, truncation, torn
//! writes — surfaces as [`LoadError::Checksum`] or [`LoadError::Corrupt`],
//! never a panic; see `tests/corruption.rs`.

pub mod cache;
pub mod convert;
pub mod network;
pub mod page;
pub mod shardmap;
pub mod sniff;
pub mod source;
pub mod tree;
pub mod wal;

pub use cache::CacheStats;
pub use network::{
    load_network_segment_from_bytes, load_network_segment_from_path, save_network_segment,
    save_network_segment_to_path,
};
pub use page::{SegmentKind, PAGE_SIZE};
pub use shardmap::{level1_items, split_tree, HashScheme, ShardEntry, ShardMap};
pub use sniff::{detect_format, DetectedFormat};
pub use source::{PageSource, SourceKind};
pub use tc_util::LoadError;
pub use tree::{
    load_tree_segment_from_path, save_tree_segment, save_tree_segment_to_path, SegmentTcTree,
    StoreOptions,
};
pub use wal::{Durability, Wal, WalRecord, WalStore};
