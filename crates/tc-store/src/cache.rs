//! The byte-budgeted node cache: bounded materialisation for
//! [`crate::tree::SegmentTcTree`].
//!
//! The lazy reader used to materialise truss decompositions into a
//! grow-only `OnceLock` table, so a long-lived daemon's footprint was
//! monotone in *query diversity*, not in working-set size. `NodeCache`
//! replaces that table: every cached [`TrussDecomposition`] is charged an
//! accounted byte size (via [`tc_util::HeapSize`]) against an optional
//! budget, and when the ledger exceeds the budget a **clock /
//! second-chance** sweep evicts cold entries.
//!
//! Three invariants the tests and proptests pin down:
//!
//! - **Eviction never breaks an in-flight query.** Entries are handed out
//!   as `Arc<TrussDecomposition>` — a per-request pin. Eviction drops the
//!   cache's reference only; a query holding the `Arc` keeps the data
//!   alive. The sweep additionally *skips* pinned entries
//!   (`Arc::strong_count > 1`), so the byte ledger tracks memory that is
//!   actually reclaimable.
//! - **Correctness is budget-independent.** A re-materialised node is
//!   parsed from the same checksummed pages, so answers under any budget
//!   are byte-identical to the unbounded tree (`tests/cache_properties.rs`).
//! - **Unbounded is the default and exactly the old behaviour**: with
//!   `budget = None` nothing is ever evicted.
//!
//! Concurrency: each node has its own slot mutex; the sweep uses
//! `try_lock` so it never blocks behind a reader, and the clock hand is a
//! single atomic. Two threads materialising the same node parse identical
//! bytes — the loser of the insert race adopts the winner's entry and
//! charges nothing. All primitives come through the [`tc_util::sync`]
//! facade, so `tc-check` model-checks the insert/evict ledger (balance
//! and budget envelope) across bounded interleavings under
//! `--cfg tc_check_model`.

use tc_core::TrussDecomposition;
use tc_util::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use tc_util::sync::{Arc, Mutex};
use tc_util::HeapSize;

/// A point-in-time snapshot of the cache counters, as exposed by
/// [`crate::tree::SegmentTcTree::cache_stats`] and surfaced in the serve
/// layer's STATS / Prometheus output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Accounted bytes of all resident entries.
    pub bytes_used: u64,
    /// The configured budget; `None` = unbounded.
    pub budget: Option<u64>,
    /// Entries currently resident (the `materialized_nodes` gauge).
    pub resident: usize,
    /// Materialisations since open, cumulative — re-materialising an
    /// evicted node counts again.
    pub materialized_total: u64,
    /// Entries evicted by the clock sweep.
    pub evictions: u64,
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that had to materialise.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `1.0` before any lookup.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The accounted size of one cached decomposition: the struct itself plus
/// everything it owns on the heap.
fn entry_bytes(truss: &TrussDecomposition) -> u64 {
    (std::mem::size_of::<TrussDecomposition>() + truss.heap_size()) as u64
}

struct Entry {
    truss: Arc<TrussDecomposition>,
    bytes: u64,
    /// The clock's second-chance bit: set on every hit, cleared by a
    /// passing sweep; an entry is evicted only when found clear.
    referenced: AtomicBool,
}

/// A fixed-slot (one per tree node) cache with a byte budget and
/// clock/second-chance eviction.
///
/// Public (but `doc(hidden)`) so `tc-check`'s model tests can drive the
/// insert/evict protocol directly; everything else reaches it through
/// [`crate::tree::SegmentTcTree`].
#[doc(hidden)]
pub struct NodeCache {
    budget: Option<u64>,
    slots: Box<[Mutex<Option<Entry>>]>,
    hand: AtomicUsize,
    bytes_used: AtomicU64,
    resident: AtomicUsize,
    materialized_total: AtomicU64,
    evictions: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for NodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeCache")
            .field("slots", &self.slots.len())
            .field("budget", &self.budget)
            .field("stats", &self.stats())
            .finish()
    }
}

impl NodeCache {
    /// One slot per node; `budget = None` disables eviction entirely.
    pub fn new(slots: usize, budget: Option<u64>) -> NodeCache {
        NodeCache {
            budget,
            slots: (0..slots).map(|_| Mutex::new(None)).collect(),
            hand: AtomicUsize::new(0),
            bytes_used: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            materialized_total: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up node `id`, pinning the entry for the caller and marking it
    /// recently used. A miss is counted; the caller is expected to parse
    /// and [`NodeCache::insert`].
    pub fn get(&self, id: u32) -> Option<Arc<TrussDecomposition>> {
        let slot = self.slots[id as usize].lock();
        match &*slot {
            Some(e) => {
                e.referenced.store(true, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.truss.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Caches a freshly parsed decomposition, charges its bytes, and runs
    /// the eviction sweep if the ledger now exceeds the budget. The
    /// returned `Arc` is the caller's pin. If another thread won the
    /// insert race, its (byte-identical) entry is adopted unchanged.
    pub fn insert(&self, id: u32, truss: TrussDecomposition) -> Arc<TrussDecomposition> {
        let arc = Arc::new(truss);
        let bytes = entry_bytes(&arc);
        {
            let mut slot = self.slots[id as usize].lock();
            if let Some(e) = &*slot {
                return e.truss.clone();
            }
            *slot = Some(Entry {
                truss: arc.clone(),
                bytes,
                referenced: AtomicBool::new(true),
            });
        }
        self.bytes_used.fetch_add(bytes, Ordering::Relaxed);
        self.resident.fetch_add(1, Ordering::Relaxed);
        self.materialized_total.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget(id);
        arc
    }

    /// The clock sweep: while over budget, advance the hand; clear a set
    /// reference bit (second chance), evict an entry found clear and
    /// unpinned. Bounded to two revolutions so a cache whose pinned
    /// entries alone exceed the budget degrades to a transient overshoot
    /// instead of a livelock. The just-inserted node is never evicted.
    fn enforce_budget(&self, protect: u32) {
        let Some(budget) = self.budget else { return };
        let n = self.slots.len();
        if n == 0 {
            return;
        }
        let mut steps = 0usize;
        while self.bytes_used.load(Ordering::Relaxed) > budget && steps < 2 * n {
            steps += 1;
            let i = self.hand.fetch_add(1, Ordering::Relaxed) % n;
            if i == protect as usize {
                continue;
            }
            // try_lock: a reader holding the slot is by definition using
            // it — skip rather than stall the sweep.
            let Some(mut slot) = self.slots[i].try_lock() else {
                continue;
            };
            let Some(e) = &*slot else { continue };
            if e.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            if Arc::strong_count(&e.truss) > 1 {
                continue;
            }
            let bytes = e.bytes;
            *slot = None;
            drop(slot);
            self.bytes_used.fetch_sub(bytes, Ordering::Relaxed);
            self.resident.fetch_sub(1, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently resident.
    pub fn resident(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// The accounted byte size an entry for `truss` would be charged —
    /// exposed so the model tests can reason about the budget envelope
    /// in the same units the ledger uses.
    #[doc(hidden)]
    pub fn accounted_bytes(truss: &TrussDecomposition) -> u64 {
        entry_bytes(truss)
    }

    /// Snapshot of every counter.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            bytes_used: self.bytes_used.load(Ordering::Relaxed),
            budget: self.budget,
            resident: self.resident.load(Ordering::Relaxed),
            materialized_total: self.materialized_total.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::TrussLevel;
    use tc_txdb::{Item, Pattern};

    fn truss(item: u32, edges: usize) -> TrussDecomposition {
        TrussDecomposition {
            pattern: Pattern::singleton(Item(item)),
            levels: vec![TrussLevel {
                alpha: 1.0,
                edges: (0..edges as u32).map(|i| (i, i + 1)).collect(),
            }],
        }
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let c = NodeCache::new(100, None);
        for id in 0..100u32 {
            c.insert(id, truss(id, 64));
        }
        let s = c.stats();
        assert_eq!(s.resident, 100);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.materialized_total, 100);
        assert!(s.bytes_used > 0);
    }

    #[test]
    fn budget_is_enforced_and_ledger_balances() {
        let one = entry_bytes(&truss(0, 64));
        // Room for about three entries.
        let c = NodeCache::new(100, Some(3 * one));
        for id in 0..50u32 {
            let pin = c.insert(id, truss(id, 64));
            drop(pin); // release the per-request pin
            assert!(
                c.stats().bytes_used <= 3 * one,
                "over budget after insert {id}: {:?}",
                c.stats()
            );
        }
        let s = c.stats();
        assert_eq!(s.resident as u64 * one, s.bytes_used, "ledger balances");
        assert_eq!(
            s.evictions + s.resident as u64,
            50,
            "every insert accounted"
        );
        assert_eq!(s.materialized_total, 50);
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let one = entry_bytes(&truss(0, 64));
        let c = NodeCache::new(10, Some(2 * one));
        let pin = c.insert(0, truss(0, 64)); // hold the Arc across inserts
        for id in 1..10u32 {
            drop(c.insert(id, truss(id, 64)));
        }
        // Node 0 was pinned the whole time: still resident, data intact.
        let again = c.get(0).expect("pinned entry must not be evicted");
        assert_eq!(*again, *pin);
        assert!(c.stats().evictions > 0, "others were evicted");
    }

    #[test]
    fn hits_and_misses_count() {
        let c = NodeCache::new(4, None);
        assert!(c.get(1).is_none());
        c.insert(1, truss(1, 4));
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn losing_the_insert_race_adopts_without_double_charge() {
        let c = NodeCache::new(4, None);
        let first = c.insert(1, truss(1, 8));
        let used = c.stats().bytes_used;
        let second = c.insert(1, truss(1, 8));
        assert_eq!(*first, *second);
        let s = c.stats();
        assert_eq!(s.bytes_used, used, "no double charge");
        assert_eq!(s.materialized_total, 1);
        assert_eq!(s.resident, 1);
    }

    #[test]
    fn hit_ratio_is_one_before_any_lookup() {
        let c = NodeCache::new(1, None);
        assert_eq!(c.stats().hit_ratio(), 1.0);
    }
}
