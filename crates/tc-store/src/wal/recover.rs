//! Crash recovery: replaying a scanned log over an optional base segment,
//! and the checkpoint fold that turns `base + wal` into a fresh segment.

use std::path::{Path, PathBuf};

use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder, NetworkStats};
use tc_txdb::Item;
use tc_util::LoadError;

use super::faults::{FileWalStorage, WalStorage};
use super::record::WalRecord;
use super::writer::{Durability, Wal};
use crate::network::{load_network_segment_from_path, save_network_segment};

fn corrupt(msg: impl Into<String>) -> LoadError {
    LoadError::Corrupt(format!("wal: {}", msg.into()))
}

/// Replays `records` over `base` (or an empty network), producing the
/// recovered [`DatabaseNetwork`].
///
/// Replay is a pure function of `(base, records)` and is idempotent:
/// interning an existing item or re-adding an existing edge converges to
/// the same network, so recovering twice — or recovering a log that
/// partially duplicates the base — cannot drift.
pub fn replay(
    base: Option<&DatabaseNetwork>,
    records: &[WalRecord],
) -> Result<DatabaseNetwork, LoadError> {
    let mut b = DatabaseNetworkBuilder::new();
    if let Some(base) = base {
        b.set_item_space(base.item_space().clone());
        for (u, v) in base.graph().edges() {
            b.add_edge(u, v);
        }
        for v in 0..base.num_vertices() as u32 {
            for t in base.database(v).transactions() {
                b.add_transaction(v, &t);
            }
        }
        if let Some(last) = base.num_vertices().checked_sub(1) {
            b.ensure_vertex(last as u32);
        }
    }
    for record in records {
        match record {
            WalRecord::AddItem { name } => {
                b.intern_item(name);
            }
            WalRecord::AddDatabase { vertex } => {
                b.ensure_vertex(*vertex);
            }
            WalRecord::AddEdge { u, v } => {
                // Self-loops were rejected at decode; duplicates of base
                // edges deduplicate inside the graph builder.
                b.add_edge(*u, *v);
            }
            WalRecord::AddTransaction { vertex, items } => {
                let known = b.item_space().len() as u32;
                let mut tx = Vec::with_capacity(items.len());
                for &id in items {
                    if id >= known {
                        return Err(corrupt(format!(
                            "transaction on vertex {vertex} references item {id}, \
                             but only {known} items are interned at this point"
                        )));
                    }
                    tx.push(Item(id));
                }
                b.add_transaction(*vertex, &tx);
            }
            WalRecord::Checkpoint { .. } => {}
        }
    }
    b.build()
        .map_err(|e| corrupt(format!("replay produced an invalid network: {e}")))
}

/// A base segment plus its write-ahead log: the durable mutable store
/// `tc ingest` appends to and `tc checkpoint` folds.
pub struct WalStore {
    wal: Wal,
    network: DatabaseNetwork,
    recovered_records: usize,
    truncated_bytes: u64,
}

impl WalStore {
    /// Opens the log at `wal_path` (creating it if absent) over the base
    /// segment at `base` (or an empty network), replaying any surviving
    /// records and repairing a torn tail.
    pub fn open(
        base: Option<&Path>,
        wal_path: &Path,
        durability: Durability,
    ) -> Result<WalStore, LoadError> {
        let base_network = match base {
            Some(path) => Some(load_network_segment_from_path(path)?),
            None => None,
        };
        let storage = Box::new(FileWalStorage::open(wal_path)?);
        WalStore::open_with_storage(base_network.as_ref(), storage, durability)
    }

    /// Storage-injection seam: same as [`WalStore::open`] but over any
    /// [`WalStorage`] and an already-loaded base network.
    pub fn open_with_storage(
        base: Option<&DatabaseNetwork>,
        storage: Box<dyn WalStorage>,
        durability: Durability,
    ) -> Result<WalStore, LoadError> {
        let (wal, scan) = Wal::open(storage, durability)?;
        let records: Vec<WalRecord> = scan.records.iter().map(|(_, r)| r.clone()).collect();
        let network = replay(base, &records)?;
        Ok(WalStore {
            wal,
            network,
            recovered_records: records.len(),
            truncated_bytes: scan.torn_bytes,
        })
    }

    /// The recovered network (base + replayed log) as of open time.
    ///
    /// Appends made through this handle are durable but intentionally not
    /// folded into the in-memory network — serving a live, incrementally
    /// maintained network (and its TC-Tree) is the ROADMAP follow-up.
    pub fn network(&self) -> &DatabaseNetwork {
        &self.network
    }

    /// Records replayed from the log at open.
    pub fn recovered_records(&self) -> usize {
        self.recovered_records
    }

    /// Torn-tail bytes truncated at open (0 for a clean log).
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated_bytes
    }

    /// Appends one mutation to the log. Durability per the open-time
    /// [`Durability`] policy.
    pub fn append(&self, record: &WalRecord) -> std::io::Result<u64> {
        self.wal.append(record)
    }

    /// Blocks until everything appended so far is durable.
    pub fn flush(&self) -> std::io::Result<()> {
        self.wal.flush()
    }

    /// The underlying log (for stats and checkpoint reset).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }
}

/// What a checkpoint folded, for reporting.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// Log records folded into the new segment.
    pub folded_records: u64,
    /// Torn-tail bytes discarded while opening the log.
    pub truncated_bytes: u64,
    /// Statistics of the checkpointed network.
    pub stats: NetworkStats,
}

/// Folds `base + wal` into a fresh segment at `out`, then resets the log
/// to a single checkpoint marker.
///
/// Crash-safe by write ordering: the new segment is fully written and
/// fsynced under a temporary name, renamed into place, and only then is
/// the log reset. A crash at any point leaves either the old state (base +
/// full log) or the new state (new segment + marker-only log); never a
/// half-written segment at `out`, never a lost record.
pub fn checkpoint(
    base: Option<&Path>,
    wal_path: &Path,
    out: &Path,
) -> Result<CheckpointReport, LoadError> {
    let store = WalStore::open(base, wal_path, Durability::Always)?;
    let folded = store.recovered_records() as u64;

    let mut bytes = Vec::new();
    save_network_segment(store.network(), &mut bytes)?;
    let tmp = sibling_tmp_path(out);
    std::fs::write(&tmp, &bytes)?;
    std::fs::File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, out)?;
    sync_parent_dir(out);

    store.wal().reset_for_checkpoint(folded)?;
    Ok(CheckpointReport {
        folded_records: folded,
        truncated_bytes: store.truncated_bytes(),
        stats: store.network().stats(),
    })
}

fn sibling_tmp_path(out: &Path) -> PathBuf {
    let mut name = out.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Best-effort durability for the rename itself; a failure here only
/// narrows the crash window, it cannot corrupt either state.
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::faults::MemWalStorage;

    fn ops() -> Vec<WalRecord> {
        vec![
            WalRecord::AddItem { name: "x".into() },
            WalRecord::AddItem { name: "y".into() },
            WalRecord::AddTransaction {
                vertex: 0,
                items: vec![0, 1],
            },
            WalRecord::AddEdge { u: 0, v: 1 },
            WalRecord::AddTransaction {
                vertex: 1,
                items: vec![0],
            },
            WalRecord::AddDatabase { vertex: 3 },
        ]
    }

    #[test]
    fn replay_from_empty_builds_the_network() {
        let net = replay(None, &ops()).unwrap();
        assert_eq!(net.num_vertices(), 4);
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.item_space().len(), 2);
        assert_eq!(net.database(0).num_transactions(), 1);
        assert_eq!(net.database(3).num_transactions(), 0);
    }

    #[test]
    fn replay_is_idempotent_over_a_base() {
        let base = replay(None, &ops()).unwrap();
        // Re-applying the same ops over the base converges (items
        // re-intern, edges dedup, but transactions append — so only the
        // non-transaction records are literally idempotent).
        let again = replay(
            Some(&base),
            &[
                WalRecord::AddItem { name: "x".into() },
                WalRecord::AddEdge { u: 0, v: 1 },
                WalRecord::AddDatabase { vertex: 3 },
            ],
        )
        .unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        save_network_segment(&base, &mut a).unwrap();
        save_network_segment(&again, &mut b).unwrap();
        assert_eq!(a, b, "idempotent records must not change the segment");
    }

    #[test]
    fn replay_rejects_uninterned_items() {
        let err = replay(
            None,
            &[WalRecord::AddTransaction {
                vertex: 0,
                items: vec![5],
            }],
        )
        .unwrap_err();
        assert!(err.is_corruption());
        assert!(err.to_string().contains("item 5"), "{err}");
    }

    #[test]
    fn walstore_recovers_appends_across_reopen() {
        let mem = MemWalStorage::new();
        let store =
            WalStore::open_with_storage(None, Box::new(mem.clone()), Durability::Always).unwrap();
        assert_eq!(store.recovered_records(), 0);
        for rec in ops() {
            store.append(&rec).unwrap();
        }
        drop(store);
        let store = WalStore::open_with_storage(None, Box::new(mem), Durability::Always).unwrap();
        assert_eq!(store.recovered_records(), 6);
        assert_eq!(store.network().num_vertices(), 4);
        assert_eq!(store.network().num_edges(), 1);
    }

    #[test]
    fn checkpoint_folds_and_resets() {
        let dir = std::env::temp_dir().join(format!("tc_wal_recover_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("net.wal");
        let out = dir.join("net.seg");

        let store = WalStore::open(None, &wal_path, Durability::Always).unwrap();
        for rec in ops() {
            store.append(&rec).unwrap();
        }
        drop(store);

        let report = checkpoint(None, &wal_path, &out).unwrap();
        assert_eq!(report.folded_records, 6);
        assert_eq!(report.stats.vertices, 4);

        // The segment equals the directly-built network, byte for byte.
        let direct = replay(None, &ops()).unwrap();
        let mut expect = Vec::new();
        save_network_segment(&direct, &mut expect).unwrap();
        assert_eq!(std::fs::read(&out).unwrap(), expect);

        // The log is now marker-only; reopening over the new base
        // reproduces the same network.
        let store = WalStore::open(Some(&out), &wal_path, Durability::Always).unwrap();
        assert_eq!(store.recovered_records(), 1, "checkpoint marker only");
        let mut after = Vec::new();
        save_network_segment(store.network(), &mut after).unwrap();
        assert_eq!(after, expect);

        std::fs::remove_dir_all(&dir).ok();
    }
}
