//! WAL scanning: frame validation, torn-tail detection, and the
//! torn-vs-corrupt classification rules.
//!
//! A scan walks the log front to back and must answer one question per
//! anomaly: *could this be the result of a crash mid-append?* A crash can
//! only shorten the file — every complete frame before the end is
//! untouched — so damage strictly before the last frame boundary is
//! corruption (typed [`LoadError`]), while an incomplete or
//! checksum-failing region that runs to end-of-file is a torn tail the
//! writer may truncate and continue past.

use tc_util::{Crc32, LoadError};

use super::record::{check_header, WalRecord, FRAME_HEADER_LEN, MAX_RECORD_LEN, WAL_HEADER_LEN};

/// Result of scanning a WAL image.
#[derive(Debug)]
pub struct WalScan {
    /// Every valid record, in order, paired with its sequence number.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte length of the valid prefix (header + complete frames). The
    /// writer truncates the file here before appending.
    pub valid_len: u64,
    /// Bytes past `valid_len` discarded as a torn tail (0 for a clean log).
    pub torn_bytes: u64,
    /// `true` when even the 16-byte file header was incomplete — a crash
    /// during creation; the writer rewrites the header from scratch.
    pub header_rewrite: bool,
}

fn corrupt(msg: impl Into<String>) -> LoadError {
    LoadError::Corrupt(format!("wal: {}", msg.into()))
}

/// Scans a full WAL image, classifying every anomaly as either a torn
/// tail (recoverable, reported in the returned [`WalScan`]) or mid-log
/// damage (a typed error).
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan, LoadError> {
    if bytes.len() < WAL_HEADER_LEN {
        // A crash while creating the file: nothing before the header is
        // ever acked, so an incomplete header is a torn tail, not damage.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            torn_bytes: bytes.len() as u64,
            header_rewrite: true,
        });
    }
    check_header(&bytes[..WAL_HEADER_LEN])?;

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let mut expected_seqno = 1u64;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break; // clean end
        }
        if remaining < FRAME_HEADER_LEN {
            return torn(records, pos, bytes.len());
        }
        let head = &bytes[pos..pos + FRAME_HEADER_LEN];
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
        if len > MAX_RECORD_LEN {
            // The writer bounds payloads at append time, so a length this
            // large cannot be a partially written legitimate frame.
            return Err(corrupt(format!(
                "record at byte {pos} claims {len} bytes (cap {MAX_RECORD_LEN})"
            )));
        }
        let frame_end = pos + FRAME_HEADER_LEN + len;
        if frame_end > bytes.len() {
            return torn(records, pos, bytes.len());
        }
        let stored_crc = u32::from_le_bytes([head[12], head[13], head[14], head[15]]);
        let mut h = Crc32::new();
        h.update(&head[..12]);
        h.update(&bytes[pos + FRAME_HEADER_LEN..frame_end]);
        if stored_crc != h.finish() {
            if frame_end == bytes.len() {
                // The damaged frame is the last thing in the file — a torn
                // write of the final append is indistinguishable from bit
                // rot here, and truncating loses nothing that was acked.
                return torn(records, pos, bytes.len());
            }
            return Err(LoadError::checksum(format!(
                "wal: record at byte {pos} fails its CRC with valid data after it"
            )));
        }
        // CRC-valid frame: its seqno and payload were written intact, so
        // any inconsistency from here on is corruption, never a torn tail.
        let seqno = u64::from_le_bytes([
            head[4], head[5], head[6], head[7], head[8], head[9], head[10], head[11],
        ]);
        if seqno != expected_seqno {
            return Err(corrupt(format!(
                "record at byte {pos} carries seqno {seqno}, expected {expected_seqno}"
            )));
        }
        let record = WalRecord::decode_payload(&bytes[pos + FRAME_HEADER_LEN..frame_end])?;
        records.push((seqno, record));
        expected_seqno += 1;
        pos = frame_end;
    }
    Ok(WalScan {
        records,
        valid_len: pos as u64,
        torn_bytes: 0,
        header_rewrite: false,
    })
}

fn torn(
    records: Vec<(u64, WalRecord)>,
    valid_end: usize,
    file_len: usize,
) -> Result<WalScan, LoadError> {
    Ok(WalScan {
        records,
        valid_len: valid_end as u64,
        torn_bytes: (file_len - valid_end) as u64,
        header_rewrite: false,
    })
}

/// Encodes a complete WAL image (header + frames) for the given records,
/// numbering them from `first_seqno`. Test and checkpoint helper.
pub fn encode_wal(records: &[WalRecord], first_seqno: u64) -> std::io::Result<Vec<u8>> {
    let mut image = super::record::encode_header().to_vec();
    for (i, rec) in records.iter().enumerate() {
        image.extend_from_slice(&rec.encode_frame(first_seqno + i as u64)?);
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::AddItem { name: "a".into() },
            WalRecord::AddEdge { u: 0, v: 1 },
            WalRecord::AddTransaction {
                vertex: 0,
                items: vec![0],
            },
            WalRecord::AddDatabase { vertex: 2 },
        ]
    }

    #[test]
    fn clean_log_scans_fully() {
        let image = encode_wal(&sample_records(), 1).unwrap();
        let scan = scan_wal(&image).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.valid_len, image.len() as u64);
        assert_eq!(scan.torn_bytes, 0);
        assert!(!scan.header_rewrite);
        let seqnos: Vec<u64> = scan.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqnos, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_and_partial_header_is_a_rewrite() {
        for cut in 0..WAL_HEADER_LEN {
            let image = encode_wal(&[], 1).unwrap();
            let scan = scan_wal(&image[..cut]).unwrap();
            assert!(scan.header_rewrite, "cut at {cut}");
            assert_eq!(scan.valid_len, 0);
        }
        // The complete header alone is a valid empty log.
        let scan = scan_wal(&encode_wal(&[], 1).unwrap()).unwrap();
        assert!(!scan.header_rewrite);
        assert_eq!(scan.valid_len, WAL_HEADER_LEN as u64);
    }

    #[test]
    fn truncation_at_every_offset_yields_a_record_prefix() {
        let records = sample_records();
        let image = encode_wal(&records, 1).unwrap();
        // Precompute frame boundaries to know the expected prefix length.
        let mut boundaries = vec![WAL_HEADER_LEN];
        for rec in &records {
            let frame = rec.encode_frame(1).unwrap();
            boundaries.push(boundaries.last().unwrap() + frame.len());
        }
        for cut in WAL_HEADER_LEN..=image.len() {
            let scan = scan_wal(&image[..cut]).unwrap();
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.records.len(), expect, "cut at {cut}");
            let boundary = boundaries[expect];
            assert_eq!(scan.valid_len, boundary as u64, "cut at {cut}");
            assert_eq!(scan.torn_bytes, (cut - boundary) as u64, "cut at {cut}");
            for (i, (s, rec)) in scan.records.iter().enumerate() {
                assert_eq!(*s, i as u64 + 1);
                assert_eq!(*rec, records[i]);
            }
        }
    }

    #[test]
    fn midlog_flip_is_typed_tail_flip_is_torn() {
        let image = encode_wal(&sample_records(), 1).unwrap();
        // Flip a payload byte of the FIRST record: valid data follows, so
        // the scan must fail loudly rather than truncate silently.
        let mut bad = image.clone();
        bad[WAL_HEADER_LEN + FRAME_HEADER_LEN] ^= 0x40;
        let err = scan_wal(&bad).unwrap_err();
        assert!(matches!(err, LoadError::Checksum(_)), "{err}");
        // Flip a byte of the LAST record: indistinguishable from a torn
        // final append, so it truncates to the prefix.
        let mut tail = image.clone();
        let last = image.len() - 1;
        tail[last] ^= 0x40;
        let scan = scan_wal(&tail).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn seqno_gap_is_corrupt() {
        let mut records = sample_records();
        records.truncate(2);
        let mut image = encode_wal(&records[..1], 1).unwrap();
        // Second record numbered 3 instead of 2, with a valid CRC.
        image.extend_from_slice(&records[1].encode_frame(3).unwrap());
        let err = scan_wal(&image).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("seqno"), "{err}");
    }

    #[test]
    fn oversized_length_field_is_corrupt_not_torn() {
        let mut image = encode_wal(&sample_records()[..1], 1).unwrap();
        let len_at = WAL_HEADER_LEN;
        image[len_at..len_at + 4].copy_from_slice(&((MAX_RECORD_LEN as u32) + 1).to_le_bytes());
        let err = scan_wal(&image).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_)), "{err}");
    }

    #[test]
    fn wrong_magic_is_corrupt() {
        let mut image = encode_wal(&[], 1).unwrap();
        image[0] = b'X';
        assert!(scan_wal(&image).unwrap_err().is_corruption());
    }
}
