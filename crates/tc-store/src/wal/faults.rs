//! The WAL's storage seam, and the deterministic fault-injection layer
//! built on it.
//!
//! [`WalStorage`] is everything the log writer needs from a file:
//! append, truncate, sync, read-back. [`FileWalStorage`] is the real
//! thing. [`FaultWalStorage`] models a disk with a page cache: writes land
//! in a volatile cache image, `sync` copies the cache to a durable image,
//! and a scripted [`FaultPlan`] can fail or shorten any write or drop any
//! sync. A "power cut" is then *every* prefix of the cache image that is
//! at least as long as the durable image — [`FaultWalStorage::crash_images`]
//! enumerates them all, which is what makes the crash-recovery test suite
//! exhaustive rather than sampled.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The byte-level storage a [`super::Wal`](super::writer::Wal) writes to.
///
/// Methods take `&self` so a sync can run while other threads append — the
/// group-commit writer keeps the storage handle outside its state mutex.
pub trait WalStorage: Send + Sync {
    /// Reads the entire current image.
    fn read_all(&self) -> std::io::Result<Vec<u8>>;
    /// Appends `bytes` at the end of the image.
    fn append(&self, bytes: &[u8]) -> std::io::Result<()>;
    /// Truncates the image to `len` bytes.
    fn truncate(&self, len: u64) -> std::io::Result<()>;
    /// Makes everything appended so far durable.
    fn sync(&self) -> std::io::Result<()>;
    /// Current image length in bytes.
    fn len(&self) -> std::io::Result<u64>;
    /// `true` when the image is empty.
    fn is_empty(&self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// Real-file storage: the production implementation.
#[derive(Debug)]
pub struct FileWalStorage {
    file: File,
}

impl FileWalStorage {
    /// Opens (creating if absent) the log file at `path`.
    pub fn open(path: &Path) -> std::io::Result<FileWalStorage> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileWalStorage { file })
    }
}

impl WalStorage for FileWalStorage {
    fn read_all(&self) -> std::io::Result<Vec<u8>> {
        let mut f = &self.file;
        f.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = &self.file;
        f.seek(SeekFrom::End(0))?;
        f.write_all(bytes)
    }

    fn truncate(&self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)
    }

    fn sync(&self) -> std::io::Result<()> {
        self.file.sync_all()
    }

    fn len(&self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// Plain in-memory storage — the fault-free test double. Clones share the
/// same image, so a test can keep a handle while the writer owns another.
#[derive(Debug, Clone, Default)]
pub struct MemWalStorage {
    image: Arc<Mutex<Vec<u8>>>,
}

impl MemWalStorage {
    /// An empty in-memory log.
    pub fn new() -> MemWalStorage {
        MemWalStorage::default()
    }

    /// A log pre-seeded with `bytes`.
    pub fn from_bytes(bytes: Vec<u8>) -> MemWalStorage {
        MemWalStorage {
            image: Arc::new(Mutex::new(bytes)),
        }
    }

    /// A snapshot of the current image.
    pub fn image(&self) -> Vec<u8> {
        self.image.lock().expect("mem wal storage poisoned").clone()
    }
}

impl WalStorage for MemWalStorage {
    fn read_all(&self) -> std::io::Result<Vec<u8>> {
        Ok(self.image())
    }

    fn append(&self, bytes: &[u8]) -> std::io::Result<()> {
        self.image
            .lock()
            .expect("mem wal storage poisoned")
            .extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&self, len: u64) -> std::io::Result<()> {
        self.image
            .lock()
            .expect("mem wal storage poisoned")
            .truncate(len as usize);
        Ok(())
    }

    fn sync(&self) -> std::io::Result<()> {
        Ok(())
    }

    fn len(&self) -> std::io::Result<u64> {
        Ok(self.image.lock().expect("mem wal storage poisoned").len() as u64)
    }
}

/// Scripted faults for one [`FaultWalStorage`]. Counters are 1-based over
/// the lifetime of the storage: `fail_write: Some(3)` fails the third
/// write call.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fail the n-th write entirely (nothing lands in the cache).
    pub fail_write: Option<u64>,
    /// Shorten the n-th write: only the first `k` bytes land, then error.
    pub short_write: Option<(u64, usize)>,
    /// From the n-th sync on, report success but persist nothing — a
    /// lying disk.
    pub drop_syncs_from: Option<u64>,
    /// Fail the n-th sync with an error (nothing persisted by it).
    pub fail_sync: Option<u64>,
    /// Sleep this long inside every sync — widens the group-commit window
    /// so batching tests can pile appenders onto one flush.
    pub sync_delay: Option<Duration>,
}

#[derive(Debug, Default)]
struct FaultState {
    durable: Vec<u8>,
    cache: Vec<u8>,
    plan: FaultPlan,
    writes: u64,
    syncs: u64,
    dropped_syncs: u64,
}

/// Fault-injecting storage with an explicit durable/volatile split.
///
/// Invariant: the durable image is always a prefix of the cache image
/// (appends only grow the cache; an honest sync copies cache → durable;
/// truncate shortens both). A crash can therefore expose exactly the
/// prefixes of the cache no shorter than the durable image.
#[derive(Debug, Clone, Default)]
pub struct FaultWalStorage {
    state: Arc<Mutex<FaultState>>,
}

impl FaultWalStorage {
    /// Fault-free storage (inject later via [`FaultWalStorage::set_plan`]).
    pub fn new() -> FaultWalStorage {
        FaultWalStorage::default()
    }

    /// Storage with `plan` armed from the first operation.
    pub fn with_plan(plan: FaultPlan) -> FaultWalStorage {
        let storage = FaultWalStorage::default();
        storage.set_plan(plan);
        storage
    }

    /// Replaces the fault plan (counters keep running).
    pub fn set_plan(&self, plan: FaultPlan) {
        self.lock().plan = plan;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault wal storage poisoned")
    }

    /// Snapshot of the durable image — what survives a power cut after
    /// the page cache is lost.
    pub fn durable_image(&self) -> Vec<u8> {
        self.lock().durable.clone()
    }

    /// Snapshot of the volatile cache image.
    pub fn cache_image(&self) -> Vec<u8> {
        self.lock().cache.clone()
    }

    /// Every file image a power cut could leave behind: the cache
    /// truncated at each byte offset from the durable length to the full
    /// cache length, inclusive. (The kernel may have written back any
    /// prefix of the dirty tail; it can never lose already-durable bytes.)
    pub fn crash_images(&self) -> Vec<Vec<u8>> {
        let state = self.lock();
        debug_assert!(state.cache.starts_with(&state.durable));
        (state.durable.len()..=state.cache.len())
            .map(|cut| state.cache[..cut].to_vec())
            .collect()
    }

    /// Total write calls observed (including failed ones).
    pub fn write_count(&self) -> u64 {
        self.lock().writes
    }

    /// Successful syncs that actually persisted data.
    pub fn sync_count(&self) -> u64 {
        self.lock().syncs
    }

    /// Syncs that lied: returned `Ok` without persisting.
    pub fn dropped_sync_count(&self) -> u64 {
        self.lock().dropped_syncs
    }
}

impl WalStorage for FaultWalStorage {
    fn read_all(&self) -> std::io::Result<Vec<u8>> {
        Ok(self.lock().cache.clone())
    }

    fn append(&self, bytes: &[u8]) -> std::io::Result<()> {
        let mut state = self.lock();
        state.writes += 1;
        let n = state.writes;
        if state.plan.fail_write == Some(n) {
            return Err(std::io::Error::other(format!("injected: write {n} failed")));
        }
        if let Some((at, keep)) = state.plan.short_write {
            if at == n {
                let keep = keep.min(bytes.len());
                let partial = bytes[..keep].to_vec();
                state.cache.extend_from_slice(&partial);
                return Err(std::io::Error::other(format!(
                    "injected: write {n} torn after {keep} bytes"
                )));
            }
        }
        state.cache.extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&self, len: u64) -> std::io::Result<()> {
        let mut state = self.lock();
        let len = len as usize;
        state.cache.truncate(len);
        let keep = len.min(state.durable.len());
        state.durable.truncate(keep);
        Ok(())
    }

    fn sync(&self) -> std::io::Result<()> {
        let delay = self.lock().plan.sync_delay;
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        let mut state = self.lock();
        let n = state.syncs + state.dropped_syncs + 1;
        if state.plan.fail_sync == Some(n) {
            return Err(std::io::Error::other(format!("injected: sync {n} failed")));
        }
        if state.plan.drop_syncs_from.is_some_and(|from| n >= from) {
            state.dropped_syncs += 1;
            return Ok(());
        }
        state.durable = state.cache.clone();
        state.syncs += 1;
        Ok(())
    }

    fn len(&self) -> std::io::Result<u64> {
        Ok(self.lock().cache.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durable_lags_cache_until_sync() {
        let s = FaultWalStorage::new();
        s.append(b"abc").unwrap();
        assert_eq!(s.cache_image(), b"abc");
        assert_eq!(s.durable_image(), b"");
        s.sync().unwrap();
        assert_eq!(s.durable_image(), b"abc");
        s.append(b"de").unwrap();
        // Crash images: durable "abc" through full cache "abcde".
        let images = s.crash_images();
        assert_eq!(images.len(), 3);
        assert_eq!(images[0], b"abc");
        assert_eq!(images[2], b"abcde");
    }

    #[test]
    fn short_write_keeps_prefix_and_errors() {
        let s = FaultWalStorage::with_plan(FaultPlan {
            short_write: Some((2, 1)),
            ..FaultPlan::default()
        });
        s.append(b"xy").unwrap();
        let err = s.append(b"zw").unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert_eq!(s.cache_image(), b"xyz");
        assert_eq!(s.write_count(), 2);
    }

    #[test]
    fn dropped_sync_lies() {
        let s = FaultWalStorage::with_plan(FaultPlan {
            drop_syncs_from: Some(1),
            ..FaultPlan::default()
        });
        s.append(b"q").unwrap();
        s.sync().unwrap();
        assert_eq!(s.durable_image(), b"");
        assert_eq!(s.dropped_sync_count(), 1);
        assert_eq!(s.sync_count(), 0);
    }

    #[test]
    fn truncate_shortens_both_images() {
        let s = FaultWalStorage::new();
        s.append(b"abcdef").unwrap();
        s.sync().unwrap();
        s.truncate(2).unwrap();
        assert_eq!(s.cache_image(), b"ab");
        assert_eq!(s.durable_image(), b"ab");
        assert_eq!(s.len().unwrap(), 2);
    }

    #[test]
    fn mem_storage_roundtrip() {
        let s = MemWalStorage::new();
        s.append(b"hello").unwrap();
        s.truncate(4).unwrap();
        assert_eq!(s.read_all().unwrap(), b"hell");
        assert!(!s.is_empty().unwrap());
        let shared = s.clone();
        shared.append(b"o").unwrap();
        assert_eq!(s.image(), b"hello");
    }
}
