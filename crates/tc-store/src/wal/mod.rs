//! The durable write path: a write-ahead log for database networks.
//!
//! Segments are immutable; mutations go to an append-only log first
//! ([`writer`]), become durable via group-committed fsyncs, and are folded
//! into a fresh segment by a checkpoint ([`recover`]). Recovery replays
//! the log over the base segment, truncating a torn tail at the last
//! valid record boundary ([`reader`]) and surfacing mid-log damage as the
//! same typed [`tc_util::LoadError`]s the segment readers use. The
//! [`faults`] module is the proof layer: a storage trait with a
//! deterministic fault-injecting implementation that the crash-recovery
//! test suite drives exhaustively.
//!
//! The frame grammar and a worked hexdump live in
//! `docs/SEGMENT_FORMAT.md`; operational procedures (fsync policy,
//! recovery runbook) in `docs/OPERATIONS.md`.

pub mod faults;
pub mod reader;
pub mod record;
pub mod recover;
pub mod writer;

pub use faults::{FaultPlan, FaultWalStorage, FileWalStorage, MemWalStorage, WalStorage};
pub use reader::{encode_wal, scan_wal, WalScan};
pub use record::{WalRecord, FRAME_HEADER_LEN, MAX_RECORD_LEN, WAL_HEADER_LEN, WAL_MAGIC};
pub use recover::{checkpoint, replay, CheckpointReport, WalStore};
pub use writer::{Durability, Wal};
