//! The append side of the WAL: sequence numbering, group commit, and the
//! open-time repair of a torn tail.
//!
//! ## Group commit
//!
//! An `append` under [`Durability::Always`] must not return until its
//! record is fsynced, but issuing one fsync per record would serialize the
//! write path at disk-flush latency. Instead appenders elect a *leader*:
//! the first waiter to find no sync in flight flips the `syncing` flag,
//! releases the state lock, and fsyncs everything written so far; every
//! record that landed in the file before the leader left the lock is
//! covered by that single flush, so concurrent appenders piled behind it
//! are all acked together when the leader publishes the new durable
//! watermark. The storage handle lives *outside* the state mutex so new
//! records keep appending to the file (and into the next batch) while the
//! flush runs.
//!
//! The state mutex and the `flushed` condvar come through the
//! [`tc_util::sync`] facade, so `tc-check` model-checks the leader
//! election under `--cfg tc_check_model`: no append acks before a sync
//! that covers its record has completed.

use std::time::{Duration, Instant};

use tc_util::sync::{Condvar, Mutex, MutexGuard};

use tc_util::LoadError;

use super::faults::WalStorage;
use super::reader::{scan_wal, WalScan};
use super::record::{encode_header, WalRecord};

/// When an `append` acknowledges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Every append waits for its record to be fsynced (group-committed
    /// with any concurrent appends) before returning.
    Always,
    /// Appends return as soon as the record is written to the file; an
    /// fsync is issued once `max_records` are pending or `max_delay` has
    /// passed since the last flush. Bounded data loss on crash.
    Batch {
        /// Pending-record count that triggers a flush.
        max_records: usize,
        /// Maximum age of an unflushed record before the next append
        /// triggers a flush.
        max_delay: Duration,
    },
}

#[derive(Debug)]
struct WalState {
    next_seqno: u64,
    /// Highest seqno written to the file (not necessarily durable).
    written: u64,
    /// Highest seqno covered by a successful sync.
    durable: u64,
    /// A leader is currently flushing outside the lock.
    syncing: bool,
    last_sync: Instant,
    appends: u64,
    syncs: u64,
    /// A storage write or sync failed; the log rejects further appends
    /// because the file tail is in an unknown state.
    poisoned: bool,
}

/// An open write-ahead log.
pub struct Wal {
    storage: Box<dyn WalStorage>,
    state: Mutex<WalState>,
    flushed: Condvar,
    durability: Durability,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("durability", &self.durability)
            .finish_non_exhaustive()
    }
}

fn poisoned_error() -> std::io::Error {
    std::io::Error::other("wal poisoned by an earlier storage failure")
}

impl Wal {
    /// Opens a log over `storage`, repairing a torn tail (truncating to
    /// the last valid record boundary, or rewriting an incomplete header)
    /// before returning. Mid-log damage surfaces as a typed error.
    ///
    /// Returns the log plus the [`WalScan`] describing what was found, so
    /// callers can replay the records and report the repair.
    pub fn open(
        storage: Box<dyn WalStorage>,
        durability: Durability,
    ) -> Result<(Wal, WalScan), LoadError> {
        let image = storage.read_all()?;
        let scan = scan_wal(&image)?;
        if scan.header_rewrite {
            storage.truncate(0)?;
            storage.append(&encode_header())?;
            storage.sync()?;
        } else if scan.torn_bytes > 0 {
            storage.truncate(scan.valid_len)?;
            storage.sync()?;
        }
        let last_seqno = scan.records.last().map(|(s, _)| *s).unwrap_or(0);
        let wal = Wal {
            storage,
            state: Mutex::new(WalState {
                next_seqno: last_seqno + 1,
                written: last_seqno,
                durable: last_seqno,
                syncing: false,
                last_sync: Instant::now(),
                appends: 0,
                syncs: 0,
                poisoned: false,
            }),
            flushed: Condvar::new(),
            durability,
        };
        Ok((wal, scan))
    }

    /// Appends one record, returning its sequence number. Under
    /// [`Durability::Always`] the record is durable when this returns;
    /// under [`Durability::Batch`] it is at least written to the file.
    pub fn append(&self, record: &WalRecord) -> std::io::Result<u64> {
        let seqno;
        {
            let mut state = self.lock();
            if state.poisoned {
                return Err(poisoned_error());
            }
            seqno = state.next_seqno;
            let frame = record.encode_frame(seqno)?;
            // The file append happens under the state lock so frames land
            // in seqno order; the expensive fsync never does.
            if let Err(e) = self.storage.append(&frame) {
                state.poisoned = true;
                self.flushed.notify_all();
                return Err(e);
            }
            state.next_seqno += 1;
            state.written = seqno;
            state.appends += 1;
        }
        match self.durability {
            Durability::Always => self.wait_durable(seqno)?,
            Durability::Batch {
                max_records,
                max_delay,
            } => {
                let should_flush = {
                    let state = self.lock();
                    !state.syncing
                        && ((state.written - state.durable) as usize >= max_records
                            || state.last_sync.elapsed() >= max_delay)
                };
                if should_flush {
                    self.sync_once()?;
                }
            }
        }
        Ok(seqno)
    }

    /// Blocks until everything appended so far is durable.
    pub fn flush(&self) -> std::io::Result<()> {
        let written = self.lock().written;
        if written == 0 {
            return Ok(());
        }
        self.wait_durable(written)
    }

    /// Group-commit wait: returns once `seqno` is covered by a sync,
    /// flushing ourselves if no leader is already doing it.
    fn wait_durable(&self, seqno: u64) -> std::io::Result<()> {
        let mut state = self.lock();
        loop {
            if state.durable >= seqno {
                return Ok(());
            }
            if state.poisoned {
                return Err(poisoned_error());
            }
            if !state.syncing {
                // Become the leader: flush everything written so far.
                state.syncing = true;
                let upto = state.written;
                drop(state);
                let result = self.storage.sync();
                state = self.lock();
                state.syncing = false;
                match result {
                    Ok(()) => {
                        state.durable = state.durable.max(upto);
                        state.syncs += 1;
                        state.last_sync = Instant::now();
                        self.flushed.notify_all();
                    }
                    Err(e) => {
                        state.poisoned = true;
                        self.flushed.notify_all();
                        return Err(e);
                    }
                }
            } else {
                state = self.flushed.wait(state);
            }
        }
    }

    /// One non-blocking-for-followers flush of the current tail (the
    /// batch-mode trigger path).
    fn sync_once(&self) -> std::io::Result<()> {
        let upto = {
            let mut state = self.lock();
            if state.poisoned {
                return Err(poisoned_error());
            }
            if state.syncing || state.written == state.durable {
                return Ok(());
            }
            state.syncing = true;
            state.written
        };
        let result = self.storage.sync();
        let mut state = self.lock();
        state.syncing = false;
        match result {
            Ok(()) => {
                state.durable = state.durable.max(upto);
                state.syncs += 1;
                state.last_sync = Instant::now();
                self.flushed.notify_all();
                Ok(())
            }
            Err(e) => {
                state.poisoned = true;
                self.flushed.notify_all();
                Err(e)
            }
        }
    }

    /// Resets the log after a checkpoint durably folded `folded` records
    /// into a base segment: truncates to an empty log whose first record
    /// is a [`WalRecord::Checkpoint`] marker.
    ///
    /// Crash-safe by ordering: this runs only after the new segment is
    /// renamed into place, and a crash mid-reset leaves either the old log
    /// (still a valid, now-redundant history) or a torn young log that
    /// open-time repair truncates back to the marker or to empty.
    pub fn reset_for_checkpoint(&self, folded: u64) -> std::io::Result<()> {
        let mut state = self.lock();
        if state.poisoned {
            return Err(poisoned_error());
        }
        self.storage.truncate(0)?;
        self.storage.append(&encode_header())?;
        let marker = WalRecord::Checkpoint { folded };
        self.storage.append(&marker.encode_frame(1)?)?;
        self.storage.sync()?;
        state.next_seqno = 2;
        state.written = 1;
        state.durable = 1;
        state.last_sync = Instant::now();
        Ok(())
    }

    fn lock(&self) -> MutexGuard<'_, WalState> {
        self.state.lock()
    }

    /// Records appended through this handle (not counting recovery).
    pub fn appended(&self) -> u64 {
        self.lock().appends
    }

    /// Highest sequence number covered by a successful sync.
    pub fn durable_seqno(&self) -> u64 {
        self.lock().durable
    }

    /// Syncs issued by this handle.
    pub fn sync_count(&self) -> u64 {
        self.lock().syncs
    }

    /// Current file length in bytes.
    pub fn len_bytes(&self) -> std::io::Result<u64> {
        self.storage.len()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort final flush for batch mode; errors are moot here.
        let pending = {
            let state = self.lock();
            !state.poisoned && state.written > state.durable
        };
        if pending {
            let _ = self.storage.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::faults::{FaultPlan, FaultWalStorage, MemWalStorage};

    fn edge(i: u32) -> WalRecord {
        WalRecord::AddEdge { u: i, v: i + 1 }
    }

    #[test]
    fn append_assigns_monotonic_seqnos_and_survives_reopen() {
        let mem = MemWalStorage::new();
        let (wal, scan) = Wal::open(Box::new(mem.clone()), Durability::Always).unwrap();
        assert!(scan.records.is_empty());
        for i in 0..5 {
            assert_eq!(wal.append(&edge(i)).unwrap(), i as u64 + 1);
        }
        assert_eq!(wal.durable_seqno(), 5);
        drop(wal);
        let (wal, scan) = Wal::open(Box::new(mem), Durability::Always).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(
            wal.append(&edge(9)).unwrap(),
            6,
            "seqno continues after reopen"
        );
    }

    #[test]
    fn always_mode_is_durable_per_ack() {
        let storage = FaultWalStorage::new();
        let (wal, _) = Wal::open(Box::new(storage.clone()), Durability::Always).unwrap();
        wal.append(&edge(0)).unwrap();
        // The durable image alone must already contain the record.
        let scan = scan_wal(&storage.durable_image()).unwrap();
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn batch_mode_coalesces_syncs() {
        let storage = FaultWalStorage::new();
        let (wal, _) = Wal::open(
            Box::new(storage.clone()),
            Durability::Batch {
                max_records: 8,
                max_delay: Duration::from_secs(3600),
            },
        )
        .unwrap();
        let open_syncs = storage.sync_count();
        for i in 0..20 {
            wal.append(&edge(i)).unwrap();
        }
        // 20 appends with a batch of 8: flushes at the 8th and 16th.
        assert_eq!(storage.sync_count() - open_syncs, 2);
        assert_eq!(wal.durable_seqno(), 16);
        wal.flush().unwrap();
        assert_eq!(wal.durable_seqno(), 20);
        assert_eq!(storage.sync_count() - open_syncs, 3);
    }

    #[test]
    fn write_failure_poisons_the_log() {
        let storage = FaultWalStorage::with_plan(FaultPlan {
            // Write 1 is the header (fresh log); fail the second record.
            fail_write: Some(3),
            ..FaultPlan::default()
        });
        let (wal, _) = Wal::open(Box::new(storage.clone()), Durability::Always).unwrap();
        wal.append(&edge(0)).unwrap();
        assert!(wal.append(&edge(1)).is_err());
        let err = wal.append(&edge(2)).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        // The acked record is still durable and recoverable.
        let scan = scan_wal(&storage.durable_image()).unwrap();
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn sync_failure_poisons_the_log() {
        let storage = FaultWalStorage::with_plan(FaultPlan {
            // Sync 1 runs at open (fresh header); fail the first commit.
            fail_sync: Some(2),
            ..FaultPlan::default()
        });
        let (wal, _) = Wal::open(Box::new(storage.clone()), Durability::Always).unwrap();
        assert!(wal.append(&edge(0)).is_err());
        assert!(wal.flush().is_err());
    }

    #[test]
    fn torn_tail_is_truncated_at_open() {
        let mem = MemWalStorage::new();
        let (wal, _) = Wal::open(Box::new(mem.clone()), Durability::Always).unwrap();
        wal.append(&edge(0)).unwrap();
        wal.append(&edge(1)).unwrap();
        drop(wal);
        // Tear the final record.
        let mut image = mem.image();
        image.truncate(image.len() - 3);
        let torn = MemWalStorage::from_bytes(image);
        let (wal, scan) = Wal::open(Box::new(torn.clone()), Durability::Always).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn_bytes, 22, "a 16+9 frame minus the last 3 bytes");
        // The file itself was repaired, and appends continue from seqno 2.
        assert_eq!(wal.append(&edge(7)).unwrap(), 2);
        drop(wal);
        let scan = scan_wal(&torn.image()).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn reset_for_checkpoint_leaves_marker_only() {
        let mem = MemWalStorage::new();
        let (wal, _) = Wal::open(Box::new(mem.clone()), Durability::Always).unwrap();
        for i in 0..4 {
            wal.append(&edge(i)).unwrap();
        }
        wal.reset_for_checkpoint(4).unwrap();
        let scan = scan_wal(&mem.image()).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0], (1, WalRecord::Checkpoint { folded: 4 }));
        // Appends continue after the marker.
        assert_eq!(wal.append(&edge(0)).unwrap(), 2);
    }

    #[test]
    fn group_commit_batches_concurrent_appenders() {
        let storage = FaultWalStorage::with_plan(FaultPlan {
            sync_delay: Some(Duration::from_millis(5)),
            ..FaultPlan::default()
        });
        let (wal, _) = Wal::open(Box::new(storage.clone()), Durability::Always).unwrap();
        let threads = 4;
        let per_thread = 25;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let wal = &wal;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        wal.append(&edge((t * per_thread + i) as u32)).unwrap();
                    }
                });
            }
        });
        let total = (threads * per_thread) as u64;
        assert_eq!(wal.appended(), total);
        assert_eq!(wal.durable_seqno(), total);
        // Group commit must have coalesced: strictly fewer syncs than
        // appends (each 5ms sync covers every record that lands behind
        // the leader).
        assert!(
            wal.sync_count() < total,
            "{} syncs for {total} appends — no batching",
            wal.sync_count()
        );
        let scan = scan_wal(&storage.durable_image()).unwrap();
        assert_eq!(scan.records.len(), total as usize);
    }
}
