//! WAL record types and the per-record wire framing.
//!
//! ## File grammar
//!
//! ```text
//! wal     := header record*
//! header  := magic "TCWAL01\n" · version u16 · reserved u16 · crc u32
//!            (crc is CRC-32 of the first 12 header bytes)
//! record  := len u32 · seqno u64 · crc u32 · payload[len]
//!            (crc is CRC-32 of len-bytes ‖ seqno-bytes ‖ payload)
//! payload := tag u8 · body
//! ```
//!
//! All integers are little-endian, like the segment format. Sequence
//! numbers are monotonic from 1 with no gaps; a checkpoint resets the log
//! file, so the first record of any log always carries seqno 1. The CRC
//! covers the length and seqno fields so a bit flip anywhere in a frame is
//! detected, not just in the payload.

use tc_util::bytes::{checked_len_u32, put_u32, put_u64, ByteReader};
use tc_util::{crc32, LoadError};

/// Leading magic of a WAL file (the segment format uses `TCSEG01\n`).
pub const WAL_MAGIC: [u8; 8] = *b"TCWAL01\n";

/// Format version; bumped on incompatible grammar changes.
pub const WAL_VERSION: u16 = 1;

/// File header length: magic (8) + version (2) + reserved (2) + crc (4).
pub const WAL_HEADER_LEN: usize = 16;

/// Frame header length: len (4) + seqno (8) + crc (4).
pub const FRAME_HEADER_LEN: usize = 16;

/// Upper bound on a record payload. A length field beyond this cannot come
/// from the writer (which checks at append time), so the reader classifies
/// it as corruption rather than a torn tail.
pub const MAX_RECORD_LEN: usize = 1 << 20;

const TAG_ADD_ITEM: u8 = 1;
const TAG_ADD_DATABASE: u8 = 2;
const TAG_ADD_EDGE: u8 = 3;
const TAG_ADD_TRANSACTION: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;

fn corrupt(msg: impl Into<String>) -> LoadError {
    LoadError::Corrupt(format!("wal: {}", msg.into()))
}

/// One typed mutation in the durable write path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Interns an item name; ids are assigned densely in record order.
    AddItem {
        /// The item name to intern.
        name: String,
    },
    /// Guarantees a vertex exists, even if isolated and database-less.
    AddDatabase {
        /// The vertex id.
        vertex: u32,
    },
    /// Adds the undirected edge `{u, v}`.
    AddEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint (`u != v`; self-loops are rejected at decode).
        v: u32,
    },
    /// Appends one transaction (an itemset) to a vertex's database.
    AddTransaction {
        /// The vertex whose database grows.
        vertex: u32,
        /// Item ids; must already be interned when the record is replayed.
        items: Vec<u32>,
    },
    /// Marks a fold of the log into a fresh base segment. Written as the
    /// first record of the reset log; a no-op on replay.
    Checkpoint {
        /// How many records the fold consumed.
        folded: u64,
    },
}

impl WalRecord {
    /// Encodes the payload (tag + body), without framing.
    pub fn encode_payload(&self) -> std::io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        match self {
            WalRecord::AddItem { name } => {
                buf.push(TAG_ADD_ITEM);
                put_u32(&mut buf, checked_len_u32(name.len(), "item name length")?);
                buf.extend_from_slice(name.as_bytes());
            }
            WalRecord::AddDatabase { vertex } => {
                buf.push(TAG_ADD_DATABASE);
                put_u32(&mut buf, *vertex);
            }
            WalRecord::AddEdge { u, v } => {
                buf.push(TAG_ADD_EDGE);
                put_u32(&mut buf, *u);
                put_u32(&mut buf, *v);
            }
            WalRecord::AddTransaction { vertex, items } => {
                buf.push(TAG_ADD_TRANSACTION);
                put_u32(&mut buf, *vertex);
                put_u32(
                    &mut buf,
                    checked_len_u32(items.len(), "transaction length")?,
                );
                for &id in items {
                    put_u32(&mut buf, id);
                }
            }
            WalRecord::Checkpoint { folded } => {
                buf.push(TAG_CHECKPOINT);
                put_u64(&mut buf, *folded);
            }
        }
        Ok(buf)
    }

    /// Decodes a payload, validating structure (utf-8 names, no self-loop
    /// edges, no trailing bytes). Item-id range checks happen at replay,
    /// where the item space is known.
    pub fn decode_payload(bytes: &[u8]) -> Result<WalRecord, LoadError> {
        let mut r = ByteReader::new(bytes);
        let eof = || corrupt("record payload truncated");
        let tag = r.take(1).ok_or_else(eof)?[0];
        let record = match tag {
            TAG_ADD_ITEM => {
                let len = r.u32().ok_or_else(eof)? as usize;
                let raw = r.take(len).ok_or_else(eof)?;
                let name = std::str::from_utf8(raw)
                    .map_err(|_| corrupt("item name not utf-8"))?
                    .to_string();
                WalRecord::AddItem { name }
            }
            TAG_ADD_DATABASE => WalRecord::AddDatabase {
                vertex: r.u32().ok_or_else(eof)?,
            },
            TAG_ADD_EDGE => {
                let (u, v) = (r.u32().ok_or_else(eof)?, r.u32().ok_or_else(eof)?);
                if u == v {
                    return Err(corrupt(format!("self-loop edge ({u}, {v})")));
                }
                WalRecord::AddEdge { u, v }
            }
            TAG_ADD_TRANSACTION => {
                let vertex = r.u32().ok_or_else(eof)?;
                let k = r.u32().ok_or_else(eof)?;
                // Cap the pre-allocation by the bytes actually left: a
                // crafted count must hit EOF below, not abort on a huge
                // reservation.
                let mut items = Vec::with_capacity((k as usize).min(r.remaining() / 4));
                for _ in 0..k {
                    items.push(r.u32().ok_or_else(eof)?);
                }
                WalRecord::AddTransaction { vertex, items }
            }
            TAG_CHECKPOINT => WalRecord::Checkpoint {
                folded: r.u64().ok_or_else(eof)?,
            },
            other => return Err(corrupt(format!("unknown record tag {other}"))),
        };
        if !r.is_empty() {
            return Err(corrupt("trailing bytes in record payload"));
        }
        Ok(record)
    }

    /// Encodes the full frame (`len · seqno · crc · payload`) for `seqno`.
    pub fn encode_frame(&self, seqno: u64) -> std::io::Result<Vec<u8>> {
        let payload = self.encode_payload()?;
        if payload.len() > MAX_RECORD_LEN {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "wal record of {} bytes exceeds the {MAX_RECORD_LEN}-byte cap",
                    payload.len()
                ),
            ));
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u64(&mut frame, seqno);
        let mut h = tc_util::Crc32::new();
        h.update(&frame[..12]);
        h.update(&payload);
        put_u32(&mut frame, h.finish());
        frame.extend_from_slice(&payload);
        Ok(frame)
    }
}

/// Encodes the 16-byte file header.
pub fn encode_header() -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8..10].copy_from_slice(&WAL_VERSION.to_le_bytes());
    // bytes 10..12 reserved (zero)
    let crc = crc32(&h[..12]);
    h[12..16].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Validates a full 16-byte header slice.
pub fn check_header(bytes: &[u8]) -> Result<(), LoadError> {
    debug_assert!(bytes.len() >= WAL_HEADER_LEN);
    if bytes[..8] != WAL_MAGIC {
        return Err(corrupt("bad magic (not a tc-wal file)"));
    }
    let stored = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if stored != crc32(&bytes[..12]) {
        return Err(LoadError::checksum("wal: file header damaged".to_string()));
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != WAL_VERSION {
        return Err(corrupt(format!(
            "unsupported wal version {version} (expected {WAL_VERSION})"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<WalRecord> {
        vec![
            WalRecord::AddItem {
                name: "data mining".into(),
            },
            WalRecord::AddItem {
                name: String::new(),
            },
            WalRecord::AddDatabase { vertex: 7 },
            WalRecord::AddEdge { u: 0, v: 42 },
            WalRecord::AddTransaction {
                vertex: 3,
                items: vec![0, 1, 5],
            },
            WalRecord::AddTransaction {
                vertex: 0,
                items: vec![],
            },
            WalRecord::Checkpoint { folded: u64::MAX },
        ]
    }

    #[test]
    fn payload_roundtrip_every_variant() {
        for rec in all_variants() {
            let bytes = rec.encode_payload().unwrap();
            assert_eq!(WalRecord::decode_payload(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn payload_rejects_trailing_and_truncated_bytes() {
        for rec in all_variants() {
            let mut bytes = rec.encode_payload().unwrap();
            bytes.push(0);
            assert!(
                WalRecord::decode_payload(&bytes)
                    .unwrap_err()
                    .is_corruption(),
                "trailing byte accepted for {rec:?}"
            );
            bytes.pop();
            for cut in 0..bytes.len() {
                assert!(
                    WalRecord::decode_payload(&bytes[..cut]).is_err()
                        || WalRecord::decode_payload(&bytes[..cut]).unwrap() != rec.clone(),
                    "truncation to {cut} decoded as the full record for {rec:?}"
                );
            }
        }
    }

    #[test]
    fn self_loop_and_unknown_tag_rejected() {
        let loop_edge = WalRecord::AddEdge { u: 9, v: 9 };
        let bytes = loop_edge.encode_payload().unwrap();
        assert!(WalRecord::decode_payload(&bytes)
            .unwrap_err()
            .is_corruption());
        assert!(WalRecord::decode_payload(&[99, 0, 0])
            .unwrap_err()
            .is_corruption());
        assert!(WalRecord::decode_payload(&[]).unwrap_err().is_corruption());
    }

    #[test]
    fn frame_crc_covers_len_and_seqno() {
        let rec = WalRecord::AddEdge { u: 1, v: 2 };
        let frame = rec.encode_frame(5).unwrap();
        assert_eq!(frame.len(), FRAME_HEADER_LEN + 9);
        let stored = u32::from_le_bytes([frame[12], frame[13], frame[14], frame[15]]);
        let mut h = tc_util::Crc32::new();
        h.update(&frame[..12]);
        h.update(&frame[FRAME_HEADER_LEN..]);
        assert_eq!(stored, h.finish());
        // Same record, different seqno: different CRC.
        let other = rec.encode_frame(6).unwrap();
        let stored2 = u32::from_le_bytes([other[12], other[13], other[14], other[15]]);
        assert_ne!(stored, stored2);
    }

    #[test]
    fn header_roundtrip_and_damage() {
        let h = encode_header();
        check_header(&h).unwrap();
        for byte in 0..WAL_HEADER_LEN {
            let mut bad = h;
            bad[byte] ^= 0x10;
            assert!(
                check_header(&bad).unwrap_err().is_corruption(),
                "flip at header byte {byte} accepted"
            );
        }
    }

    #[test]
    fn oversized_record_rejected_at_encode() {
        let rec = WalRecord::AddItem {
            name: "x".repeat(MAX_RECORD_LEN + 1),
        };
        let err = rec.encode_frame(1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
