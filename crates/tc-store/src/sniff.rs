//! Format detection by magic bytes, so the CLI (and any caller) can load
//! a file without being told which format it is.

use crate::page::MAGIC;
use std::io::Read;
use std::path::Path;
use tc_util::LoadError;

/// What a quick look at a file's first bytes says it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectedFormat {
    /// Binary segment, kind network (`tc-store`).
    SegmentNetwork,
    /// Binary segment, kind TC-Tree (`tc-store`).
    SegmentTree,
    /// Line-oriented text network (`tc_data::io`, `dbnet v1`).
    TextNetwork,
    /// Line-oriented text TC-Tree (`tc_index::serialize`, `tctree v1`).
    TextTree,
    /// None of the known headers.
    Unknown,
}

/// Sniffs `path` by its leading bytes. Segment files are classified by
/// the kind field of their (checksum-verified) header page; text files by
/// their first-line magic. Never reads more than one page.
pub fn detect_format(path: &Path) -> Result<DetectedFormat, LoadError> {
    let mut head = [0u8; 16];
    let mut f = std::fs::File::open(path)?;
    let mut filled = 0;
    while filled < head.len() {
        match f.read(&mut head[filled..])? {
            0 => break,
            n => filled += n,
        }
    }
    let head = &head[..filled];

    // Segment pages put the payload (magic first) after the 8-byte page
    // header; validate properly through the page layer.
    if head.len() >= 8 + MAGIC.len() && head[8..8 + MAGIC.len()] == MAGIC {
        let pages = crate::page::PageFile::open(path)?;
        return Ok(match pages.header().kind {
            crate::page::SegmentKind::Network => DetectedFormat::SegmentNetwork,
            crate::page::SegmentKind::TcTree => DetectedFormat::SegmentTree,
        });
    }
    if head.starts_with(b"dbnet v1") {
        return Ok(DetectedFormat::TextNetwork);
    }
    if head.starts_with(b"tctree v1") {
        return Ok(DetectedFormat::TextTree);
    }
    Ok(DetectedFormat::Unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::DatabaseNetworkBuilder;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tc_store_sniff_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn tiny_net() -> tc_core::DatabaseNetwork {
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        b.add_transaction(0, &[x]);
        b.add_transaction(1, &[x]);
        b.add_edge(0, 1);
        b.build().unwrap()
    }

    #[test]
    fn detects_all_four_formats() {
        let net = tiny_net();
        let tree = tc_index::TcTreeBuilder {
            threads: 1,
            max_len: usize::MAX,
        }
        .build(&net);

        let p = scratch("n.seg");
        crate::network::save_network_segment_to_path(&net, &p).unwrap();
        assert_eq!(detect_format(&p).unwrap(), DetectedFormat::SegmentNetwork);

        let p = scratch("t.seg");
        crate::tree::save_tree_segment_to_path(&tree, &p).unwrap();
        assert_eq!(detect_format(&p).unwrap(), DetectedFormat::SegmentTree);

        let p = scratch("n.dbnet");
        tc_data::save_network_to_path(&net, &p).unwrap();
        assert_eq!(detect_format(&p).unwrap(), DetectedFormat::TextNetwork);

        let p = scratch("t.tct");
        tree.save_to_path(&p).unwrap();
        assert_eq!(detect_format(&p).unwrap(), DetectedFormat::TextTree);
    }

    #[test]
    fn unknown_and_empty_files() {
        let p = scratch("junk.bin");
        std::fs::write(&p, b"hello world").unwrap();
        assert_eq!(detect_format(&p).unwrap(), DetectedFormat::Unknown);
        let p = scratch("empty.bin");
        std::fs::write(&p, b"").unwrap();
        assert_eq!(detect_format(&p).unwrap(), DetectedFormat::Unknown);
    }

    #[test]
    fn segment_magic_with_damaged_header_is_an_error() {
        let net = tiny_net();
        let p = scratch("damaged.seg");
        crate::network::save_network_segment_to_path(&net, &p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[40] ^= 0xFF; // inside the header payload, past the magic
        std::fs::write(&p, &bytes).unwrap();
        assert!(detect_format(&p).is_err());
    }
}
