//! Pluggable byte sources for segment page reads.
//!
//! A [`PageSource`] hands [`crate::page::PageFile`] the raw bytes of a
//! page; everything above it — CRC verification, header decoding, section
//! arithmetic — is backing-agnostic. Three implementations:
//!
//! - [`BufferedFileSource`]: `seek` + `read_exact` on an owned
//!   [`std::fs::File`] behind a mutex. Every read copies through the
//!   kernel; memory use is exactly the caller's buffers.
//! - [`MmapSource`] (unix): the whole file mapped read-only with
//!   `mmap(2)`, reads are `memcpy` from the mapping. The page cache
//!   backs the mapping, so cold pages fault in on first touch and the
//!   kernel reclaims them under pressure — a segment much larger than
//!   RAM stays servable. The mapping is released by `munmap(2)` on drop,
//!   so swapping an `Arc<SegmentTcTree>` (hot reload) cannot leak maps.
//! - [`MemSource`]: an in-memory image (tests, conversions).
//!
//! The mmap calls use the same direct `extern "C"` syscall-binding
//! pattern `tc-serve` uses for `signal(2)` — no new dependencies. On
//! non-unix targets [`SourceKind::Mmap`] silently falls back to the
//! buffered reader, preserving behaviour.
//!
//! Integrity is unaffected by the backing: [`crate::page::PageFile::read_page`]
//! re-verifies each page's CRC-32 on every read, so a bit flip surfaces
//! as [`LoadError::Checksum`] whether the bytes arrived via `read(2)` or
//! a mapped load. See `docs/SEGMENT_FORMAT.md` for the on-disk layout.

use std::path::Path;
use tc_util::LoadError;

/// Which backing [`crate::page::PageFile::open_with`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceKind {
    /// `seek`/`read` on a file handle (the default; works everywhere).
    #[default]
    Buffered,
    /// `mmap(2)` the whole file read-only (unix; falls back to
    /// [`SourceKind::Buffered`] elsewhere).
    Mmap,
}

impl SourceKind {
    /// Parses a user-facing name (`buffered` / `mmap`).
    pub fn parse(s: &str) -> Option<SourceKind> {
        match s {
            "buffered" => Some(SourceKind::Buffered),
            "mmap" => Some(SourceKind::Mmap),
            _ => None,
        }
    }

    /// The user-facing name (`buffered` / `mmap`).
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::Buffered => "buffered",
            SourceKind::Mmap => "mmap",
        }
    }
}

/// Random-access byte source a [`crate::page::PageFile`] reads pages from.
///
/// Implementations must be cheap to read concurrently; `read_at` fills
/// `buf` exactly from `off` or fails. Reads past `len()` are the caller's
/// bug — `PageFile` bounds-checks against `len()` before calling.
pub trait PageSource: Send + Sync + std::fmt::Debug {
    /// Total length in bytes.
    fn len(&self) -> u64;

    /// `true` when the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fills `buf` with the bytes at `off..off + buf.len()`.
    fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<(), LoadError>;

    /// The [`SourceKind`] this source implements (for diagnostics).
    fn kind(&self) -> SourceKind;
}

/// Opens `path` with the requested backing.
///
/// On non-unix targets [`SourceKind::Mmap`] degrades to the buffered
/// reader rather than failing: the choice of backing is a performance
/// hint, never a correctness switch.
pub fn open_source(path: &Path, kind: SourceKind) -> Result<Box<dyn PageSource>, LoadError> {
    match kind {
        SourceKind::Buffered => Ok(Box::new(BufferedFileSource::open(path)?)),
        #[cfg(unix)]
        SourceKind::Mmap => Ok(Box::new(mmap::MmapSource::open(path)?)),
        #[cfg(not(unix))]
        SourceKind::Mmap => Ok(Box::new(BufferedFileSource::open(path)?)),
    }
}

/// `seek` + `read_exact` on an owned file handle.
///
/// The mutex serialises the seek/read pair; the handle is the only state.
#[derive(Debug)]
pub struct BufferedFileSource {
    file: parking_lot::Mutex<std::fs::File>,
    len: u64,
}

impl BufferedFileSource {
    /// Opens `path` read-only.
    pub fn open(path: &Path) -> Result<BufferedFileSource, LoadError> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        Ok(BufferedFileSource {
            file: parking_lot::Mutex::new(file),
            len,
        })
    }
}

impl PageSource for BufferedFileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<(), LoadError> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(buf)?;
        Ok(())
    }

    fn kind(&self) -> SourceKind {
        SourceKind::Buffered
    }
}

/// An in-memory segment image.
#[derive(Debug)]
pub struct MemSource(pub Vec<u8>);

impl PageSource for MemSource {
    fn len(&self) -> u64 {
        self.0.len() as u64
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<(), LoadError> {
        let start = off as usize;
        let end = start
            .checked_add(buf.len())
            .filter(|&e| e <= self.0.len())
            .ok_or_else(|| LoadError::corrupt("segment: read past end of image"))?;
        buf.copy_from_slice(&self.0[start..end]);
        Ok(())
    }

    fn kind(&self) -> SourceKind {
        SourceKind::Buffered
    }
}

#[cfg(unix)]
mod mmap {
    use super::{PageSource, SourceKind};
    use std::ffi::c_void;
    use std::path::Path;
    use tc_util::LoadError;

    // Direct bindings, the same pattern tc-serve uses for signal(2).
    // The constants are identical on Linux and macOS for this usage.
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            off: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// The whole file mapped read-only; unmapped on drop.
    pub struct MmapSource {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never remapped or written
    // after construction, so concurrent reads from any thread observe
    // immutable memory; the raw pointer is only dereferenced inside
    // `read_at`'s bounds-checked copy and freed exactly once in `Drop`.
    unsafe impl Send for MmapSource {}
    // SAFETY: same argument — `&MmapSource` only permits reads of
    // immutable, page-aligned memory owned by the mapping.
    unsafe impl Sync for MmapSource {}

    impl std::fmt::Debug for MmapSource {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("MmapSource")
                .field("len", &self.len)
                .finish()
        }
    }

    impl MmapSource {
        /// Opens and maps `path` read-only. The file descriptor is closed
        /// before returning — the mapping keeps the file alive.
        pub fn open(path: &Path) -> Result<MmapSource, LoadError> {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            let len = usize::try_from(len)
                .map_err(|_| LoadError::corrupt("segment: file too large to map"))?;
            if len == 0 {
                // mmap(2) rejects zero-length maps; an empty file needs no
                // mapping at all.
                return Ok(MmapSource {
                    ptr: std::ptr::null(),
                    len: 0,
                });
            }
            // SAFETY: `file` is a freshly opened, readable descriptor that
            // stays open across the call; `len` is its exact non-zero size;
            // a null hint with PROT_READ|MAP_PRIVATE asks the kernel for a
            // new private read-only mapping and cannot clobber existing
            // memory. The result is validated below before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            // MAP_FAILED is (void *)-1; null is never returned for a
            // non-zero request but is equally unusable.
            if ptr == usize::MAX as *mut c_void || ptr.is_null() {
                return Err(LoadError::Io(std::io::Error::other(format!(
                    "mmap of {} failed",
                    path.display()
                ))));
            }
            Ok(MmapSource {
                ptr: ptr as *const u8,
                len,
            })
        }
    }

    impl Drop for MmapSource {
        fn drop(&mut self) {
            if self.len > 0 {
                // SAFETY: `ptr`/`len` are exactly what mmap returned for
                // this object, the mapping is still live (only Drop ever
                // unmaps), and Drop runs at most once.
                let rc = unsafe { munmap(self.ptr as *mut c_void, self.len) };
                // munmap failing here means the arguments were corrupted
                // (EINVAL is its only realistic errno for a valid mapping):
                // loud in debug builds, logged-but-not-fatal in release —
                // panicking in a destructor would abort the process.
                debug_assert_eq!(rc, 0, "munmap({:p}, {}) failed", self.ptr, self.len);
                if rc != 0 {
                    eprintln!(
                        "tc-store: munmap({:p}, {}) failed; leaking the mapping",
                        self.ptr, self.len
                    );
                }
            }
        }
    }

    impl PageSource for MmapSource {
        fn len(&self) -> u64 {
            self.len as u64
        }

        fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<(), LoadError> {
            let start = usize::try_from(off)
                .ok()
                .filter(|&s| s.checked_add(buf.len()).is_some_and(|e| e <= self.len))
                .ok_or_else(|| LoadError::corrupt("segment: read past end of mapping"))?;
            // SAFETY: the check above guarantees `start + buf.len() <=
            // self.len`, the mapping is immutable and outlives `&self`,
            // and `buf` is a distinct, writable slice — the ranges cannot
            // overlap because one side is foreign mapped memory.
            unsafe {
                std::ptr::copy_nonoverlapping(self.ptr.add(start), buf.as_mut_ptr(), buf.len());
            }
            Ok(())
        }

        fn kind(&self) -> SourceKind {
            SourceKind::Mmap
        }
    }
}

#[cfg(unix)]
pub use mmap::MmapSource;

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(bytes: &[u8]) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "tc-source-{}-{}.bin",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn buffered_and_mmap_read_identical_bytes() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let path = tmp_file(&data);
        for kind in [SourceKind::Buffered, SourceKind::Mmap] {
            let src = open_source(&path, kind).unwrap();
            assert_eq!(src.len(), data.len() as u64);
            let mut buf = vec![0u8; 1000];
            for off in [0u64, 1, 4095, 4096, 8999] {
                src.read_at(off, &mut buf).unwrap();
                assert_eq!(
                    buf,
                    &data[off as usize..off as usize + 1000],
                    "{} read at {off}",
                    kind.name()
                );
            }
            // Past-end reads fail rather than over-read.
            assert!(src.read_at(data.len() as u64 - 10, &mut buf).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_and_rejects_reads() {
        let path = tmp_file(&[]);
        for kind in [SourceKind::Buffered, SourceKind::Mmap] {
            let src = open_source(&path, kind).unwrap();
            assert_eq!(src.len(), 0);
            assert!(src.is_empty());
            let mut one = [0u8; 1];
            assert!(src.read_at(0, &mut one).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn source_kind_parses_names() {
        assert_eq!(SourceKind::parse("buffered"), Some(SourceKind::Buffered));
        assert_eq!(SourceKind::parse("mmap"), Some(SourceKind::Mmap));
        assert_eq!(SourceKind::parse("lmdb"), None);
        assert_eq!(SourceKind::Mmap.name(), "mmap");
        assert_eq!(SourceKind::default(), SourceKind::Buffered);
    }

    #[test]
    fn mem_source_bounds_checked() {
        let src = MemSource(vec![1, 2, 3, 4]);
        let mut buf = [0u8; 2];
        src.read_at(1, &mut buf).unwrap();
        assert_eq!(buf, [2, 3]);
        assert!(src.read_at(3, &mut buf).is_err());
        assert!(src.read_at(u64::MAX, &mut buf).is_err());
    }
}
