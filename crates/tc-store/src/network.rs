//! Binary segment persistence for [`DatabaseNetwork`] (segment kind 1).
//! Byte-level spec: `docs/SEGMENT_FORMAT.md` in the repository.
//!
//! Three sections:
//!
//! | id | name  | stream layout |
//! |----|-------|---------------|
//! | 1  | ITEMS | `count u32`, then per item `name_len u32 · utf-8 bytes` (dense ids) |
//! | 2  | GRAPH | `vertices u64 · edge_count u64`, then per edge `u u32 · v u32` (canonical `u < v`, sorted) |
//! | 3  | DBS   | `db_count u64`, then per non-empty vertex database `vertex u32 · tx_count u32`, then per transaction `item_count u32 · item u32 …` |
//!
//! Transactions are reconstructed from the vertical tidsets exactly like
//! the text format in `tc_data::io`, so the two formats are semantically
//! interchangeable and a save is a pure function of the network content —
//! the byte-identity property the round-trip tests rely on.

use crate::page::{write_segment, PageFile, SegmentKind};
use std::io::Write;
use std::path::Path;
use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder};
use tc_txdb::Item;
use tc_util::bytes::{checked_len_u32, put_u32, put_u64, ByteReader};
use tc_util::LoadError;

const SEC_ITEMS: u32 = 1;
const SEC_GRAPH: u32 = 2;
const SEC_DBS: u32 = 3;

fn corrupt(msg: impl Into<String>) -> LoadError {
    LoadError::Corrupt(format!("netseg: {}", msg.into()))
}

/// Writes `network` to `w` as a segment file.
pub fn save_network_segment<W: Write>(network: &DatabaseNetwork, w: &mut W) -> std::io::Result<()> {
    let items_space = network.item_space();
    let mut items = Vec::new();
    put_u32(
        &mut items,
        checked_len_u32(items_space.len(), "item count")?,
    );
    for item in items_space.items() {
        let name = items_space.name(item).unwrap_or("");
        put_u32(&mut items, checked_len_u32(name.len(), "item name length")?);
        items.extend_from_slice(name.as_bytes());
    }

    let mut graph = Vec::new();
    put_u64(&mut graph, network.num_vertices() as u64);
    put_u64(&mut graph, network.num_edges() as u64);
    for (u, v) in network.graph().edges() {
        put_u32(&mut graph, u);
        put_u32(&mut graph, v);
    }

    let mut dbs = Vec::new();
    let nonempty: Vec<u32> = (0..network.num_vertices() as u32)
        .filter(|&v| network.database(v).num_transactions() > 0)
        .collect();
    put_u64(&mut dbs, nonempty.len() as u64);
    for v in nonempty {
        let db = network.database(v);
        let h = db.num_transactions();
        put_u32(&mut dbs, v);
        put_u32(&mut dbs, checked_len_u32(h, "transaction count")?);
        for t in db.transactions() {
            put_u32(&mut dbs, checked_len_u32(t.len(), "transaction length")?);
            for item in t {
                put_u32(&mut dbs, item.0);
            }
        }
    }

    write_segment(
        w,
        SegmentKind::Network,
        &[(SEC_ITEMS, items), (SEC_GRAPH, graph), (SEC_DBS, dbs)],
    )
}

/// Writes to a file path.
pub fn save_network_segment_to_path(network: &DatabaseNetwork, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    save_network_segment(network, &mut f)
}

fn load_network_from_pages(pages: &PageFile) -> Result<DatabaseNetwork, LoadError> {
    if pages.header().kind != SegmentKind::Network {
        return Err(corrupt("segment holds a TC-Tree, not a network"));
    }
    let mut b = DatabaseNetworkBuilder::new();
    let eof = || corrupt("section stream truncated");

    let items = pages.read_section(&pages.header().section(SEC_ITEMS)?)?;
    let mut r = ByteReader::new(&items);
    let m = r.u32().ok_or_else(eof)?;
    for expect in 0..m {
        let len = r.u32().ok_or_else(eof)? as usize;
        let raw = r.take(len).ok_or_else(eof)?;
        let name = std::str::from_utf8(raw).map_err(|_| corrupt("item name not utf-8"))?;
        let interned = b.intern_item(name);
        if interned.0 != expect {
            return Err(corrupt(format!("duplicate item name '{name}'")));
        }
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes in ITEMS section"));
    }

    let graph = pages.read_section(&pages.header().section(SEC_GRAPH)?)?;
    let mut r = ByteReader::new(&graph);
    let n = r.u64().ok_or_else(eof)?;
    if n > u32::MAX as u64 {
        return Err(corrupt("vertex count overflows u32 ids"));
    }
    let e = r.u64().ok_or_else(eof)?;
    for _ in 0..e {
        let u = r.u32().ok_or_else(eof)?;
        let v = r.u32().ok_or_else(eof)?;
        if u as u64 >= n || v as u64 >= n {
            return Err(corrupt("edge endpoint out of range"));
        }
        if u == v {
            return Err(corrupt("self-loop edge"));
        }
        b.add_edge(u, v);
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes in GRAPH section"));
    }

    let dbs = pages.read_section(&pages.header().section(SEC_DBS)?)?;
    let mut r = ByteReader::new(&dbs);
    let db_count = r.u64().ok_or_else(eof)?;
    for _ in 0..db_count {
        let v = r.u32().ok_or_else(eof)?;
        if v as u64 >= n {
            return Err(corrupt("db vertex out of range"));
        }
        let h = r.u32().ok_or_else(eof)?;
        for _ in 0..h {
            let k = r.u32().ok_or_else(eof)?;
            // Cap the pre-allocation by the bytes actually left: a crafted
            // count must hit EOF below, not abort on a huge reservation.
            let mut tx = Vec::with_capacity((k as usize).min(r.remaining() / 4));
            for _ in 0..k {
                let id = r.u32().ok_or_else(eof)?;
                if id >= m {
                    return Err(corrupt("transaction item out of range"));
                }
                tx.push(Item(id));
            }
            b.add_transaction(v, &tx);
        }
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes in DBS section"));
    }

    if n > 0 {
        b.ensure_vertex(n as u32 - 1);
    }
    b.build().map_err(|e| corrupt(e.to_string()))
}

/// Reads a network segment from a file path.
pub fn load_network_segment_from_path(path: &Path) -> Result<DatabaseNetwork, LoadError> {
    load_network_from_pages(&PageFile::open(path)?)
}

/// Reads a network segment from an in-memory image.
pub fn load_network_segment_from_bytes(bytes: &[u8]) -> Result<DatabaseNetwork, LoadError> {
    load_network_from_pages(&PageFile::from_bytes(bytes.to_vec())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_data::{generate_checkin, CheckinConfig};
    use tc_txdb::Pattern;

    fn sample() -> DatabaseNetwork {
        generate_checkin(&CheckinConfig {
            users: 25,
            groups: 3,
            group_size: 6,
            locations: 20,
            periods: 8,
            ..CheckinConfig::default()
        })
        .network
    }

    #[test]
    fn roundtrip_preserves_stats_names_and_frequencies() {
        let net = sample();
        let mut buf = Vec::new();
        save_network_segment(&net, &mut buf).unwrap();
        let loaded = load_network_segment_from_bytes(&buf).unwrap();
        assert_eq!(loaded.stats(), net.stats());
        for item in net.item_space().items() {
            assert_eq!(net.item_space().name(item), loaded.item_space().name(item));
        }
        for item in net.items_in_use().into_iter().take(10) {
            let p = Pattern::singleton(item);
            for v in 0..net.num_vertices() as u32 {
                assert!((net.frequency(v, &p) - loaded.frequency(v, &p)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn resave_is_byte_identical() {
        let net = sample();
        let mut first = Vec::new();
        save_network_segment(&net, &mut first).unwrap();
        let loaded = load_network_segment_from_bytes(&first).unwrap();
        let mut second = Vec::new();
        save_network_segment(&loaded, &mut second).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn file_roundtrip() {
        let net = sample();
        let dir = std::env::temp_dir().join("tc_store_net_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.seg");
        save_network_segment_to_path(&net, &path).unwrap();
        let loaded = load_network_segment_from_path(&path).unwrap();
        assert_eq!(loaded.stats(), net.stats());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tree_segment_is_rejected_as_network() {
        let net = sample();
        let tree = tc_index::TcTreeBuilder {
            threads: 1,
            max_len: 1,
        }
        .build(&net);
        let mut buf = Vec::new();
        crate::tree::save_tree_segment(&tree, &mut buf).unwrap();
        let err = load_network_segment_from_bytes(&buf).unwrap_err();
        assert!(err.to_string().contains("TC-Tree"), "{err}");
    }

    #[test]
    fn crafted_transaction_count_errors_without_huge_allocation() {
        use crate::page::write_segment;
        use tc_util::bytes::{put_u32, put_u64};
        let mut items = Vec::new();
        put_u32(&mut items, 1);
        put_u32(&mut items, 1);
        items.push(b'a');
        let mut graph = Vec::new();
        put_u64(&mut graph, 2);
        put_u64(&mut graph, 0);
        let mut dbs = Vec::new();
        put_u64(&mut dbs, 1);
        put_u32(&mut dbs, 0); // vertex
        put_u32(&mut dbs, 1); // one transaction …
        put_u32(&mut dbs, u32::MAX); // … claiming four billion items
        let mut buf = Vec::new();
        write_segment(
            &mut buf,
            SegmentKind::Network,
            &[(SEC_ITEMS, items), (SEC_GRAPH, graph), (SEC_DBS, dbs)],
        )
        .unwrap();
        let err = load_network_segment_from_bytes(&buf).unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn empty_network_roundtrips() {
        let mut b = DatabaseNetworkBuilder::new();
        b.ensure_vertex(2);
        let net = b.build().unwrap();
        let mut buf = Vec::new();
        save_network_segment(&net, &mut buf).unwrap();
        let loaded = load_network_segment_from_bytes(&buf).unwrap();
        assert_eq!(loaded.num_vertices(), 3);
        assert_eq!(loaded.num_edges(), 0);
    }

    #[test]
    fn zero_vertex_network_roundtrips() {
        // n = 0 skips the `ensure_vertex(n - 1)` fix-up entirely; the
        // round trip must not underflow or invent a vertex.
        let net = DatabaseNetworkBuilder::new().build().unwrap();
        assert_eq!(net.num_vertices(), 0);
        let mut buf = Vec::new();
        save_network_segment(&net, &mut buf).unwrap();
        let loaded = load_network_segment_from_bytes(&buf).unwrap();
        assert_eq!(loaded.num_vertices(), 0);
        assert_eq!(loaded.num_edges(), 0);
        assert_eq!(loaded.stats(), net.stats());
        let mut again = Vec::new();
        save_network_segment(&loaded, &mut again).unwrap();
        assert_eq!(buf, again, "zero-vertex resave must be byte-identical");
    }

    #[test]
    fn zero_db_network_roundtrips() {
        // Vertices and edges but not a single transaction database: the
        // DBS section is an empty list, and the trailing vertices only
        // exist through ensure_vertex on load.
        let mut b = DatabaseNetworkBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertex(4); // vertices 2..=4 are isolated *and* database-less
        let net = b.build().unwrap();
        let mut buf = Vec::new();
        save_network_segment(&net, &mut buf).unwrap();
        let loaded = load_network_segment_from_bytes(&buf).unwrap();
        assert_eq!(loaded.num_vertices(), 5);
        assert_eq!(loaded.num_edges(), 1);
        assert_eq!(loaded.stats().transactions, 0);
        let mut again = Vec::new();
        save_network_segment(&loaded, &mut again).unwrap();
        assert_eq!(buf, again, "zero-db resave must be byte-identical");
    }
}
