//! The `TCMAP01` shard map: how a TC-Tree is split across N segment
//! shards, and how a router finds them.
//!
//! `tc shard` partitions a TC-Tree **by root-child subtree**: every
//! level-1 node (one per frequent item) owns its full subtree, and the
//! owning shard is `crc32(item_le_bytes) % shard_count`. Each shard is a
//! self-contained `TCSEG01` tree segment (root plus its owned subtrees,
//! arena order preserved), so any `tc serve` daemon can serve it
//! unmodified. The shard map is the small sidecar file that records the
//! partitioning — hash scheme, shard count, the full tree's level-1 item
//! universe, and each shard's serving address and segment path — framed
//! with the same CRC-32 discipline as the WAL and segment formats.
//!
//! The level-1 item universe is what makes scatter-gather **exact**: a
//! shard daemon's own `query_by_alpha` sees only its local root children,
//! so the router rewrites `QBA(α)` into `QUERY(universe, α)` before
//! fanning out. With that rewrite every per-shard pruning decision equals
//! the unsharded walk's, and per-shard answers are disjoint unions of the
//! unsharded answer. See `docs/SHARDING.md` for the byte-level spec, a
//! worked hexdump, and the exactness argument.

use std::io::Write;
use std::path::Path;
use tc_index::{TcNode, TcTree};
use tc_util::bytes::{checked_len_u32, put_u32, ByteReader};
use tc_util::{crc32, LoadError};

/// Magic bytes opening every shard-map file.
pub const MAP_MAGIC: &[u8; 8] = b"TCMAP01\n";
/// The only shard-map payload version this build reads and writes.
pub const MAP_VERSION: u32 = 1;
/// Upper bound on `shard_count` (and an allocation cap while parsing).
pub const MAX_SHARDS: usize = 4096;
/// Allocation cap for one serving address, in bytes.
const MAX_ADDR_BYTES: usize = 512;
/// Allocation cap for one segment path, in bytes.
const MAX_PATH_BYTES: usize = 4096;

fn corrupt(msg: impl Into<String>) -> LoadError {
    LoadError::Corrupt(format!("shardmap: {}", msg.into()))
}

/// How items are assigned to shards.
///
/// One scheme exists today; the map records a scheme code so a reader
/// can refuse a map written under a scheme it does not implement
/// instead of silently mis-routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashScheme {
    /// Shard of a level-1 subtree = `crc32(item.to_le_bytes()) % shard_count`.
    Crc32Item,
}

impl HashScheme {
    /// The wire code stored in the map payload.
    pub fn code(self) -> u32 {
        match self {
            HashScheme::Crc32Item => 1,
        }
    }

    /// Inverse of [`HashScheme::code`].
    pub fn from_code(code: u32) -> Option<HashScheme> {
        match code {
            1 => Some(HashScheme::Crc32Item),
            _ => None,
        }
    }

    /// Human-readable name, used in CLI output and docs.
    pub fn name(self) -> &'static str {
        match self {
            HashScheme::Crc32Item => "crc32-item",
        }
    }

    /// The shard owning the level-1 subtree rooted at `item`.
    pub fn shard_of(self, item: u32, shard_count: u32) -> u32 {
        match self {
            HashScheme::Crc32Item => crc32(&item.to_le_bytes()) % shard_count.max(1),
        }
    }
}

/// One shard's serving address and segment path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// `host:port` the shard daemon listens on.
    pub addr: String,
    /// Path of the shard's `TCSEG01` segment, as written by `tc shard`.
    pub path: String,
}

/// A parsed `TCMAP01` shard map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// The item→shard assignment scheme.
    pub scheme: HashScheme,
    /// The **full** tree's level-1 items, ascending. The router queries
    /// each shard with this universe so QBA answers stay exact.
    pub items: Vec<u32>,
    /// Per-shard address and segment path; `shards.len()` is the shard
    /// count and a shard's index is its id.
    pub shards: Vec<ShardEntry>,
}

impl ShardMap {
    /// The shard owning the level-1 subtree rooted at `item`.
    pub fn shard_of(&self, item: u32) -> u32 {
        self.scheme.shard_of(item, self.shards.len() as u32)
    }

    /// Serialises the map (magic, framed payload).
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut payload = Vec::new();
        put_u32(&mut payload, MAP_VERSION);
        put_u32(&mut payload, self.scheme.code());
        put_u32(
            &mut payload,
            checked_len_u32(self.shards.len(), "shard count")?,
        );
        put_u32(&mut payload, checked_len_u32(self.items.len(), "items")?);
        for &item in &self.items {
            put_u32(&mut payload, item);
        }
        for (id, shard) in self.shards.iter().enumerate() {
            put_u32(&mut payload, id as u32);
            put_u32(
                &mut payload,
                checked_len_u32(shard.addr.len(), "shard addr")?,
            );
            payload.extend_from_slice(shard.addr.as_bytes());
            put_u32(
                &mut payload,
                checked_len_u32(shard.path.len(), "shard path")?,
            );
            payload.extend_from_slice(shard.path.as_bytes());
        }
        w.write_all(MAP_MAGIC)?;
        let mut head = Vec::with_capacity(8);
        put_u32(&mut head, checked_len_u32(payload.len(), "map payload")?);
        put_u32(&mut head, crc32(&payload));
        w.write_all(&head)?;
        w.write_all(&payload)
    }

    /// Serialises the map to a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.save(&mut buf).expect("Vec write is infallible");
        buf
    }

    /// Writes the map to `path`.
    pub fn save_to_path(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Parses a shard map, verifying magic, framing, checksum, version,
    /// and every structural invariant. Corruption always surfaces as a
    /// typed [`LoadError`], never a panic or a silently wrong map.
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardMap, LoadError> {
        if bytes.len() < MAP_MAGIC.len() + 8 {
            return Err(corrupt("file too short for header"));
        }
        let (magic, rest) = bytes.split_at(MAP_MAGIC.len());
        if magic != MAP_MAGIC {
            return Err(corrupt("bad magic (not a TCMAP01 file)"));
        }
        let eof = || corrupt("unexpected end of payload");
        let mut head = ByteReader::new(&rest[..8]);
        let payload_len = head.u32().ok_or_else(eof)? as usize;
        let want_crc = head.u32().ok_or_else(eof)?;
        let payload = &rest[8..];
        if payload.len() != payload_len {
            return Err(corrupt(format!(
                "payload length {} disagrees with framed {payload_len}",
                payload.len()
            )));
        }
        if crc32(payload) != want_crc {
            return Err(LoadError::Checksum(
                "shardmap: payload checksum mismatch".into(),
            ));
        }
        let mut r = ByteReader::new(payload);
        let version = r.u32().ok_or_else(eof)?;
        if version != MAP_VERSION {
            return Err(corrupt(format!(
                "version skew: file is v{version}, this build reads v{MAP_VERSION}"
            )));
        }
        let scheme_code = r.u32().ok_or_else(eof)?;
        let scheme = HashScheme::from_code(scheme_code)
            .ok_or_else(|| corrupt(format!("unknown hash scheme code {scheme_code}")))?;
        let shard_count = r.u32().ok_or_else(eof)? as usize;
        if shard_count == 0 || shard_count > MAX_SHARDS {
            return Err(corrupt(format!(
                "shard count {shard_count} outside 1..={MAX_SHARDS}"
            )));
        }
        let item_count = r.u32().ok_or_else(eof)? as usize;
        if item_count > r.remaining() / 4 {
            return Err(corrupt(format!(
                "item count {item_count} exceeds remaining payload"
            )));
        }
        let mut items = Vec::with_capacity(item_count);
        for _ in 0..item_count {
            let item = r.u32().ok_or_else(eof)?;
            if let Some(&prev) = items.last() {
                if item <= prev {
                    return Err(corrupt("item universe not strictly ascending"));
                }
            }
            items.push(item);
        }
        let mut shards = Vec::with_capacity(shard_count);
        for id in 0..shard_count {
            let got = r.u32().ok_or_else(eof)? as usize;
            if got != id {
                return Err(corrupt(format!("shard entry {id} carries id {got}")));
            }
            let addr = read_string(&mut r, MAX_ADDR_BYTES, "addr")?;
            let path = read_string(&mut r, MAX_PATH_BYTES, "path")?;
            shards.push(ShardEntry { addr, path });
        }
        if !r.is_empty() {
            return Err(corrupt(format!("{} trailing payload bytes", r.remaining())));
        }
        Ok(ShardMap {
            scheme,
            items,
            shards,
        })
    }

    /// Reads and parses a shard map from `path`.
    pub fn load_from_path(path: &Path) -> Result<ShardMap, LoadError> {
        let bytes = std::fs::read(path)
            .map_err(|e| LoadError::Corrupt(format!("shardmap: read {}: {e}", path.display())))?;
        ShardMap::from_bytes(&bytes)
    }
}

fn read_string(r: &mut ByteReader<'_>, cap: usize, what: &str) -> Result<String, LoadError> {
    let eof = || corrupt("unexpected end of payload");
    let len = r.u32().ok_or_else(eof)? as usize;
    if len > cap {
        return Err(corrupt(format!("{what} length {len} exceeds cap {cap}")));
    }
    let bytes = r.take(len).ok_or_else(eof)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(format!("{what} is not UTF-8")))
}

/// The full tree's level-1 item universe, ascending (root children are
/// built in ascending item order, so this is a direct read-off).
pub fn level1_items(tree: &TcTree) -> Vec<u32> {
    let nodes = tree.nodes();
    nodes[0]
        .children
        .iter()
        .map(|&c| nodes[c as usize].item.0)
        .collect()
}

/// Partitions `tree` into `shard_count` self-contained trees by
/// root-child subtree: shard `s` keeps the root plus every level-1
/// subtree whose item hashes to `s` under `scheme`.
///
/// Arena order is preserved within each shard, which keeps both segment
/// invariants intact (parents precede children; root children stay
/// ascending by item) and — because within-level arena order equals
/// pattern lexicographic order — makes the router's `(len, lex)` merge
/// reproduce the unsharded answer ordering exactly. Splitting into one
/// shard is the identity: the arena comes back unchanged.
pub fn split_tree(tree: &TcTree, scheme: HashScheme, shard_count: u32) -> Vec<TcTree> {
    let n = shard_count.max(1);
    let nodes = tree.nodes();
    // owner[id]: the shard owning node `id`'s level-1 ancestor.
    let mut owner = vec![0u32; nodes.len()];
    for (id, node) in nodes.iter().enumerate().skip(1) {
        owner[id] = if node.parent == 0 {
            scheme.shard_of(node.item.0, n)
        } else {
            owner[node.parent as usize]
        };
    }
    (0..n)
        .map(|s| {
            let mut remap = vec![u32::MAX; nodes.len()];
            remap[0] = 0;
            let mut out = vec![TcNode {
                item: nodes[0].item,
                pattern: nodes[0].pattern.clone(),
                parent: 0,
                children: Vec::new(),
                truss: nodes[0].truss.clone(),
            }];
            for (id, node) in nodes.iter().enumerate().skip(1) {
                if owner[id] != s {
                    continue;
                }
                let new_id = out.len() as u32;
                remap[id] = new_id;
                let new_parent = remap[node.parent as usize];
                debug_assert_ne!(new_parent, u32::MAX, "parents precede children");
                out.push(TcNode {
                    item: node.item,
                    pattern: node.pattern.clone(),
                    parent: new_parent,
                    children: Vec::new(),
                    truss: node.truss.clone(),
                });
                out[new_parent as usize].children.push(new_id);
            }
            TcTree::from_nodes(out)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::DatabaseNetworkBuilder;
    use tc_index::TcTreeBuilder;

    fn sample_tree() -> TcTree {
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        let y = b.intern_item("y");
        let z = b.intern_item("z");
        for v in 0..4u32 {
            for _ in 0..3 {
                b.add_transaction(v, &[x, y]);
            }
            b.add_transaction(v, &[x, z]);
        }
        for (u, v) in [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        TcTreeBuilder::default().build(&b.build().unwrap())
    }

    fn sample_map() -> ShardMap {
        ShardMap {
            scheme: HashScheme::Crc32Item,
            items: vec![0, 1, 2],
            shards: vec![
                ShardEntry {
                    addr: "127.0.0.1:7701".into(),
                    path: "shards/shard-000.seg".into(),
                },
                ShardEntry {
                    addr: "127.0.0.1:7702".into(),
                    path: "shards/shard-001.seg".into(),
                },
            ],
        }
    }

    #[test]
    fn map_roundtrips() {
        let map = sample_map();
        let back = ShardMap::from_bytes(&map.to_bytes()).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn map_rejects_bad_magic() {
        let mut bytes = sample_map().to_bytes();
        bytes[0] ^= 0x40;
        let err = ShardMap::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_)), "{err}");
    }

    #[test]
    fn map_rejects_version_skew_with_typed_error() {
        let mut map_bytes = Vec::new();
        let map = sample_map();
        // Re-frame a payload whose version field claims v9.
        let bytes = map.to_bytes();
        let payload = &bytes[16..];
        let mut doctored = payload.to_vec();
        doctored[0] = 9;
        map_bytes.extend_from_slice(MAP_MAGIC);
        put_u32(&mut map_bytes, doctored.len() as u32);
        put_u32(&mut map_bytes, crc32(&doctored));
        map_bytes.extend_from_slice(&doctored);
        let err = ShardMap::from_bytes(&map_bytes).unwrap_err();
        assert!(err.to_string().contains("version skew"), "{err}");
    }

    #[test]
    fn shard_assignment_is_stable() {
        // The on-disk contract: crc32(le_bytes) % n. A change here silently
        // orphans every existing shard layout, so pin concrete values.
        let s = HashScheme::Crc32Item;
        for item in 0..64u32 {
            assert_eq!(s.shard_of(item, 3), crc32(&item.to_le_bytes()) % 3);
        }
        assert_eq!(s.shard_of(7, 1), 0);
    }

    #[test]
    fn split_into_one_shard_is_identity() {
        let tree = sample_tree();
        let split = split_tree(&tree, HashScheme::Crc32Item, 1);
        assert_eq!(split.len(), 1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::save_tree_segment(&tree, &mut a).unwrap();
        crate::save_tree_segment(&split[0], &mut b).unwrap();
        assert_eq!(a, b, "1-way split must serialise byte-identically");
    }

    #[test]
    fn split_partitions_every_node_exactly_once() {
        let tree = sample_tree();
        for n in [2u32, 3, 5] {
            let split = split_tree(&tree, HashScheme::Crc32Item, n);
            assert_eq!(split.len(), n as usize);
            let total: usize = split.iter().map(TcTree::num_nodes).sum();
            assert_eq!(total, tree.num_nodes());
            for shard in &split {
                // Every shard tree must survive the segment writer/reader.
                let mut buf = Vec::new();
                crate::save_tree_segment(shard, &mut buf).unwrap();
                let seg = crate::SegmentTcTree::from_bytes(buf).unwrap();
                assert_eq!(seg.num_nodes(), shard.num_nodes());
            }
        }
    }

    #[test]
    fn level1_universe_is_ascending() {
        let items = level1_items(&sample_tree());
        assert!(!items.is_empty());
        assert!(items.windows(2).all(|w| w[0] < w[1]));
    }
}
