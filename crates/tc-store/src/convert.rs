//! Conversions between the text formats (`tc_data::io`,
//! `tc_index::serialize`) and the binary segment format, both ways.
//!
//! The text formats stay the import/export path — human-readable and
//! diff-friendly; segments are the serving path. These helpers compose the
//! two codecs so callers (the `tc convert` subcommand, scripts) never
//! touch both APIs by hand.

use crate::network::{load_network_segment_from_path, save_network_segment_to_path};
use crate::tree::{load_tree_segment_from_path, save_tree_segment_to_path};
use std::path::Path;
use tc_index::TcTree;
use tc_util::LoadError;

/// Text network (`dbnet v1`) → network segment.
pub fn network_text_to_segment(input: &Path, output: &Path) -> Result<(), LoadError> {
    let net = tc_data::load_network_from_path(input)?;
    save_network_segment_to_path(&net, output)?;
    Ok(())
}

/// Network segment → text network (`dbnet v1`).
pub fn network_segment_to_text(input: &Path, output: &Path) -> Result<(), LoadError> {
    let net = load_network_segment_from_path(input)?;
    tc_data::save_network_to_path(&net, output)?;
    Ok(())
}

/// Text TC-Tree (`tctree v1`) → tree segment.
pub fn tree_text_to_segment(input: &Path, output: &Path) -> Result<(), LoadError> {
    let tree = TcTree::load_from_path(input)?;
    save_tree_segment_to_path(&tree, output)?;
    Ok(())
}

/// Tree segment → text TC-Tree (`tctree v1`).
pub fn tree_segment_to_text(input: &Path, output: &Path) -> Result<(), LoadError> {
    let tree = load_tree_segment_from_path(input)?;
    tree.save_to_path(output)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::DatabaseNetworkBuilder;
    use tc_index::TcTreeBuilder;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tc_store_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn text_segment_text_roundtrips_are_byte_identical() {
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("alpha");
        let y = b.intern_item("beta");
        for v in 0..3u32 {
            b.add_transaction(v, &[x, y]);
            b.add_transaction(v, &[x]);
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        let net = b.build().unwrap();
        let tree = TcTreeBuilder {
            threads: 1,
            max_len: usize::MAX,
        }
        .build(&net);

        // Network: text → seg → text.
        let t1 = scratch("n1.dbnet");
        let seg = scratch("n.seg");
        let t2 = scratch("n2.dbnet");
        tc_data::save_network_to_path(&net, &t1).unwrap();
        network_text_to_segment(&t1, &seg).unwrap();
        network_segment_to_text(&seg, &t2).unwrap();
        assert_eq!(std::fs::read(&t1).unwrap(), std::fs::read(&t2).unwrap());

        // Tree: text → seg → text.
        let t1 = scratch("t1.tct");
        let seg = scratch("t.seg");
        let t2 = scratch("t2.tct");
        tree.save_to_path(&t1).unwrap();
        tree_text_to_segment(&t1, &seg).unwrap();
        tree_segment_to_text(&seg, &t2).unwrap();
        assert_eq!(std::fs::read(&t1).unwrap(), std::fs::read(&t2).unwrap());
    }
}
