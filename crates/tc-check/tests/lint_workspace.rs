//! The workspace's own source must pass every `tc-check lint` rule —
//! the same gate CI runs via the binary.

use std::path::Path;

#[test]
fn the_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/tc-check sits two levels below the workspace root");
    let findings = tc_check::lint_workspace(root).expect("lint runs");
    assert!(
        findings.is_empty(),
        "tc-check lint found violations:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
