//! Pins the model checker itself: a deliberately racy fixture must be
//! caught, and its seed must replay the exact failing interleaving.
//!
//! These tests run in the ordinary tier-1 `cargo test` (no
//! `tc_check_model` cfg needed): `tc-model`'s own types are always
//! instrumented inside its crate — the cfg only switches what the
//! `tc_util::sync` facade re-exports.

use tc_model::sync::atomic::{AtomicUsize, Ordering};
use tc_model::sync::Arc;
use tc_model::{replay, thread, try_check_with, Config, FailureKind};

/// The classic lost update: two threads each read-modify-write a shared
/// counter non-atomically. Under the interleaving `load load store
/// store` one increment vanishes.
fn racy_counter() {
    let counter = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                let seen = counter.load(Ordering::SeqCst);
                counter.store(seen + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for handle in handles {
        handle
            .join()
            .expect("model thread panics are reported via check, not join");
    }
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn lost_update_is_caught_and_the_seed_replays_it() {
    let failure = try_check_with(Config::default(), racy_counter)
        .expect_err("the racy fixture must be caught");
    assert!(
        matches!(failure.kind, FailureKind::Panic(_)),
        "expected the lost-update assertion to fire, got {failure}"
    );
    assert!(
        failure.seed.starts_with("tcm1.p2."),
        "unexpected seed format: {:?}",
        failure.seed
    );

    // The seed replays the same interleaving: same failure kind, and the
    // re-encoded trace is byte-identical to the one we were handed.
    let replayed = replay(&failure.seed, racy_counter)
        .expect_err("replaying the failing seed must fail again");
    assert_eq!(replayed.seed, failure.seed, "replay diverged from the seed");
    assert_eq!(replayed.kind, failure.kind);
    assert_eq!(replayed.schedules, 1, "a replay runs exactly one schedule");
}

#[test]
fn fixed_counter_passes_exhaustively() {
    let report = try_check_with(Config::default(), || {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("no panics in the fixed fixture");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    })
    .expect("the atomic fixture has no race");
    assert!(
        report.schedules > 1,
        "exploration was not exhaustive: {} schedule(s)",
        report.schedules
    );
}
