//! Model check: the `tc-store` node cache's byte ledger.
//!
//! Invariants, under every interleaving of two concurrent inserts into
//! a budgeted cache:
//!
//! * the ledger balances — `materialized_total − resident == evictions`;
//! * `bytes_used` is exactly the accounted bytes of the resident
//!   entries (no leaked or double-counted bytes);
//! * `bytes_used` never needs more than the budget plus one in-flight
//!   entry (the documented transient envelope: an insert accounts its
//!   entry before the clock sweep can evict, and the sweep skips slots
//!   that are locked or pinned by readers).
//!
//! Compiles only under `RUSTFLAGS="--cfg tc_check_model"`.
#![cfg(tc_check_model)]

use tc_core::{TrussDecomposition, TrussLevel};
use tc_model::{try_check_with, Config};
use tc_store::cache::NodeCache;
use tc_txdb::{Item, Pattern};
use tc_util::sync::{thread, Arc};

fn truss(item: u32, edges: usize) -> TrussDecomposition {
    TrussDecomposition {
        pattern: Pattern::singleton(Item(item)),
        levels: vec![TrussLevel {
            alpha: 1.0,
            edges: (0..edges as u32).map(|i| (i, i + 1)).collect(),
        }],
    }
}

#[test]
fn ledger_balances_and_stays_inside_the_transient_envelope() {
    // Both entries are the same size, and the budget admits exactly one.
    let entry = NodeCache::accounted_bytes(&truss(0, 4));
    let report = try_check_with(Config::default(), move || {
        let cache = Arc::new(NodeCache::new(2, Some(entry)));
        let writers: Vec<_> = (0..2u32)
            .map(|id| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    // The returned pin drops before the thread exits, so
                    // the final sweep below is not blocked by this reader.
                    let pinned = cache.insert(id, truss(id, 4));
                    assert_eq!(pinned.pattern, Pattern::singleton(Item(id)));
                })
            })
            .collect();
        for handle in writers {
            handle.join().expect("cache writer panicked");
        }
        let stats = cache.stats();
        assert_eq!(
            stats.materialized_total - stats.resident as u64,
            stats.evictions,
            "ledger out of balance: {stats:?}"
        );
        assert_eq!(
            stats.bytes_used,
            stats.resident as u64 * entry,
            "bytes_used does not match resident entries: {stats:?}"
        );
        assert!(
            stats.bytes_used <= entry + entry,
            "budget envelope exceeded (budget {} + one entry {}): {stats:?}",
            entry,
            entry
        );
    })
    .unwrap_or_else(|failure| panic!("cache model check failed: {failure}"));
    assert!(report.schedules > 1);
}
