//! Model check: the `tc-serve` hot-reload tree slot.
//!
//! Invariant: a reader racing a SIGHUP reload observes the
//! fully-validated old tree or the fully-validated new tree — never a
//! mix — and once the store completes every subsequent load returns the
//! new tree.
//!
//! The reader deliberately sticks to cheap directory reads
//! (`num_nodes`, `alpha_upper_bound`): materialising nodes would drag
//! the cache's own scheduling points into this check (they have their
//! own model test) and explode the schedule space.
//!
//! Compiles only under `RUSTFLAGS="--cfg tc_check_model"`.
#![cfg(tc_check_model)]

use tc_core::DatabaseNetworkBuilder;
use tc_index::TcTreeBuilder;
use tc_model::{try_check_with, Config};
use tc_serve::TreeSlot;
use tc_store::SegmentTcTree;
use tc_util::sync::thread;

/// A segment whose tree has one theme-community node per item, so trees
/// built with different `items` counts have different `num_nodes()`.
fn segment_bytes_with_items(items: u32) -> Vec<u8> {
    let mut b = DatabaseNetworkBuilder::new();
    let interned: Vec<_> = (0..items)
        .map(|i| b.intern_item(&format!("item{i}")))
        .collect();
    for v in 0..4u32 {
        for item in &interned {
            for _ in 0..4 {
                b.add_transaction(v, &[*item]);
            }
        }
    }
    for v in 0..4u32 {
        b.add_edge(v, (v + 1) % 4);
    }
    b.add_edge(0, 2);
    let tree = TcTreeBuilder::default().build(&b.build().unwrap());
    let mut bytes = Vec::new();
    tc_store::save_tree_segment(&tree, &mut bytes).unwrap();
    bytes
}

#[test]
fn readers_observe_old_or_new_never_a_mix() {
    // Segment construction happens outside the checked closure; only the
    // cheap per-schedule decode runs inside it.
    let old_bytes = segment_bytes_with_items(1);
    let new_bytes = segment_bytes_with_items(2);
    let report = try_check_with(Config::default(), move || {
        let old = SegmentTcTree::from_bytes(old_bytes.clone()).expect("old segment decodes");
        let new = SegmentTcTree::from_bytes(new_bytes.clone()).expect("new segment decodes");
        let old_shape = (old.num_nodes(), old.alpha_upper_bound());
        let new_shape = (new.num_nodes(), new.alpha_upper_bound());
        assert_ne!(
            old_shape, new_shape,
            "fixture trees must be distinguishable"
        );
        let slot = TreeSlot::new(old);
        thread::scope(|s| {
            s.spawn(|| slot.store_tree(new));
            s.spawn(|| {
                let tree = slot.load();
                let shape = (tree.num_nodes(), tree.alpha_upper_bound());
                assert!(
                    shape == old_shape || shape == new_shape,
                    "reader saw a mixed tree: {shape:?} (old {old_shape:?}, new {new_shape:?})"
                );
            });
        });
        let settled = slot.load();
        assert_eq!(
            (settled.num_nodes(), settled.alpha_upper_bound()),
            new_shape,
            "store completed but a later load still returned the old tree"
        );
    })
    .unwrap_or_else(|failure| panic!("reload model check failed: {failure}"));
    assert!(report.schedules > 1);
}
