//! Model check: the WAL group-commit leader election.
//!
//! Invariant: with `Durability::Always`, `append` never returns before
//! an fsync covering the record has completed — under every
//! interleaving of two appenders racing to become the sync leader or
//! ride a follower's covering flush.
//!
//! The check appends from two threads against a `FaultWalStorage` and,
//! the moment each append is acknowledged, re-scans the storage's
//! *durable image* (what would survive a crash right now) for the acked
//! record.
//!
//! Compiles only under `RUSTFLAGS="--cfg tc_check_model"`.
#![cfg(tc_check_model)]

use tc_model::{try_check_with, Config};
use tc_store::wal::{scan_wal, Durability, FaultWalStorage, Wal, WalRecord};
use tc_util::sync::thread;

#[test]
fn append_never_acks_before_a_covering_fsync() {
    let report = try_check_with(Config::default(), || {
        let storage = FaultWalStorage::new();
        let probe = storage.clone();
        let (wal, _scan) =
            Wal::open(Box::new(storage), Durability::Always).expect("fresh wal opens");
        thread::scope(|s| {
            for vertex in 0..2u32 {
                let wal = &wal;
                let probe = probe.clone();
                s.spawn(move || {
                    let seqno = wal
                        .append(&WalRecord::AddDatabase { vertex })
                        .expect("append on healthy storage");
                    // Ack in hand: a crash *now* must still replay us.
                    let durable =
                        scan_wal(&probe.durable_image()).expect("durable image is well-formed");
                    assert!(
                        durable.records.iter().any(|&(s, _)| s == seqno),
                        "append acked seqno {seqno} before a covering fsync; \
                         durable seqnos: {:?}",
                        durable.records.iter().map(|&(s, _)| s).collect::<Vec<_>>()
                    );
                });
            }
        });
        let durable = scan_wal(&probe.durable_image()).expect("durable image is well-formed");
        assert_eq!(durable.records.len(), 2, "both records durable at the end");
        let max_seqno = durable.records.iter().map(|&(s, _)| s).max().unwrap();
        assert_eq!(
            wal.durable_seqno(),
            max_seqno,
            "writer's durable watermark lags the storage"
        );
    })
    .unwrap_or_else(|failure| panic!("wal model check failed: {failure}"));
    assert!(report.schedules > 1);
}
