//! Model check: the `tc_util::steal` steal-half work distributor.
//!
//! Invariant: every submitted task — statically seeded or dynamically
//! spawned mid-run — executes exactly once, under every interleaving of
//! the owner deques, the stealers, and the park/unpark protocol.
//!
//! Compiles only under `RUSTFLAGS="--cfg tc_check_model"`, which routes
//! the executor's `crate::sync` facade onto the `tc-model` instrumented
//! primitives.
#![cfg(tc_check_model)]

use tc_model::{try_check_with, Config};
use tc_util::steal::Executor;

#[test]
fn static_seeds_run_exactly_once() {
    let report = try_check_with(Config::default(), || {
        let states = Executor::new(2).run(
            vec![1u64, 2, 3],
            |_worker| Vec::new(),
            |ran: &mut Vec<u64>, seed, _worker| ran.push(seed),
        );
        let mut all: Vec<u64> = states.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3], "a task was lost or ran twice");
    })
    .unwrap_or_else(|failure| panic!("steal model check failed: {failure}"));
    assert!(
        report.schedules > 1,
        "expected multiple interleavings, explored {}",
        report.schedules
    );
}

#[test]
fn dynamically_spawned_tasks_run_exactly_once() {
    let report = try_check_with(Config::default(), || {
        let states = Executor::new(2).run(
            vec![1u64],
            |_worker| Vec::new(),
            |ran: &mut Vec<u64>, seed, worker| {
                // Tasks 1 and 2 each spawn a successor, so the run also
                // exercises steal-vs-spawn interleavings.
                if seed < 3 {
                    worker.spawn(seed + 1);
                }
                ran.push(seed);
            },
        );
        let mut all: Vec<u64> = states.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3], "a spawned task was lost or ran twice");
    })
    .unwrap_or_else(|failure| panic!("steal spawn model check failed: {failure}"));
    assert!(report.schedules > 1);
}
