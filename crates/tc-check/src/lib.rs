//! Workspace invariant checking for the theme-communities repository.
//!
//! Two halves, both wired into CI:
//!
//! * **`tc-check lint`** (this library plus the `tc-check` binary) — a
//!   std-only source linter enforcing the workspace's cross-cutting
//!   source invariants. See [`lint`] for the rule set.
//! * **Model tests** (this crate's `tests/model_*.rs`) — exhaustive
//!   bounded-interleaving checks of the concurrency core on the vendored
//!   `tc-model` deterministic scheduler. They compile only under
//!   `RUSTFLAGS="--cfg tc_check_model"`, where the `tc_util::sync`
//!   facade swaps std primitives for instrumented lookalikes:
//!
//!   ```text
//!   RUSTFLAGS="--cfg tc_check_model" cargo test -p tc-check
//!   ```
//!
//!   Checked subsystems and invariants (preemption bound 2, exhaustive):
//!   - `tc_util::steal` — the steal-half protocol never loses a task and
//!     never runs one twice, including dynamically spawned tasks;
//!   - `tc-store::cache` — the insert/evict ledger balances
//!     (`materialized_total − resident == evictions`, `bytes_used` is
//!     exactly the resident entries' accounted bytes) and stays within
//!     the budget-plus-one-entry transient envelope;
//!   - `tc-store::wal::writer` — group commit never acknowledges an
//!     append before an fsync covering its record has completed;
//!   - `tc-serve::reload` — readers observe the fully-validated old or
//!     new tree, never a mix of the two.
//!
//! A failing model test prints a replay seed (`tcm1.p2.…`); feed it to
//! `tc_model::replay` to re-run that exact interleaving. The
//! `tests/replay.rs` suite pins this machinery with a deliberately racy
//! fixture. `docs/CONCURRENCY.md` has the full story.

pub mod lint;

pub use lint::{lint_workspace, Finding};
