//! The workspace invariant linter behind `tc-check lint`.
//!
//! Four rules, each encoding an invariant the workspace relies on but
//! the compiler cannot enforce:
//!
//! * **`panic-free-request-paths`** — no `.unwrap()`, `.expect(…)`,
//!   `panic!`, `unreachable!` or `todo!` in `tc-serve`/`tc-router`
//!   non-test source: a serving daemon answers malformed input and
//!   degraded dependencies with error responses, never by dying. A site
//!   that genuinely cannot fail at runtime may carry a waiver comment —
//!   `// tc-check: allow(panic): <justification>` on the same or the
//!   preceding line — and the justification must be non-empty.
//! * **`safety-comments`** — every `unsafe` block and `unsafe impl` in
//!   the workspace (vendor included) is annotated with a `// SAFETY:`
//!   comment directly above it explaining why the obligations hold.
//! * **`facade-imports`** — the four model-checked subsystems
//!   (`tc_util::steal`, `tc-store::cache`, `tc-store::wal::writer`,
//!   `tc-serve::reload`) take their synchronization primitives from the
//!   `tc_util::sync` facade only; a stray `std::sync::Mutex` or
//!   `parking_lot` import would silently escape the model checker.
//! * **`metric-name-parity`** — every Prometheus metric name in the
//!   serve/router expositions appears in `docs/OPERATIONS.md` and vice
//!   versa, so dashboards built from the docs never reference a metric
//!   that does not exist.
//!
//! The scanner is line-oriented with a small state machine that strips
//! comments, string literals and `#[cfg(test)]` modules before matching,
//! so doc examples and unit tests do not trip the rules.

use std::fmt;
use std::path::{Path, PathBuf};

/// Marker that waives the panic rule for one line, e.g.
/// `// tc-check: allow(panic): startup-time spawn, nothing is serving yet`.
const PANIC_WAIVER: &str = "tc-check: allow(panic):";

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One source line split into executable code and comment text, with
/// string-literal contents blanked out of the code half.
#[derive(Debug, Default, Clone)]
struct Line {
    code: String,
    comment: String,
}

/// Splits Rust source into per-line code/comment halves.
///
/// String and char literals are replaced by a single `"` / space in the
/// code half (so needles never match inside them), comments (line and
/// block, doc included) land in the comment half, and raw strings with
/// up to any number of `#`s are handled. The split is heuristic — it
/// does not parse Rust — but it is exact for the constructs the rules
/// match on.
fn split_source(src: &str) -> Vec<Line> {
    #[derive(PartialEq, Clone, Copy)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let b = src.as_bytes();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut code: Vec<u8> = Vec::new();
    let mut comment: Vec<u8> = Vec::new();
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            let line = lines.last_mut().expect("lines is never empty");
            line.code = String::from_utf8_lossy(&code).into_owned();
            line.comment = String::from_utf8_lossy(&comment).into_owned();
            code.clear();
            comment.clear();
            lines.push(Line::default());
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::LineComment;
                    i += 2;
                    continue;
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == b'"' {
                    code.push(b'"');
                    st = St::Str;
                    i += 1;
                    continue;
                }
                // Raw (and raw-byte) strings: r"…", r#"…"#, br#"…"#.
                if c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r')) {
                    let mut j = i + if c == b'b' { 2 } else { 1 };
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') {
                        code.push(b'"');
                        st = St::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                // Char literal vs lifetime: 'x' / '\n' are literals,
                // 'static / 'a> are lifetimes.
                if c == b'\'' {
                    if b.get(i + 1) == Some(&b'\\') {
                        let mut j = i + 2;
                        while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
                            j += 1;
                        }
                        code.push(b' ');
                        i = (j + 1).min(b.len());
                        continue;
                    }
                    // Width of the next UTF-8 scalar (1–4 bytes).
                    let w = match b.get(i + 1) {
                        Some(&n) if n < 0x80 => 1,
                        Some(&n) if n >= 0xF0 => 4,
                        Some(&n) if n >= 0xE0 => 3,
                        Some(&n) if n >= 0xC0 => 2,
                        _ => 1,
                    };
                    if b.get(i + 1 + w) == Some(&b'\'') {
                        code.push(b' ');
                        i += 2 + w;
                        continue;
                    }
                    // A lifetime; keep the tick so code stays aligned.
                    code.push(c);
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            St::LineComment => {
                comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == b'\\' {
                    i += 2;
                } else if c == b'"' {
                    code.push(b'"');
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && b.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        code.push(b'"');
                        st = St::Code;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    let line = lines.last_mut().expect("lines is never empty");
    line.code = String::from_utf8_lossy(&code).into_owned();
    line.comment = String::from_utf8_lossy(&comment).into_owned();
    lines
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute line
/// included) so rules can skip test code.
fn test_lines(lines: &[Line]) -> Vec<bool> {
    let mut skip = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut started = false;
        let mut j = i;
        while j < lines.len() {
            skip[j] = true;
            for ch in lines[j].code.bytes() {
                match ch {
                    b'{' => {
                        depth += 1;
                        started = true;
                    }
                    b'}' => depth -= 1,
                    // `#[cfg(test)] mod t;` / `use …;` ends before any
                    // brace opens.
                    b';' if !started && j > i => depth = 0,
                    _ => {}
                }
            }
            if started && depth <= 0 {
                break;
            }
            if !started && j > i && lines[j].code.contains(';') {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    skip
}

/// Recursively collects `.rs` files under `dir` (skipping `target/`).
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
        .replace('\\', "/")
}

/// Rule 1: no panicking calls in serve/router non-test source.
fn panic_rule(root: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    const NEEDLES: [&str; 5] = [
        ".unwrap()",
        ".expect(",
        "panic!(",
        "unreachable!(",
        "todo!(",
    ];
    let mut files = Vec::new();
    rs_files(&root.join("crates/tc-serve/src"), &mut files)?;
    rs_files(&root.join("crates/tc-router/src"), &mut files)?;
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let lines = split_source(&src);
        let in_test = test_lines(&lines);
        for (idx, line) in lines.iter().enumerate() {
            if in_test[idx] {
                continue;
            }
            let Some(needle) = NEEDLES.iter().find(|n| line.code.contains(**n)) else {
                continue;
            };
            let waived = [Some(line), idx.checked_sub(1).and_then(|p| lines.get(p))]
                .into_iter()
                .flatten()
                .any(|l| {
                    l.comment
                        .split(PANIC_WAIVER)
                        .nth(1)
                        .is_some_and(|reason| !reason.trim().is_empty())
                });
            if !waived {
                findings.push(Finding {
                    file: rel(root, &path),
                    line: idx + 1,
                    rule: "panic-free-request-paths",
                    message: format!(
                        "`{}` in a serving crate; return an error response instead, \
                         or waive with `// {} <why this cannot fire>`",
                        needle.trim_end_matches('('),
                        PANIC_WAIVER
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Rule 2: every `unsafe` block / `unsafe impl` carries a SAFETY comment.
fn safety_rule(root: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    let mut files = Vec::new();
    for dir in ["crates", "vendor"] {
        rs_files(&root.join(dir), &mut files)?;
    }
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let lines = split_source(&src);
        for (idx, line) in lines.iter().enumerate() {
            let code = &line.code;
            let Some(pos) = find_word(code, "unsafe") else {
                continue;
            };
            // `unsafe fn` declares an obligation for callers; the rule
            // targets discharges of obligations: blocks and impls.
            let after = code[pos + "unsafe".len()..].trim_start();
            if after.starts_with("fn ") {
                continue;
            }
            let mut covered = line.comment.contains("SAFETY:");
            let mut j = idx;
            while !covered && j > 0 {
                j -= 1;
                let above = &lines[j];
                let is_annotation =
                    above.code.trim().is_empty() || above.code.trim_start().starts_with("#[");
                if above.comment.contains("SAFETY:") {
                    covered = true;
                } else if !is_annotation {
                    break;
                }
            }
            if !covered {
                findings.push(Finding {
                    file: rel(root, &path),
                    line: idx + 1,
                    rule: "safety-comments",
                    message: "`unsafe` without a `// SAFETY:` comment directly above \
                              explaining why the obligations hold"
                        .to_string(),
                });
            }
        }
    }
    Ok(())
}

/// Finds `word` in `code` at an identifier boundary.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(off) = code[from..].find(word) {
        let pos = from + off;
        let before_ok = pos == 0
            || !code.as_bytes()[pos - 1].is_ascii_alphanumeric()
                && code.as_bytes()[pos - 1] != b'_';
        let end = pos + word.len();
        let after_ok = end >= code.len()
            || !code.as_bytes()[end].is_ascii_alphanumeric() && code.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + word.len();
    }
    None
}

/// The four modules whose synchronization must flow through the facade.
const FACADE_MODULES: [&str; 4] = [
    "crates/tc-util/src/steal.rs",
    "crates/tc-store/src/cache.rs",
    "crates/tc-store/src/wal/writer.rs",
    "crates/tc-serve/src/reload.rs",
];

/// Rule 3: model-checked modules import sync primitives only via the
/// `tc_util::sync` facade.
fn facade_rule(root: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    const NEEDLES: [&str; 2] = ["std::sync::", "parking_lot"];
    for module in FACADE_MODULES {
        let path = root.join(module);
        let src = std::fs::read_to_string(&path)?;
        let lines = split_source(&src);
        let in_test = test_lines(&lines);
        for (idx, line) in lines.iter().enumerate() {
            if in_test[idx] {
                continue;
            }
            for needle in NEEDLES {
                if line.code.contains(needle) {
                    findings.push(Finding {
                        file: rel(root, &path),
                        line: idx + 1,
                        rule: "facade-imports",
                        message: format!(
                            "`{needle}` in a model-checked module; use `tc_util::sync` \
                             so `--cfg tc_check_model` instruments it"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Collects `<prefix>[a-z0-9_]*` metric names from `text`, normalising
/// away the Prometheus histogram sub-series suffixes.
fn metric_names(text: &str, prefix: &str) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(off) = text[from..].find(prefix) {
        let start = from + off;
        // Reject mid-identifier hits like `x_tcserve_foo`.
        let boundary =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let mut end = start + prefix.len();
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        from = end;
        if !boundary || end == start + prefix.len() {
            continue; // bare prefix (e.g. in prose) is not a metric name
        }
        let mut name = &text[start..end];
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if base.ends_with("_seconds") {
                    name = base;
                }
            }
        }
        names.insert(name.to_string());
    }
    names
}

/// Rule 4: exposition metric names and `docs/OPERATIONS.md` agree.
fn metrics_rule(root: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    let docs_path = root.join("docs/OPERATIONS.md");
    let docs = std::fs::read_to_string(&docs_path)?;
    for (code_file, prefix) in [
        ("crates/tc-serve/src/metrics.rs", "tcserve_"),
        ("crates/tc-router/src/metrics.rs", "tcrouter_"),
    ] {
        let code_path = root.join(code_file);
        let code = std::fs::read_to_string(&code_path)?;
        let in_code = metric_names(&code, prefix);
        let in_docs = metric_names(&docs, prefix);
        for name in in_code.difference(&in_docs) {
            findings.push(Finding {
                file: rel(root, &code_path),
                line: 1,
                rule: "metric-name-parity",
                message: format!(
                    "metric `{name}` is exposed but undocumented in docs/OPERATIONS.md"
                ),
            });
        }
        for name in in_docs.difference(&in_code) {
            findings.push(Finding {
                file: rel(root, &docs_path),
                line: 1,
                rule: "metric-name-parity",
                message: format!("metric `{name}` is documented but not exposed by {code_file}"),
            });
        }
    }
    Ok(())
}

/// Runs every rule over the workspace at `root` (the directory holding
/// `Cargo.toml`, `crates/` and `docs/`). Returns the findings sorted by
/// file and line; an empty vector means the workspace is clean.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    if !root.join("crates").is_dir() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("{} does not look like the workspace root", root.display()),
        ));
    }
    let mut findings = Vec::new();
    panic_rule(root, &mut findings)?;
    safety_rule(root, &mut findings)?;
    facade_rule(root, &mut findings)?;
    metrics_rule(root, &mut findings)?;
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_strips_comments_and_strings() {
        let src = "let x = \"a.unwrap()\"; // .expect( in comment\n\
                   /* panic!( in block */ call();\n\
                   let c = '\"'; let s = r#\"raw .unwrap()\"#;\n";
        let lines = split_source(src);
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(lines[0].comment.contains(".expect("));
        assert!(lines[1].code.contains("call()"));
        assert!(!lines[1].code.contains("panic!"));
        assert!(lines[2].code.contains("let s"));
        assert!(!lines[2].code.contains(".unwrap()"));
    }

    #[test]
    fn splitter_keeps_lifetimes_and_char_literals_apart() {
        let lines = split_source("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(lines[0].code.contains("fn f<'a>"));
        assert!(!lines[0].code.contains("'x'"));
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let lines = split_source(src);
        let skip = test_lines(&lines);
        assert_eq!(skip, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn word_boundaries_matter() {
        assert!(find_word("unsafe {", "unsafe").is_some());
        assert!(find_word("not_unsafe()", "unsafe").is_none());
        assert!(find_word("unsafely()", "unsafe").is_none());
    }

    #[test]
    fn metric_names_normalise_histogram_suffixes() {
        let names = metric_names(
            "tcserve_request_latency_seconds_bucket tcserve_request_latency_seconds_count \
             tcserve_requests_total the tcserve_ prefix alone",
            "tcserve_",
        );
        let expect: Vec<&str> = vec!["tcserve_request_latency_seconds", "tcserve_requests_total"];
        assert_eq!(names.iter().map(String::as_str).collect::<Vec<_>>(), expect);
    }

    /// Builds a throwaway workspace with one serve file and matching
    /// docs, runs the linter, and returns the findings.
    fn lint_fixture(serve_src: &str) -> Vec<Finding> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let root = std::env::temp_dir().join(format!(
            "tc_check_lint_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let serve = root.join("crates/tc-serve/src");
        std::fs::create_dir_all(&serve).unwrap();
        std::fs::create_dir_all(root.join("crates/tc-router/src")).unwrap();
        std::fs::create_dir_all(root.join("crates/tc-util/src")).unwrap();
        std::fs::create_dir_all(root.join("crates/tc-store/src/wal")).unwrap();
        std::fs::create_dir_all(root.join("docs")).unwrap();
        std::fs::write(serve.join("server.rs"), serve_src).unwrap();
        std::fs::write(serve.join("metrics.rs"), "\"tcserve_requests_total\"").unwrap();
        std::fs::write(
            root.join("crates/tc-router/src/metrics.rs"),
            "\"tcrouter_requests_total\"",
        )
        .unwrap();
        std::fs::write(
            root.join("docs/OPERATIONS.md"),
            "tcserve_requests_total tcrouter_requests_total",
        )
        .unwrap();
        for module in FACADE_MODULES {
            let path = root.join(module);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            if !path.exists() {
                std::fs::write(&path, "use tc_util::sync::Mutex;\n").unwrap();
            }
        }
        let findings = lint_workspace(&root).unwrap();
        std::fs::remove_dir_all(&root).ok();
        findings
    }

    #[test]
    fn unwrap_in_serve_source_is_flagged_and_waiver_honoured() {
        let flagged = lint_fixture("fn f() { x.unwrap(); }\n");
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert_eq!(flagged[0].rule, "panic-free-request-paths");
        assert_eq!(flagged[0].line, 1);

        let waived = lint_fixture(
            "// tc-check: allow(panic): startup only, nothing serves yet\nfn f() { x.unwrap(); }\n",
        );
        assert!(waived.is_empty(), "{waived:?}");

        // A waiver with an empty justification does not count.
        let empty = lint_fixture("fn f() { x.unwrap(); } // tc-check: allow(panic):   \n");
        assert_eq!(empty.len(), 1, "{empty:?}");

        let in_test = lint_fixture("#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n");
        assert!(in_test.is_empty(), "{in_test:?}");
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let flagged = lint_fixture("fn f() { unsafe { g(); } }\n");
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert_eq!(flagged[0].rule, "safety-comments");

        let ok =
            lint_fixture("// SAFETY: g has no preconditions here.\nfn f() { unsafe { g(); } }\n");
        assert!(ok.is_empty(), "{ok:?}");

        // `unsafe fn` declarations state obligations, they don't
        // discharge them — not flagged.
        let decl = lint_fixture("unsafe fn g() {}\n");
        assert!(decl.is_empty(), "{decl:?}");
    }

    #[test]
    fn std_sync_in_facade_module_is_flagged() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let root = std::env::temp_dir().join(format!(
            "tc_check_facade_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        for module in FACADE_MODULES {
            let path = root.join(module);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, "use tc_util::sync::Mutex;\n").unwrap();
        }
        std::fs::create_dir_all(root.join("crates/tc-router/src")).unwrap();
        std::fs::write(
            root.join("crates/tc-serve/src/metrics.rs"),
            "\"tcserve_requests_total\"",
        )
        .unwrap();
        std::fs::write(
            root.join("crates/tc-router/src/metrics.rs"),
            "\"tcrouter_requests_total\"",
        )
        .unwrap();
        std::fs::create_dir_all(root.join("docs")).unwrap();
        std::fs::write(
            root.join("docs/OPERATIONS.md"),
            "tcserve_requests_total tcrouter_requests_total",
        )
        .unwrap();
        std::fs::write(
            root.join("crates/tc-store/src/cache.rs"),
            "use std::sync::Mutex; // escapes the model\n",
        )
        .unwrap();
        let findings = lint_workspace(&root).unwrap();
        std::fs::remove_dir_all(&root).ok();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "facade-imports");
        assert!(findings[0].file.ends_with("cache.rs"));
    }

    #[test]
    fn metric_divergence_is_flagged_both_ways() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let root = std::env::temp_dir().join(format!(
            "tc_check_metrics_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        for module in FACADE_MODULES {
            let path = root.join(module);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, "").unwrap();
        }
        std::fs::create_dir_all(root.join("crates/tc-router/src")).unwrap();
        std::fs::create_dir_all(root.join("docs")).unwrap();
        std::fs::write(
            root.join("crates/tc-serve/src/metrics.rs"),
            "\"tcserve_only_in_code_total\"",
        )
        .unwrap();
        std::fs::write(
            root.join("crates/tc-router/src/metrics.rs"),
            "\"tcrouter_requests_total\"",
        )
        .unwrap();
        std::fs::write(
            root.join("docs/OPERATIONS.md"),
            "tcserve_only_in_docs_total tcrouter_requests_total",
        )
        .unwrap();
        let findings = lint_workspace(&root).unwrap();
        std::fs::remove_dir_all(&root).ok();
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["metric-name-parity"; 2], "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("undocumented")));
        assert!(findings.iter().any(|f| f.message.contains("not exposed")));
    }
}
