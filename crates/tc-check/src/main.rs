//! `tc-check` — the workspace invariant linter CLI.
//!
//! ```text
//! tc-check lint [--root PATH]
//! ```
//!
//! Runs every rule in [`tc_check::lint`] over the workspace (defaulting
//! to the current directory) and prints one line per finding. Exits 0
//! when clean, 1 when findings exist, 2 on usage or I/O errors.
//!
//! The model tests are not driven by this binary; run them with
//! `RUSTFLAGS="--cfg tc_check_model" cargo test -p tc-check`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: tc-check lint [--root PATH]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("lint") {
        return usage();
    }
    let mut root = PathBuf::from(".");
    match (args.next(), args.next(), args.next()) {
        (None, _, _) => {}
        (Some(flag), Some(path), None) if flag == "--root" => root = PathBuf::from(path),
        _ => return usage(),
    }
    match tc_check::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("tc-check lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            eprintln!("tc-check lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("tc-check lint: {err}");
            ExitCode::from(2)
        }
    }
}
