//! Floating-point helpers for cohesion arithmetic.
//!
//! Edge cohesions are sums of `min(f_i, f_j, f_k)` terms, updated
//! incrementally as triangles disappear during truss peeling (Algorithm 1,
//! lines 12-13). Because the same term is added once and subtracted at most
//! once, cancellation is exact in IEEE-754 only when the intermediate sums do
//! not reorder — which `f64` addition does not guarantee across different
//! accumulation orders. We therefore compare cohesions against thresholds
//! with a small absolute epsilon, [`COHESION_EPS`], chosen far below any
//! meaningful frequency resolution (frequencies are ratios of transaction
//! counts, so adjacent distinct values differ by at least `1 / h²` for
//! realistic `h`).

/// Absolute tolerance for cohesion comparisons.
pub const COHESION_EPS: f64 = 1e-9;

/// `a ≈ b` under [`COHESION_EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= COHESION_EPS
}

/// `a ≤ b` with tolerance: true when `a` is below or within eps of `b`.
///
/// This is the predicate MPTD uses for "unqualified edge" (`eco ≤ α`).
#[inline]
pub fn leq_eps(a: f64, b: f64) -> bool {
    a <= b + COHESION_EPS
}

/// `a > b` with tolerance (the strict complement of [`leq_eps`]).
#[inline]
pub fn gt_eps(a: f64, b: f64) -> bool {
    a > b + COHESION_EPS
}

/// A total-order wrapper over `f64` for use as map keys and in sorts.
///
/// Cohesions and frequencies are always finite and non-negative in this
/// workspace; the wrapper panics on NaN at construction so ordering is total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wraps a finite value.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "OrdF64 cannot hold NaN");
        OrdF64(v)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for OrdF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        OrdF64::new(v)
    }
}

impl std::fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_eps() {
        assert!(approx_eq(0.3, 0.1 + 0.2));
        assert!(!approx_eq(0.3, 0.300001));
    }

    #[test]
    fn leq_and_gt_are_complements() {
        for (a, b) in [(0.1, 0.2), (0.2, 0.1), (0.15, 0.15), (0.0, 0.0)] {
            assert_ne!(leq_eps(a, b), gt_eps(a, b), "a={a} b={b}");
        }
    }

    #[test]
    fn leq_eps_tolerates_fp_noise() {
        // 0.1 + 0.2 > 0.3 in f64, but must count as "≤ 0.3" for peeling.
        assert!(leq_eps(0.1 + 0.2, 0.3));
        assert!(!leq_eps(0.3001, 0.3));
    }

    #[test]
    fn ordf64_sorts_totally() {
        let mut v = [OrdF64::new(0.3), OrdF64::new(0.1), OrdF64::new(0.2)];
        v.sort();
        assert_eq!(
            v.iter().map(|x| x.get()).collect::<Vec<_>>(),
            vec![0.1, 0.2, 0.3]
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ordf64_rejects_nan() {
        OrdF64::new(f64::NAN);
    }

    #[test]
    fn ordf64_usable_as_map_key() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(OrdF64::new(0.2), "b");
        m.insert(OrdF64::new(0.1), "a");
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec!["a", "b"]);
    }
}
