//! A fixed-capacity bitset with fast popcount-based set algebra.
//!
//! The transaction databases of the paper are stored *vertically*: for each
//! item we keep the set of transaction ids (a *tidset*) containing it, as a
//! [`BitSet`]. The frequency of a pattern `p = {s_1, …, s_k}` in a database
//! with `h` transactions is then
//!
//! ```text
//! f(p) = |tidset(s_1) ∩ … ∩ tidset(s_k)| / h
//! ```
//!
//! which reduces to word-wise `AND` + `popcount`, the classic Eclat
//! representation.

use crate::heapsize::HeapSize;

const BITS: usize = 64;

/// A fixed-universe set of `usize` ids backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of valid bits; bits at positions `>= len` are always zero.
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        BitSet {
            words: vec![0; universe.div_ceil(BITS)],
            len: universe,
        }
    }

    /// Creates a bitset with every bit in `0..universe` set.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::new(universe);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// Builds a bitset from an iterator of member ids.
    ///
    /// # Panics
    /// Panics if any id is `>= universe`.
    pub fn from_iter(universe: usize, ids: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(universe);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// The size of the universe (maximum id + 1 capacity).
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Zeroes any bits beyond `len` in the last word (invariant restorer).
    fn clear_tail(&mut self) {
        let tail = self.len % BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Inserts `id`; returns whether it was newly inserted.
    ///
    /// # Panics
    /// Panics if `id >= universe()`.
    #[inline]
    pub fn insert(&mut self, id: usize) -> bool {
        assert!(id < self.len, "bit {id} out of universe {}", self.len);
        let w = &mut self.words[id / BITS];
        let mask = 1u64 << (id % BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `id`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, id: usize) -> bool {
        if id >= self.len {
            return false;
        }
        let w = &mut self.words[id / BITS];
        let mask = 1u64 << (id % BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        id < self.len && self.words[id / BITS] & (1u64 << (id % BITS)) != 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// `|self ∩ other|` without materialising the intersection.
    ///
    /// This is the hot operation of frequency computation.
    #[inline]
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place intersection: `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        // If `other` is shorter, the excess words of `self` become empty.
        if other.words.len() < self.words.len() {
            for w in &mut self.words[other.words.len()..] {
                *w = 0;
            }
        }
    }

    /// In-place union: `self |= other`.
    ///
    /// # Panics
    /// Panics if `other` has members outside `self`'s universe.
    pub fn union_with(&mut self, other: &BitSet) {
        assert!(
            other.len <= self.len || other.words[self.words.len()..].iter().all(|&w| w == 0),
            "union would exceed universe"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: `self -= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns a new bitset `self ∩ other`.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// `true` if `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// `true` if the two sets share no member.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over member ids in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, if any.
    pub fn min(&self) -> Option<usize> {
        self.iter().next()
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl HeapSize for BitSet {
    fn heap_size(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// Ascending iterator over set bits.
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * BITS + bit)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn contains_out_of_universe_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn full_respects_tail() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn full_with_word_aligned_universe() {
        let s = BitSet::full(128);
        assert_eq!(s.count(), 128);
    }

    #[test]
    fn intersection_count_matches_materialised() {
        let a = BitSet::from_iter(200, [1, 5, 64, 65, 130, 199]);
        let b = BitSet::from_iter(200, [5, 64, 131, 199]);
        assert_eq!(a.intersection_count(&b), 3);
        assert_eq!(a.intersection(&b).count(), 3);
        let inter: Vec<usize> = a.intersection(&b).iter().collect();
        assert_eq!(inter, vec![5, 64, 199]);
    }

    #[test]
    fn union_and_difference() {
        let mut a = BitSet::from_iter(100, [1, 2, 3]);
        let b = BitSet::from_iter(100, [3, 4]);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = BitSet::from_iter(100, [1, 2]);
        let b = BitSet::from_iter(100, [1, 2, 3]);
        let c = BitSet::from_iter(100, [50, 99]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let ids = vec![0, 63, 64, 127, 128, 191];
        let s = BitSet::from_iter(192, ids.iter().copied());
        assert_eq!(s.iter().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn empty_iter() {
        let s = BitSet::new(100);
        assert_eq!(s.iter().count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
    }

    #[test]
    fn min_returns_smallest() {
        let s = BitSet::from_iter(100, [77, 13, 42]);
        assert_eq!(s.min(), Some(13));
    }

    #[test]
    fn zero_universe() {
        let s = BitSet::new(0);
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
    }

    #[test]
    fn intersect_with_mixed_universes() {
        let mut a = BitSet::from_iter(200, [1, 150]);
        let b = BitSet::from_iter(64, [1]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::from_iter(100, [1, 2, 3]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn heap_size_nonzero() {
        let s = BitSet::new(1000);
        assert!(s.heap_size() >= 1000 / 8);
    }
}
