//! CRC-32 (the IEEE 802.3 / zlib polynomial, reflected form) — the
//! integrity checksum of the on-disk segment format in `tc-store`.
//!
//! Table-driven, one byte per step; the table is built at compile time so
//! the crate keeps its zero-dependency, zero-runtime-setup character.

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Incremental CRC-32 hasher, for checksumming discontiguous regions
/// (e.g. a page minus its own checksum field) without copying.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s = TABLE[((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// Finalizes and returns the checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, data.len()] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn sensitive_to_any_bit_flip() {
        let data = b"segment page payload";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
