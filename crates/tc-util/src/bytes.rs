//! Little-endian byte-layout helpers for the binary segment format.
//!
//! The writers append to a `Vec<u8>`; the reader is a bounds-checked
//! cursor whose accessors return `None` on overrun so callers can map
//! truncation to their own corruption error instead of panicking.

/// Appends `v` in little-endian order.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends the IEEE-754 bit pattern of `v` in little-endian order —
/// exact round trips, no decimal detour.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Narrows a length to the `u32` a binary format stores, failing with
/// [`std::io::ErrorKind::InvalidInput`] instead of silently wrapping.
///
/// Writers of fixed-width formats must route every `usize → u32` length
/// through this: a bare `as u32` on 2^32-or-more items would truncate at
/// save time and produce a file that is corrupt on read — this surfaces
/// the limit as a save-time error naming the oversized quantity instead.
pub fn checked_len_u32(n: usize, what: &str) -> std::io::Result<u32> {
    u32::try_from(n).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{what} ({n}) exceeds the u32 limit of the segment format"),
        )
    })
}

/// A bounds-checked forward-only cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes, or `None` past the end.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f64` stored as its little-endian bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        put_f64(&mut buf, -0.125);
        put_f64(&mut buf, f64::MIN_POSITIVE);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u16(), Some(0xBEEF));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(0x0123_4567_89AB_CDEF));
        assert_eq!(r.f64(), Some(-0.125));
        assert_eq!(r.f64(), Some(f64::MIN_POSITIVE));
        assert!(r.is_empty());
    }

    #[test]
    fn overrun_returns_none_and_preserves_position() {
        let buf = [1u8, 2, 3];
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u16(), Some(0x0201));
        assert_eq!(r.u32(), None, "only one byte left");
        assert_eq!(r.remaining(), 1, "failed read must not consume");
        assert_eq!(r.take(1), Some(&[3u8][..]));
        assert_eq!(r.take(1), None);
    }

    #[test]
    fn little_endian_layout() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0x0A0B_0C0D);
        assert_eq!(buf, [0x0D, 0x0C, 0x0B, 0x0A]);
    }

    #[test]
    fn checked_len_u32_accepts_the_full_u32_range() {
        assert_eq!(checked_len_u32(0, "x").unwrap(), 0);
        assert_eq!(checked_len_u32(1, "x").unwrap(), 1);
        assert_eq!(
            checked_len_u32(u32::MAX as usize, "x").unwrap(),
            u32::MAX,
            "the boundary value itself must pass"
        );
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn checked_len_u32_rejects_overflow_with_context() {
        let err = checked_len_u32(u32::MAX as usize + 1, "transaction count").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        let msg = err.to_string();
        assert!(msg.contains("transaction count"), "{msg}");
        assert!(msg.contains("4294967296"), "{msg}");
        // The old `as u32` would have produced 0 here — the wrap this
        // helper exists to prevent.
    }
}
