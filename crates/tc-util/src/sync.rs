//! Synchronization facade for the workspace's concurrency core.
//!
//! Every hand-rolled concurrent subsystem (`tc_util::steal`,
//! `tc-store::cache`, `tc-store::wal::writer`, `tc-serve::reload`, plus
//! the serve/router lock sites) imports its primitives from here rather
//! than from `std::sync` directly. In a normal build the types are
//! zero-cost wrappers over (or re-exports of) the std primitives with a
//! non-poisoning, parking_lot-style API:
//!
//! * [`Mutex::lock`] returns the guard directly (a panic while holding a
//!   lock already poisons the *subsystem* through its own `poisoned`
//!   flags; double-reporting it as a lock poison only turned recoverable
//!   conditions into `expect` crashes in request paths);
//! * [`Condvar::wait_timeout`] returns `(guard, timed_out)`.
//!
//! Under `RUSTFLAGS="--cfg tc_check_model"` the same names resolve to
//! the instrumented lookalikes from the vendored `tc-model` crate, and
//! every lock, condvar wait/notify, atomic op, `Arc` clone/drop and
//! spawn/join becomes a scheduling point of a deterministic
//! interleaving checker — `crates/tc-check` exhaustively model-checks
//! the four subsystems above through exactly this seam. See
//! `docs/CONCURRENCY.md` for the full story and `tc-check`'s tests for
//! the checked invariants.
//!
//! The facade deliberately exposes only the surface those subsystems
//! use: `Mutex`, `Condvar`, `Arc`, the `atomic` module, and a `thread`
//! module with `spawn`/`scope`/`yield_now`. Code outside the
//! concurrency core is free to keep using `std::sync`.

/// Atomic integer/bool types plus [`atomic::Ordering`].
pub mod atomic {
    #[cfg(not(tc_check_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(tc_check_model)]
    pub use tc_model::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawning: `spawn`, `scope`, `yield_now` and the handle types.
pub mod thread {
    #[cfg(not(tc_check_model))]
    pub use std::thread::{scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};

    #[cfg(tc_check_model)]
    pub use tc_model::thread::{scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};
}

#[cfg(not(tc_check_model))]
pub use std::sync::Arc;

#[cfg(tc_check_model)]
pub use tc_model::sync::Arc;

#[cfg(tc_check_model)]
pub use tc_model::sync::{Condvar, Mutex, MutexGuard};

/// Mutual exclusion with a non-poisoning API over [`std::sync::Mutex`].
///
/// A thread panicking while holding the lock does not wedge later
/// acquisitions: the data is handed to the next locker as-is, exactly
/// like `parking_lot`. Subsystems that care about partial state on panic
/// track it explicitly (see the WAL's and executor's `poisoned` flags).
#[cfg(not(tc_check_model))]
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`]; releases on drop.
#[cfg(not(tc_check_model))]
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

#[cfg(not(tc_check_model))]
impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the mutex, blocking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts the acquisition without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Condition variable paired with the facade [`Mutex`].
#[cfg(not(tc_check_model))]
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

#[cfg(not(tc_check_model))]
impl Condvar {
    /// Creates a condvar with no waiters.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Releases the guard, blocks until notified, re-acquires.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0
            .wait(guard)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// [`Condvar::wait`] with a timeout; the flag reports whether the
    /// wait ended by timeout rather than notification.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, res) = self
            .0
            .wait_timeout(guard, dur)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (guard, res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicUsize, Ordering};
    use super::{Arc, Condvar, Mutex};
    use std::time::Duration;

    #[test]
    fn mutex_lock_and_try_lock() {
        let m = Mutex::new(1u32);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().expect("uncontended"), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_handoff_and_timeout() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_one();
        });
        let mut ready = pair.0.lock();
        while !*ready {
            let (g, _timed_out) = pair.1.wait_timeout(ready, Duration::from_millis(50));
            ready = g;
        }
        drop(ready);
        t.join().unwrap();
        // A wait with no notifier reports its timeout.
        let (_g, timed_out) = pair.1.wait_timeout(pair.0.lock(), Duration::from_millis(1));
        assert!(timed_out);
    }

    #[test]
    fn atomics_and_arc_pass_through() {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        super::thread::scope(|s| {
            s.spawn(|| n2.fetch_add(2, Ordering::SeqCst));
        });
        assert_eq!(n.load(Ordering::SeqCst), 2);
        assert_eq!(Arc::strong_count(&n), 2);
    }
}
