//! Timing and descriptive statistics for the experiment harness.

use std::time::{Duration, Instant};

/// A restartable stopwatch.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time since start (or last reset).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Resets the stopwatch and returns the elapsed time before the reset.
    pub fn lap(&mut self) -> Duration {
        let e = self.started.elapsed();
        self.started = Instant::now();
        e
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Descriptive statistics over a series of `f64` observations.
#[derive(Debug, Clone, Default)]
pub struct SeriesStats {
    values: Vec<f64>,
}

impl SeriesStats {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no observations recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Minimum; `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum; `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Population standard deviation; `0.0` when fewer than two values.
    pub fn stddev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// Percentile by nearest-rank (`p` in `[0, 100]`); `0.0` when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonzero() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed_secs() > 0.0);
    }

    #[test]
    fn lap_resets() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap();
        assert!(first.as_secs_f64() > 0.0);
        assert!(sw.elapsed() <= first + Duration::from_millis(50));
    }

    #[test]
    fn stats_basics() {
        let mut s = SeriesStats::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!(s.stddev() > 0.0);
    }

    #[test]
    fn stats_empty_are_zero() {
        let s = SeriesStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut s = SeriesStats::new();
        for v in 1..=100 {
            s.push(v as f64);
        }
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(99.0), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn single_value_stddev_zero() {
        let mut s = SeriesStats::new();
        s.push(5.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.mean(), 5.0);
    }
}
