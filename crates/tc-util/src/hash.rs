//! An Fx-style non-cryptographic hasher.
//!
//! The mining algorithms hash millions of small integer keys (vertex ids,
//! `(u32, u32)` edge keys, item ids). The standard library's SipHash 1-3 is
//! collision-resistant but slow for such keys; the Firefox/rustc "Fx" hash is
//! the usual drop-in replacement. We implement it here rather than pulling a
//! dependency — it is ~30 lines of arithmetic.
//!
//! HashDoS resistance is irrelevant for this workload: all keys originate
//! from our own data structures, never from untrusted input.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash (64-bit variant).
///
/// This is `2^64 / φ` rounded to odd, the same constant rustc uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for trusted integer-like keys.
///
/// Identical in spirit to `rustc_hash::FxHasher`: the state is folded with a
/// rotate + xor + multiply per word of input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the remainder. This path is only
        // exercised by string keys, which are rare in this workspace.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Convenience constructor: an empty [`FxHashMap`] with a capacity hint.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Convenience constructor: an empty [`FxHashSet`] with a capacity hint.
pub fn fx_set_with_capacity<K>(cap: usize) -> FxHashSet<K> {
    FxHashSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(value: T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one((3u32, 4u32)), hash_one((3u32, 4u32)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test, just a smoke check that consecutive keys
        // do not collide outright.
        let hashes: Vec<u64> = (0u64..1000).map(hash_one).collect();
        let unique: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(unique.len(), 1000);
    }

    #[test]
    fn distinguishes_tuple_order() {
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
    }

    #[test]
    fn string_keys_work() {
        assert_eq!(hash_one("abc"), hash_one("abc"));
        assert_ne!(hash_one("abc"), hash_one("abd"));
        // Exercise the >8-byte path and the remainder path.
        assert_ne!(hash_one("abcdefghij"), hash_one("abcdefghik"));
    }

    #[test]
    fn map_and_set_aliases_usable() {
        let mut m: FxHashMap<u32, &str> = fx_map_with_capacity(4);
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));

        let mut s: FxHashSet<(u32, u32)> = fx_set_with_capacity(4);
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn zero_length_remainder_not_hashed_as_padding() {
        // A trailing partial chunk must hash differently from explicit zero
        // bytes (we mix in the remainder length).
        let a = {
            let mut h = FxHasher::default();
            h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 0]);
            h.finish()
        };
        let b = {
            let mut h = FxHasher::default();
            h.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
            h.finish()
        };
        assert_ne!(a, b);
    }
}
