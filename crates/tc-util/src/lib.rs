//! Low-level substrates shared by every crate in the theme-communities
//! workspace.
//!
//! This crate deliberately has no dependencies beyond the vendored
//! `tc-model` interleaving checker (which itself has none, and whose
//! instrumentation compiles in only under `--cfg tc_check_model`). It
//! provides:
//!
//! * [`hash`] — an Fx-style non-cryptographic hasher plus [`FxHashMap`] /
//!   [`FxHashSet`] aliases. Hot maps in the miners are keyed by small
//!   integers and integer pairs, where SipHash is measurably slower.
//! * [`bitset`] — a fixed-capacity bitset with popcount-based intersection,
//!   the backbone of the *vertical* transaction representation used to
//!   compute pattern frequencies.
//! * [`bytes`] — little-endian encode helpers and a bounds-checked cursor,
//!   the byte-layout substrate of the `tc-store` segment format.
//! * [`mod@crc32`] — table-driven CRC-32 (IEEE polynomial), the per-page
//!   integrity checksum of the segment format.
//! * [`error`] — the [`LoadError`] shared by every persistence format
//!   (text networks, text trees, binary segments).
//! * [`float`] — helpers for working with cohesion values: a total-ordered
//!   wrapper and an epsilon used to keep peeling decisions stable under
//!   floating-point noise.
//! * [`heapsize`] — a trait reporting the heap footprint of a value, used to
//!   reproduce the "Memory" column of Table 3.
//! * [`json`] — a total (never-panicking) recursive-descent JSON reader,
//!   shared by the bench-telemetry gate and the `tc-serve` HTTP front-end.
//! * [`steal`] — the work-stealing task executor behind the parallel
//!   miners and the parallel TC-Tree builders: per-worker deques,
//!   steal-half balancing, dynamic task spawning, deterministic
//!   per-worker state reduction.
//! * [`sync`] — the synchronization facade the concurrency core builds
//!   on: non-poisoning `Mutex`/`Condvar`, `Arc`, atomics and thread
//!   shims that swap to the `tc-model` deterministic scheduler under
//!   `--cfg tc_check_model` (see `docs/CONCURRENCY.md`).
//! * [`timer`] — a tiny stopwatch and simple descriptive statistics used by
//!   the benchmark harness.

pub mod bitset;
pub mod bytes;
pub mod crc32;
pub mod error;
pub mod float;
pub mod hash;
pub mod heapsize;
pub mod json;
pub mod steal;
pub mod sync;
pub mod timer;

pub use bitset::BitSet;
pub use bytes::ByteReader;
pub use crc32::{crc32, Crc32};
pub use error::LoadError;
pub use float::{approx_eq, OrdF64, COHESION_EPS};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use heapsize::HeapSize;
pub use steal::{Executor, Worker};
pub use timer::{SeriesStats, Stopwatch};
