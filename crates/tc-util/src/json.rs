//! A minimal JSON reader shared by the workspace's JSON consumers.
//!
//! The workspace carries no serde; the only JSON it ever reads is JSON it
//! (or a well-behaved HTTP client) writes itself — `tc-bench`'s telemetry
//! reports and `tc-serve`'s `POST /query` batch bodies — so a small
//! recursive-descent parser over the full JSON grammar is plenty.
//! Keeping it total (no panics on malformed input, nesting capped at
//! `MAX_DEPTH` (128) so recursion is bounded) lets `bench_compare`
//! give a real diagnostic on a damaged baseline file and lets the HTTP
//! front-end answer a malformed body with a `400` instead of a crash.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload; `Null` reads as NaN (the writer emits `null`
    /// for non-finite measurements).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Deepest accepted array/object nesting. Recursion is bounded by this,
/// so a hostile document of tens of thousands of `[`s is an `Err`, not a
/// stack overflow aborting the process.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    /// Runs one container parse (`object`/`array`) a recursion level
    /// deeper, failing past `MAX_DEPTH` (128 levels).
    fn nested(
        &mut self,
        f: fn(&mut Self) -> Result<JsonValue, String>,
    ) -> Result<JsonValue, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        let value = f(self)?;
        self.depth -= 1;
        Ok(value)
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs never appear in our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    // SAFETY: `self.bytes` came from a `&str`, and
                    // `self.pos` only ever advances by whole scalar widths
                    // (`c.len_utf8()` below, or 1 over ASCII bytes), so
                    // `rest` starts on a UTF-8 boundary and is valid UTF-8.
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" -1.5e3 ").unwrap(), JsonValue::Num(-1500.0));
        assert_eq!(
            parse("\"a\\\"b\\u00e9\"").unwrap(),
            JsonValue::Str("a\"bé".into())
        );
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "1 2", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nesting_is_capped_not_stack_overflowed() {
        // At the cap: fine.
        let ok = "[".repeat(MAX_DEPTH) + "1" + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        // One past the cap: a clean error.
        let over = "[".repeat(MAX_DEPTH + 1) + "1" + &"]".repeat(MAX_DEPTH + 1);
        assert!(parse(&over).unwrap_err().contains("nesting"));
        // A hostile bomb far below any body-size cap must not abort the
        // process (unterminated on purpose — depth fails before syntax).
        let bomb = "[".repeat(50_000);
        assert!(parse(&bomb).is_err());
        let bomb = "{\"a\":".repeat(50_000);
        assert!(parse(&bomb).is_err());
    }
}
