//! Heap footprint estimation.
//!
//! Table 3 of the paper reports the peak memory used while building a
//! TC-Tree. We reproduce it two ways: a counting allocator in the benchmark
//! harness (true peak), and this trait (logical footprint of the finished
//! structure). The trait walks owned heap allocations; it reports capacity,
//! not length, because capacity is what the allocator actually handed out.

/// Types that can report the bytes they own on the heap.
///
/// `heap_size` excludes `size_of::<Self>()` itself; use [`HeapSize::total_size`]
/// for stack + heap.
pub trait HeapSize {
    /// Bytes owned on the heap (deep).
    fn heap_size(&self) -> usize;

    /// Stack size plus owned heap bytes.
    fn total_size(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of::<Self>() + self.heap_size()
    }
}

macro_rules! impl_heapsize_primitive {
    ($($t:ty),*) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_size(&self) -> usize { 0 }
        })*
    };
}

impl_heapsize_primitive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_size(&self) -> usize {
        let elems: usize = self.iter().map(HeapSize::heap_size).sum();
        self.capacity() * std::mem::size_of::<T>() + elems
    }
}

impl<T: HeapSize> HeapSize for Box<[T]> {
    fn heap_size(&self) -> usize {
        let elems: usize = self.iter().map(HeapSize::heap_size).sum();
        self.len() * std::mem::size_of::<T>() + elems
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_size(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_size)
    }
}

impl HeapSize for String {
    fn heap_size(&self) -> usize {
        self.capacity()
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    fn heap_size(&self) -> usize {
        self.0.heap_size() + self.1.heap_size()
    }
}

impl<A: HeapSize, B: HeapSize, C: HeapSize> HeapSize for (A, B, C) {
    fn heap_size(&self) -> usize {
        self.0.heap_size() + self.1.heap_size() + self.2.heap_size()
    }
}

impl<K: HeapSize, V: HeapSize, S> HeapSize for std::collections::HashMap<K, V, S> {
    fn heap_size(&self) -> usize {
        // Approximation: hashbrown stores (K, V) pairs plus 1 control byte
        // per bucket; capacity() is a lower bound on buckets.
        let per_entry = std::mem::size_of::<(K, V)>() + 1;
        let table = self.capacity() * per_entry;
        let deep: usize = self
            .iter()
            .map(|(k, v)| k.heap_size() + v.heap_size())
            .sum();
        table + deep
    }
}

impl<K: HeapSize, S> HeapSize for std::collections::HashSet<K, S> {
    fn heap_size(&self) -> usize {
        let per_entry = std::mem::size_of::<K>() + 1;
        let table = self.capacity() * per_entry;
        let deep: usize = self.iter().map(HeapSize::heap_size).sum();
        table + deep
    }
}

/// Formats a byte count as a human-readable string (`1.5 GB`, `312 MB`, …).
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_zero_heap() {
        assert_eq!(1u32.heap_size(), 0);
        assert_eq!(1.5f64.heap_size(), 0);
        assert_eq!(true.heap_size(), 0);
    }

    #[test]
    fn vec_counts_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(100);
        v.push(1);
        assert_eq!(v.heap_size(), 100 * 8);
    }

    #[test]
    fn nested_vec_is_deep() {
        let v: Vec<Vec<u8>> = vec![Vec::with_capacity(10), Vec::with_capacity(20)];
        let expected = v.capacity() * std::mem::size_of::<Vec<u8>>() + 30;
        assert_eq!(v.heap_size(), expected);
    }

    #[test]
    fn string_counts_capacity() {
        let s = String::with_capacity(42);
        assert_eq!(s.heap_size(), 42);
    }

    #[test]
    fn total_size_includes_stack() {
        let v: Vec<u8> = Vec::new();
        assert_eq!(v.total_size(), std::mem::size_of::<Vec<u8>>());
    }

    #[test]
    fn option_delegates() {
        let some: Option<Vec<u64>> = Some(Vec::with_capacity(4));
        assert_eq!(some.heap_size(), 32);
        let none: Option<Vec<u64>> = None;
        assert_eq!(none.heap_size(), 0);
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MB");
    }
}
