//! The shared load-error type for every persistence format in the
//! workspace.
//!
//! `tc-data` (text networks), `tc-index` (text TC-Trees), and `tc-store`
//! (binary segments) all used to carry their own structurally identical
//! error enums; they now re-export this one, so callers can hold a single
//! error type across format boundaries (e.g. the CLI's auto-detecting
//! loaders).

/// Errors raised while reading a persisted network or TC-Tree.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content, with a human-readable reason.
    Corrupt(String),
    /// A stored checksum did not match the data read back — the bytes were
    /// damaged after writing (bit rot, truncation mid-page, torn write).
    Checksum(String),
}

impl LoadError {
    /// Shorthand constructor for [`LoadError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> LoadError {
        LoadError::Corrupt(msg.into())
    }

    /// Shorthand constructor for [`LoadError::Checksum`].
    pub fn checksum(msg: impl Into<String>) -> LoadError {
        LoadError::Checksum(msg.into())
    }

    /// `true` for the data-damage variants ([`LoadError::Corrupt`] and
    /// [`LoadError::Checksum`]), as opposed to environmental I/O failures.
    pub fn is_corruption(&self) -> bool {
        matches!(self, LoadError::Corrupt(_) | LoadError::Checksum(_))
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Corrupt(m) => write!(f, "corrupt file: {m}"),
            LoadError::Checksum(m) => write!(f, "checksum mismatch: {m}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(LoadError::corrupt("bad header")
            .to_string()
            .contains("bad header"));
        assert!(LoadError::checksum("page 3").to_string().contains("page 3"));
        let io = LoadError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
    }

    #[test]
    fn corruption_classification() {
        assert!(LoadError::corrupt("x").is_corruption());
        assert!(LoadError::checksum("x").is_corruption());
        assert!(!LoadError::from(std::io::Error::other("x")).is_corruption());
    }
}
