//! A shared work-stealing executor for the offline phases (TCFI mining,
//! TC-Tree construction).
//!
//! The miners' fan-out used to be a hand-rolled `std::thread::scope` +
//! atomic-cursor pool that re-spawned its workers at every Apriori level
//! and met a hard barrier between levels. This module replaces it with a
//! reusable executor:
//!
//! * **per-worker deques** — each worker owns a deque; it pushes spawned
//!   tasks to the back and pops from the back (LIFO keeps the working set
//!   hot), while thieves steal the *older half* from the front, which
//!   tends to move the largest pending subtrees of work;
//! * **dynamic spawning** — a task may [`Worker::spawn`] follow-up tasks,
//!   so dependent work (a level-`(k+1)` candidate whose parents just
//!   finished) starts without waiting for a global barrier;
//! * **scoped lifetimes** — tasks borrow from the caller's stack
//!   (`std::thread::scope`), no `'static` bounds, no `Arc` tax on the
//!   network being mined;
//! * **deterministic reduction** — every worker owns a private state
//!   value; [`Executor::run`] returns the states **in worker-index
//!   order**, so folding counters or concatenating per-worker results is
//!   reproducible run to run (the *contents* of each worker's state still
//!   depend on scheduling; callers that need a canonical order sort by a
//!   task-intrinsic key, not by arrival).
//!
//! Idle workers park on a condvar with a short timeout instead of
//! spinning: on machines with fewer cores than workers a spinning thief
//! would steal cycles from the worker actually making progress.
//!
//! The implementation is deliberately simple: the deques are small
//! mutex-guarded `VecDeque`s, not lock-free Chase-Lev buffers. The tasks
//! this executor runs (an MPTD call, a truss decomposition) cost orders
//! of magnitude more than an uncontended mutex, so queue overhead is
//! noise.
//!
//! Every primitive comes from the [`crate::sync`] facade, so under
//! `--cfg tc_check_model` the executor runs on the deterministic
//! `tc-model` scheduler and `tc-check` exhaustively verifies the
//! steal-half protocol (no task lost, none run twice) across bounded
//! interleavings.

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::{thread, Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// How long an idle worker parks before re-checking the queues. Bounds
/// the damage of a lost wakeup; the common path is an explicit notify.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

/// A work-stealing task executor with a fixed worker count.
///
/// ```
/// use tc_util::steal::Executor;
///
/// // Sum 1..=100 with dynamically spawned halves.
/// let ex = Executor::new(4);
/// let states = ex.run(
///     vec![(1u64, 100u64)],
///     |_worker| 0u64,
///     |sum, (lo, hi), worker| {
///         if hi - lo <= 9 {
///             *sum += (lo..=hi).sum::<u64>();
///         } else {
///             let mid = lo + (hi - lo) / 2;
///             worker.spawn((lo, mid));
///             worker.spawn((mid + 1, hi));
///         }
///     },
/// );
/// assert_eq!(states.iter().sum::<u64>(), 5050);
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `seeds` (and everything they spawn) to completion and returns
    /// the per-worker states in worker-index order.
    ///
    /// `init(w)` builds worker `w`'s private state; `task(state, t, worker)`
    /// processes one task and may spawn follow-ups through `worker`. With
    /// one worker everything runs inline on the calling thread (no spawn),
    /// which doubles as the serial reference for equivalence tests.
    pub fn run<T, S, F, I>(&self, seeds: Vec<T>, init: I, task: F) -> Vec<S>
    where
        T: Send,
        S: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, T, &Worker<'_, T>) + Sync,
    {
        let n = self.threads.max(1);
        let shared = Shared::new(n, seeds);
        if n == 1 {
            return vec![worker_loop(&shared, 0, &init, &task)];
        }
        thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|w| {
                    let shared = &shared;
                    let init = &init;
                    let task = &task;
                    scope.spawn(move || worker_loop(shared, w, init, task))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker panicked"))
                .collect()
        })
    }
}

/// Handle passed to every task: identifies the running worker and accepts
/// spawned follow-up tasks.
pub struct Worker<'a, T> {
    index: usize,
    shared: &'a Shared<T>,
}

impl<T> Worker<'_, T> {
    /// Index of the worker executing the current task (0-based, stable
    /// across the run — the key for per-worker telemetry).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Enqueues a follow-up task on this worker's own deque (thieves will
    /// balance it if this worker is saturated).
    pub fn spawn(&self, t: T) {
        // Count before publishing: a thief may pop and finish the task
        // between the push and any later increment, which would let
        // `pending` underflow and release the workers early.
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.queues[self.index].lock().push_back(t);
        // One new task ⇒ one woken thief. Waking every sleeper here turns
        // each spawn into a stampede of fruitless steal scans, which on an
        // oversubscribed host (more workers than cores) steals real CPU
        // from the worker making progress.
        self.shared.wake_one();
    }
}

struct Shared<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    /// Tasks created but not yet finished. 0 ⇒ no queued task exists and
    /// none is running that could spawn more ⇒ workers may exit.
    pending: AtomicUsize,
    /// Set when a task panics so the other workers drain out instead of
    /// waiting forever on a count that will never reach zero.
    poisoned: AtomicBool,
    sleepers: AtomicUsize,
    park_lock: Mutex<()>,
    park_cv: Condvar,
}

impl<T> Shared<T> {
    fn new(workers: usize, seeds: Vec<T>) -> Shared<T> {
        let mut queues: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        let pending = AtomicUsize::new(seeds.len());
        // Round-robin the seeds so every worker starts with local work.
        for (i, seed) in seeds.into_iter().enumerate() {
            queues[i % workers].push_back(seed);
        }
        Shared {
            queues: queues.into_iter().map(Mutex::new).collect(),
            pending,
            poisoned: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
        }
    }

    fn wake_one(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.park_lock.lock();
            self.park_cv.notify_one();
        }
    }

    fn wake_all(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.park_lock.lock();
            self.park_cv.notify_all();
        }
    }

    /// Next task for worker `w`: own deque first (LIFO), then steal the
    /// front half of the first non-empty victim deque.
    fn next_task(&self, w: usize) -> Option<T> {
        if let Some(t) = self.queues[w].lock().pop_back() {
            return Some(t);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (w + offset) % n;
            let mut stolen = {
                let mut q = self.queues[victim].lock();
                let len = q.len();
                if len == 0 {
                    continue;
                }
                // Steal the older half (rounded up), leaving the victim
                // its hot tail.
                let take = len.div_ceil(2);
                q.drain(..take).collect::<VecDeque<T>>()
            };
            let first = stolen.pop_front();
            if !stolen.is_empty() {
                self.queues[w].lock().append(&mut stolen);
                // The surplus we just re-queued is stealable again.
                self.wake_one();
            }
            return first;
        }
        None
    }
}

/// Decrements `pending` when a task ends — including by panic, which also
/// poisons the run so sibling workers exit instead of deadlocking.
struct TaskGuard<'a, T> {
    shared: &'a Shared<T>,
}

impl<T> Drop for TaskGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.poisoned.store(true, Ordering::SeqCst);
        }
        if self.shared.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last task: release every parked worker so it can observe
            // pending == 0 and exit.
            self.shared.wake_all();
        }
    }
}

fn worker_loop<T, S>(
    shared: &Shared<T>,
    w: usize,
    init: &(impl Fn(usize) -> S + Sync),
    task: &(impl Fn(&mut S, T, &Worker<'_, T>) + Sync),
) -> S {
    let mut state = init(w);
    let worker = Worker { index: w, shared };
    loop {
        if shared.poisoned.load(Ordering::SeqCst) {
            break;
        }
        if let Some(t) = shared.next_task(w) {
            let guard = TaskGuard { shared };
            task(&mut state, t, &worker);
            drop(guard);
            continue;
        }
        if shared.pending.load(Ordering::SeqCst) == 0 {
            break;
        }
        // Work exists (or is being spawned) but nothing was stealable:
        // park briefly. The timeout covers the race between the emptiness
        // check and the wait; spawns and run-completion notify eagerly.
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        {
            let guard = shared.park_lock.lock();
            if shared.pending.load(Ordering::SeqCst) != 0 {
                let _ = shared.park_cv.wait_timeout(guard, PARK_TIMEOUT);
            }
        }
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_seeds_once() {
        for threads in [1, 2, 4, 9] {
            let ex = Executor::new(threads);
            let states = ex.run(
                (0..1000u32).collect(),
                |_| Vec::new(),
                |seen: &mut Vec<u32>, t, _| seen.push(t),
            );
            assert_eq!(states.len(), threads);
            let mut all: Vec<u32> = states.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }
    }

    #[test]
    fn dynamic_spawning_reaches_fixpoint() {
        // Each task (depth, value) spawns two children until depth 0;
        // leaves contribute their value. A binary tree of depth 6 over
        // each of 3 seeds ⇒ 3 · 2⁶ leaves.
        for threads in [1, 3, 8] {
            let ex = Executor::new(threads);
            let leaves: usize = ex
                .run(
                    vec![(6u32, ()); 3],
                    |_| 0usize,
                    |count, (depth, ()), worker| {
                        if depth == 0 {
                            *count += 1;
                        } else {
                            worker.spawn((depth - 1, ()));
                            worker.spawn((depth - 1, ()));
                        }
                    },
                )
                .into_iter()
                .sum();
            assert_eq!(leaves, 3 << 6, "threads = {threads}");
        }
    }

    #[test]
    fn states_returned_in_worker_order() {
        let ex = Executor::new(5);
        let states = ex.run(vec![(); 64], |w| w, |_, (), _| {});
        assert_eq!(states, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_seed_list() {
        let ex = Executor::new(4);
        let states = ex.run(Vec::<()>::new(), |w| w * 10, |_, (), _| {});
        assert_eq!(states, vec![0, 10, 20, 30]);
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let ex = Executor::new(0);
        assert_eq!(ex.threads(), 1);
        let states = ex.run(vec![1, 2, 3], |_| 0i32, |acc, t, _| *acc += t);
        assert_eq!(states, vec![6]);
    }

    #[test]
    fn worker_index_is_in_range() {
        let ex = Executor::new(3);
        let states = ex.run(
            (0..100).collect::<Vec<i32>>(),
            |w| (w, true),
            |(w, ok), _, worker| *ok &= worker.index() == *w,
        );
        assert!(states.iter().all(|&(_, ok)| ok));
    }

    #[test]
    #[should_panic(expected = "executor worker panicked")]
    fn task_panic_propagates_without_deadlock() {
        let ex = Executor::new(4);
        ex.run(
            (0..64u32).collect(),
            |_| (),
            |(), t, _| {
                if t == 13 {
                    panic!("boom");
                }
            },
        );
    }

    #[test]
    fn heavy_recursive_load_balances() {
        // Fibonacci-style task splitting with a shared atomic check that
        // the leaf count matches the serial recursion.
        fn leaves(n: u32) -> usize {
            if n < 2 {
                1
            } else {
                leaves(n - 1) + leaves(n - 2)
            }
        }
        let ex = Executor::new(6);
        let total: usize = ex
            .run(
                vec![14u32],
                |_| 0usize,
                |count, n, worker| {
                    if n < 2 {
                        *count += 1;
                    } else {
                        worker.spawn(n - 1);
                        worker.spawn(n - 2);
                    }
                },
            )
            .into_iter()
            .sum();
        assert_eq!(total, leaves(14));
    }
}
