//! Property tests for the util substrates: the bitset against a `HashSet`
//! model, and hashing sanity.

use proptest::prelude::*;
use std::collections::HashSet;
use tc_util::{BitSet, FxHashMap, FxHashSet};

const UNIVERSE: usize = 200;

fn arb_ids() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..UNIVERSE, 0..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitset_matches_hashset_model(a in arb_ids(), b in arb_ids()) {
        let sa: HashSet<usize> = a.iter().copied().collect();
        let sb: HashSet<usize> = b.iter().copied().collect();
        let ba = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let bb = BitSet::from_iter(UNIVERSE, b.iter().copied());

        prop_assert_eq!(ba.count(), sa.len());
        prop_assert_eq!(ba.intersection_count(&bb), sa.intersection(&sb).count());
        prop_assert_eq!(ba.is_subset(&bb), sa.is_subset(&sb));
        prop_assert_eq!(ba.is_disjoint(&bb), sa.is_disjoint(&sb));

        let mut inter = ba.clone();
        inter.intersect_with(&bb);
        let model: std::collections::BTreeSet<usize> =
            sa.intersection(&sb).copied().collect();
        prop_assert_eq!(inter.iter().collect::<Vec<_>>(), model.into_iter().collect::<Vec<_>>());

        let mut uni = ba.clone();
        uni.union_with(&bb);
        prop_assert_eq!(uni.count(), sa.union(&sb).count());

        let mut diff = ba.clone();
        diff.difference_with(&bb);
        prop_assert_eq!(diff.count(), sa.difference(&sb).count());
    }

    #[test]
    fn bitset_iter_sorted_and_complete(a in arb_ids()) {
        let set: std::collections::BTreeSet<usize> = a.iter().copied().collect();
        let bs = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let got: Vec<usize> = bs.iter().collect();
        prop_assert_eq!(got, set.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn bitset_remove_inverse_of_insert(a in arb_ids(), victim in 0..UNIVERSE) {
        let mut bs = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let had = bs.contains(victim);
        prop_assert_eq!(bs.remove(victim), had);
        prop_assert!(!bs.contains(victim));
        bs.insert(victim);
        prop_assert!(bs.contains(victim));
    }

    #[test]
    fn fx_map_behaves_like_std(pairs in prop::collection::vec((0u64..100, 0u64..100), 0..60)) {
        let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
        let mut std_map: std::collections::HashMap<u64, u64> = Default::default();
        for &(k, v) in &pairs {
            fx.insert(k, v);
            std_map.insert(k, v);
        }
        prop_assert_eq!(fx.len(), std_map.len());
        for (k, v) in &std_map {
            prop_assert_eq!(fx.get(k), Some(v));
        }
    }

    #[test]
    fn fx_set_behaves_like_std(ids in prop::collection::vec(0u64..100, 0..60)) {
        let mut fx: FxHashSet<u64> = FxHashSet::default();
        let mut std_set: std::collections::HashSet<u64> = Default::default();
        for &x in &ids {
            prop_assert_eq!(fx.insert(x), std_set.insert(x));
        }
        prop_assert_eq!(fx.len(), std_set.len());
    }

    #[test]
    fn leq_gt_partition(a in 0.0f64..5.0, b in 0.0f64..5.0) {
        prop_assert_ne!(tc_util::float::leq_eps(a, b), tc_util::float::gt_eps(a, b));
    }
}
