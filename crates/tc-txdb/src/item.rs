//! Items and the global item space.
//!
//! Items are interned: algorithms work with dense `u32` ids; human-readable
//! names (keywords, locations, products) live in the [`ItemSpace`] and are
//! only consulted for display.

use tc_util::{FxHashMap, HeapSize};

/// A dense item identifier.
///
/// The paper's `S = {s_1, …, s_m}`; item ids are `0..m`. The `Ord` instance
/// doubles as the total order `≺` required by the set-enumeration tree
/// (paper §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item(pub u32);

impl Item {
    /// The dense index of this item.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Item {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl HeapSize for Item {
    fn heap_size(&self) -> usize {
        0
    }
}

/// Bidirectional mapping between item names and dense [`Item`] ids.
#[derive(Debug, Clone, Default)]
pub struct ItemSpace {
    names: Vec<String>,
    by_name: FxHashMap<String, Item>,
}

impl ItemSpace {
    /// An empty item space.
    pub fn new() -> Self {
        Self::default()
    }

    /// An item space of `n` anonymous items named `item_0 … item_{n-1}`.
    pub fn anonymous(n: usize) -> Self {
        let mut s = Self::new();
        for i in 0..n {
            s.intern(&format!("item_{i}"));
        }
        s
    }

    /// Interns `name`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, name: &str) -> Item {
        if let Some(&item) = self.by_name.get(name) {
            return item;
        }
        let item = Item(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), item);
        item
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Item> {
        self.by_name.get(name).copied()
    }

    /// The name of `item`, if in range.
    pub fn name(&self, item: Item) -> Option<&str> {
        self.names.get(item.index()).map(String::as_str)
    }

    /// Number of distinct items (`|S|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no item has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All items in id order.
    pub fn items(&self) -> impl Iterator<Item = Item> + '_ {
        (0..self.names.len() as u32).map(Item)
    }

    /// Renders a pattern as `{name, name, …}` using this space's names.
    pub fn render(&self, pattern: &crate::Pattern) -> String {
        let mut out = String::from("{");
        for (i, item) in pattern.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match self.name(item) {
                Some(n) => out.push_str(n),
                None => out.push_str(&item.to_string()),
            }
        }
        out.push('}');
        out
    }
}

impl HeapSize for ItemSpace {
    fn heap_size(&self) -> usize {
        self.names.heap_size() + self.by_name.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pattern;

    #[test]
    fn intern_is_idempotent() {
        let mut s = ItemSpace::new();
        let a = s.intern("beer");
        let b = s.intern("diapers");
        assert_ne!(a, b);
        assert_eq!(s.intern("beer"), a);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut s = ItemSpace::new();
        let a = s.intern("beer");
        assert_eq!(s.get("beer"), Some(a));
        assert_eq!(s.get("wine"), None);
        assert_eq!(s.name(a), Some("beer"));
        assert_eq!(s.name(Item(99)), None);
    }

    #[test]
    fn anonymous_space() {
        let s = ItemSpace::anonymous(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.name(Item(1)), Some("item_1"));
        assert_eq!(s.get("item_2"), Some(Item(2)));
    }

    #[test]
    fn items_iterator_in_order() {
        let s = ItemSpace::anonymous(4);
        let ids: Vec<u32> = s.items().map(|i| i.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn render_pattern() {
        let mut s = ItemSpace::new();
        let a = s.intern("data mining");
        let b = s.intern("sequential pattern");
        let p = Pattern::new(vec![b, a]);
        assert_eq!(s.render(&p), "{data mining, sequential pattern}");
    }

    #[test]
    fn render_unknown_item_falls_back() {
        let s = ItemSpace::new();
        let p = Pattern::new(vec![Item(7)]);
        assert_eq!(s.render(&p), "{i7}");
    }

    #[test]
    fn item_ordering_is_id_order() {
        assert!(Item(1) < Item(2));
        let mut v = vec![Item(5), Item(1), Item(3)];
        v.sort();
        assert_eq!(v, vec![Item(1), Item(3), Item(5)]);
    }
}
