//! Frequent Pattern Counting — the #P-complete problem behind Theorem 3.8.
//!
//! Appendix A.1 of the paper proves that counting theme communities is
//! #P-hard by reduction **from** FPC: given a transaction database `d` and a
//! threshold `α ∈ [0, 1]`, count the patterns `p` with `f(p) > α`. The
//! reduction builds a 3-vertex triangle database network whose every vertex
//! carries a copy of `d`; then the number of theme communities equals the
//! FPC answer. Our integration tests execute that construction literally,
//! with this module as the oracle side.

use crate::database::TransactionDb;
use crate::eclat::for_each_frequent_pattern;

/// Counts patterns `p ≠ ∅` with `f(p) > min_freq` (strict), the FPC problem.
///
/// Exponential in the worst case, as it must be (#P-complete); intended for
/// the small instances used in tests and demos.
pub fn count_frequent_patterns(db: &TransactionDb, min_freq: f64) -> u64 {
    let mut count = 0u64;
    for_each_frequent_pattern(db, min_freq, usize::MAX, |_, _| count += 1);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    #[test]
    fn counts_all_nonempty_patterns_at_zero() {
        // Single transaction {0,1,2}: 2^3 - 1 = 7 nonempty subsets, all with
        // frequency 1.0 > 0.
        let db = TransactionDb::from_transactions([items(&[0, 1, 2])]);
        assert_eq!(count_frequent_patterns(&db, 0.0), 7);
    }

    #[test]
    fn strictness_of_threshold() {
        // {0}: f=1.0, {1}: f=0.5, {0,1}: f=0.5.
        let db = TransactionDb::from_transactions([items(&[0, 1]), items(&[0])]);
        assert_eq!(count_frequent_patterns(&db, 0.0), 3);
        assert_eq!(count_frequent_patterns(&db, 0.5), 1); // only {0}
        assert_eq!(count_frequent_patterns(&db, 1.0), 0);
    }

    #[test]
    fn empty_db_counts_zero() {
        assert_eq!(count_frequent_patterns(&TransactionDb::new(), 0.0), 0);
    }

    #[test]
    fn matches_bruteforce_enumeration() {
        let db = TransactionDb::from_transactions([
            items(&[0, 1]),
            items(&[1, 2]),
            items(&[0, 2]),
            items(&[0, 1, 2]),
        ]);
        for threshold in [0.0, 0.24, 0.25, 0.5, 0.74, 0.75] {
            let mut brute = 0;
            for mask in 1u32..8 {
                let p: crate::Pattern = (0..3)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| Item(i as u32))
                    .collect();
                if db.frequency(&p) > threshold {
                    brute += 1;
                }
            }
            assert_eq!(
                count_frequent_patterns(&db, threshold),
                brute,
                "threshold {threshold}"
            );
        }
    }
}
