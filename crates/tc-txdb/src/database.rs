//! Transaction databases in vertical (tidset) form.
//!
//! A transaction database `d = {t_1, …, t_h}` is a multi-set of itemsets
//! (§3.1). We store it *vertically*: for each item, the bitset of
//! transaction ids containing it. The frequency of a pattern is then the
//! popcount of a bitset intersection divided by `h` — the representation
//! Eclat made standard, and the reason arbitrary-length pattern frequencies
//! stay cheap inside the miners.

use crate::item::Item;
use crate::pattern::Pattern;
use tc_util::{BitSet, FxHashMap, HeapSize};

/// A vertex's transaction database.
#[derive(Debug, Clone, Default)]
pub struct TransactionDb {
    /// `h` — number of transactions (a multi-set: duplicates count).
    num_transactions: usize,
    /// Vertical representation: item → tidset.
    tidsets: FxHashMap<Item, BitSet>,
    /// Total item occurrences across transactions (for Table 2 stats).
    total_item_occurrences: usize,
}

impl TransactionDb {
    /// An empty database (`h = 0`; every frequency is 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from horizontal transactions. Duplicate items within one
    /// transaction are counted once (transactions are itemsets).
    pub fn from_transactions<T, I>(transactions: T) -> Self
    where
        T: IntoIterator<Item = I>,
        I: IntoIterator<Item = Item>,
    {
        let mut builder = TransactionDbBuilder::new();
        for t in transactions {
            builder.add_transaction(t);
        }
        builder.build()
    }

    /// `h`: the number of transactions.
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// Number of distinct items occurring in this database.
    pub fn num_distinct_items(&self) -> usize {
        self.tidsets.len()
    }

    /// Total item occurrences (each transaction's distinct items summed) —
    /// the paper's Table 2 "#Items (total)" statistic.
    pub fn total_item_occurrences(&self) -> usize {
        self.total_item_occurrences
    }

    /// Distinct items of this database, in arbitrary order.
    pub fn items(&self) -> impl Iterator<Item = Item> + '_ {
        self.tidsets.keys().copied()
    }

    /// Absolute support of a single item: `|{t : item ∈ t}|`.
    pub fn item_support(&self, item: Item) -> usize {
        self.tidsets.get(&item).map_or(0, BitSet::count)
    }

    /// Frequency of a single item (`support / h`; 0 when `h = 0`).
    pub fn item_frequency(&self, item: Item) -> f64 {
        if self.num_transactions == 0 {
            return 0.0;
        }
        self.item_support(item) as f64 / self.num_transactions as f64
    }

    /// The tidset of an item, if present.
    pub fn tidset(&self, item: Item) -> Option<&BitSet> {
        self.tidsets.get(&item)
    }

    /// Reconstructs the horizontal transactions from the vertical tidsets,
    /// in canonical form: transactions in tid order, items within each
    /// transaction sorted ascending.
    ///
    /// Every persistence format (text, segment, WAL replay) writes
    /// transactions through this one reconstruction, which is what makes a
    /// save a pure function of the database content — the byte-identity
    /// property the round-trip and checkpoint tests rely on.
    pub fn transactions(&self) -> Vec<Vec<Item>> {
        let mut transactions = vec![Vec::new(); self.num_transactions];
        let mut items: Vec<Item> = self.items().collect();
        items.sort_unstable();
        for item in items {
            if let Some(tidset) = self.tidsets.get(&item) {
                for tid in tidset.iter() {
                    transactions[tid].push(item);
                }
            }
        }
        transactions
    }

    /// Absolute support of a pattern: number of transactions containing
    /// **all** of its items. The empty pattern is contained in every
    /// transaction.
    pub fn support(&self, pattern: &Pattern) -> usize {
        match pattern.len() {
            0 => self.num_transactions,
            1 => self.item_support(pattern.items()[0]),
            2 => {
                let a = self.tidsets.get(&pattern.items()[0]);
                let b = self.tidsets.get(&pattern.items()[1]);
                match (a, b) {
                    (Some(a), Some(b)) => a.intersection_count(b),
                    _ => 0,
                }
            }
            _ => {
                // Start from the rarest tidset to keep the working set small.
                let mut sets = Vec::with_capacity(pattern.len());
                for item in pattern.iter() {
                    match self.tidsets.get(&item) {
                        Some(s) => sets.push(s),
                        None => return 0,
                    }
                }
                sets.sort_by_key(|s| s.count());
                let mut acc = sets[0].clone();
                for s in &sets[1..] {
                    acc.intersect_with(s);
                    if acc.is_empty() {
                        return 0;
                    }
                }
                acc.count()
            }
        }
    }

    /// `f_i(p)`: frequency of `pattern` — the proportion of transactions
    /// containing it (0 when `h = 0`).
    pub fn frequency(&self, pattern: &Pattern) -> f64 {
        if self.num_transactions == 0 {
            return 0.0;
        }
        self.support(pattern) as f64 / self.num_transactions as f64
    }
}

impl HeapSize for TransactionDb {
    fn heap_size(&self) -> usize {
        self.tidsets.heap_size()
    }
}

/// Incremental builder for [`TransactionDb`].
///
/// Collects horizontal transactions, then freezes them into tidsets sized to
/// the final transaction count.
#[derive(Debug, Clone, Default)]
pub struct TransactionDbBuilder {
    /// item → transaction ids (deferred; bitsets need the final `h`).
    postings: FxHashMap<Item, Vec<u32>>,
    num_transactions: usize,
    total_item_occurrences: usize,
}

impl TransactionDbBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one transaction (an itemset; duplicate items collapse).
    pub fn add_transaction(&mut self, items: impl IntoIterator<Item = Item>) -> &mut Self {
        let tid = self.num_transactions as u32;
        self.num_transactions += 1;
        let mut seen: Vec<Item> = items.into_iter().collect();
        seen.sort_unstable();
        seen.dedup();
        self.total_item_occurrences += seen.len();
        for item in seen {
            self.postings.entry(item).or_default().push(tid);
        }
        self
    }

    /// Number of transactions added so far.
    pub fn len(&self) -> usize {
        self.num_transactions
    }

    /// `true` when no transaction was added.
    pub fn is_empty(&self) -> bool {
        self.num_transactions == 0
    }

    /// Freezes into a [`TransactionDb`].
    pub fn build(self) -> TransactionDb {
        let h = self.num_transactions;
        let tidsets = self
            .postings
            .into_iter()
            .map(|(item, tids)| {
                let set = BitSet::from_iter(h, tids.into_iter().map(|t| t as usize));
                (item, set)
            })
            .collect();
        TransactionDb {
            num_transactions: h,
            tidsets,
            total_item_occurrences: self.total_item_occurrences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(items(ids))
    }

    /// The running example: 10 transactions over items {0,1,2}.
    fn sample_db() -> TransactionDb {
        TransactionDb::from_transactions([
            items(&[0, 1]),
            items(&[0, 1]),
            items(&[0, 1, 2]),
            items(&[0]),
            items(&[1]),
            items(&[2]),
            items(&[0, 2]),
            items(&[0, 1]),
            items(&[1, 2]),
            items(&[0, 1, 2]),
        ])
    }

    #[test]
    fn transaction_count() {
        assert_eq!(sample_db().num_transactions(), 10);
    }

    #[test]
    fn single_item_support_and_frequency() {
        let db = sample_db();
        assert_eq!(db.item_support(Item(0)), 7);
        assert_eq!(db.item_support(Item(1)), 7);
        assert_eq!(db.item_support(Item(2)), 5);
        assert!((db.item_frequency(Item(0)) - 0.7).abs() < 1e-12);
        assert_eq!(db.item_support(Item(9)), 0);
        assert_eq!(db.item_frequency(Item(9)), 0.0);
    }

    #[test]
    fn pair_support() {
        let db = sample_db();
        assert_eq!(db.support(&pat(&[0, 1])), 5);
        assert_eq!(db.support(&pat(&[0, 2])), 3);
        assert_eq!(db.support(&pat(&[1, 2])), 3);
    }

    #[test]
    fn triple_support() {
        let db = sample_db();
        assert_eq!(db.support(&pat(&[0, 1, 2])), 2);
        assert!((db.frequency(&pat(&[0, 1, 2])) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_pattern_in_every_transaction() {
        let db = sample_db();
        assert_eq!(db.support(&Pattern::empty()), 10);
        assert_eq!(db.frequency(&Pattern::empty()), 1.0);
    }

    #[test]
    fn missing_item_zeroes_pattern() {
        let db = sample_db();
        assert_eq!(db.support(&pat(&[0, 99])), 0);
        assert_eq!(db.frequency(&pat(&[0, 99])), 0.0);
    }

    #[test]
    fn empty_db() {
        let db = TransactionDb::new();
        assert_eq!(db.num_transactions(), 0);
        assert_eq!(db.frequency(&pat(&[1])), 0.0);
        assert_eq!(db.support(&Pattern::empty()), 0);
        assert_eq!(db.num_distinct_items(), 0);
    }

    #[test]
    fn duplicate_items_in_transaction_collapse() {
        let db = TransactionDb::from_transactions([items(&[1, 1, 1])]);
        assert_eq!(db.item_support(Item(1)), 1);
        assert_eq!(db.total_item_occurrences(), 1);
    }

    #[test]
    fn duplicate_transactions_count_separately() {
        // A transaction database is a multi-set (§3.1).
        let db = TransactionDb::from_transactions([items(&[1]), items(&[1])]);
        assert_eq!(db.num_transactions(), 2);
        assert_eq!(db.item_support(Item(1)), 2);
        assert_eq!(db.item_frequency(Item(1)), 1.0);
    }

    #[test]
    fn frequency_anti_monotone_in_pattern() {
        // f(p1) >= f(p2) whenever p1 ⊆ p2 — the classic anti-monotonicity
        // the paper's Theorem 5.1 builds on.
        let db = sample_db();
        let p01 = pat(&[0, 1]);
        let p012 = pat(&[0, 1, 2]);
        assert!(db.frequency(&pat(&[0])) >= db.frequency(&p01));
        assert!(db.frequency(&p01) >= db.frequency(&p012));
    }

    #[test]
    fn stats() {
        let db = sample_db();
        assert_eq!(db.num_distinct_items(), 3);
        assert_eq!(db.total_item_occurrences(), 7 + 7 + 5);
        let mut seen: Vec<u32> = db.items().map(|i| i.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn builder_incremental() {
        let mut b = TransactionDbBuilder::new();
        assert!(b.is_empty());
        b.add_transaction(items(&[5, 6]));
        b.add_transaction(items(&[5]));
        assert_eq!(b.len(), 2);
        let db = b.build();
        assert_eq!(db.item_support(Item(5)), 2);
        assert_eq!(db.item_support(Item(6)), 1);
    }

    #[test]
    fn transactions_reconstruct_canonically() {
        let db = sample_db();
        let txs = db.transactions();
        assert_eq!(txs.len(), db.num_transactions());
        // tid order matches insertion, items sorted within each.
        assert_eq!(txs[0], items(&[0, 1]));
        assert_eq!(txs[2], items(&[0, 1, 2]));
        assert_eq!(txs[5], items(&[2]));
        for t in &txs {
            assert!(t.windows(2).all(|w| w[0] < w[1]), "unsorted {t:?}");
        }
        // Rebuilding from the reconstruction is a fixed point.
        let rebuilt = TransactionDb::from_transactions(txs.clone());
        assert_eq!(rebuilt.transactions(), txs);
        assert_eq!(rebuilt.num_transactions(), db.num_transactions());
    }

    #[test]
    fn tidset_access() {
        let db = sample_db();
        let ts = db.tidset(Item(2)).unwrap();
        assert_eq!(ts.iter().collect::<Vec<_>>(), vec![2, 5, 6, 8, 9]);
        assert!(db.tidset(Item(42)).is_none());
    }
}
