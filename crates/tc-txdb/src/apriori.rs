//! Level-wise candidate generation — Algorithm 2 of the paper.
//!
//! Given the set `P_{k-1}` of *qualified* length-`(k-1)` patterns, the
//! length-`k` candidates are the unions `p ∪ q` of pairs with `|p ∪ q| = k`
//! whose every length-`(k-1)` sub-pattern is qualified.
//!
//! We implement the classic prefix-join formulation: sort `P_{k-1}`
//! lexicographically and join pairs sharing their first `k-2` items. Every
//! length-`k` set whose two "drop one of the last two items" subsets are
//! qualified arises from exactly one such pair, so the prefix join generates
//! the same candidate set as the paper's "all pairs with `|p ∪ q| = k`"
//! formulation, without the quadratic pair scan.
//!
//! Each candidate remembers **which** two parents joined to form it — TCFI
//! (§5.3) intersects precisely those parents' maximal pattern trusses.

use crate::pattern::Pattern;
use tc_util::FxHashSet;

/// A length-`k` candidate with the indices of its two joined parents in the
/// (sorted) `P_{k-1}` slice passed to [`generate_candidates`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinCandidate {
    /// The union pattern `p_{k-1} ∪ q_{k-1}`.
    pub pattern: Pattern,
    /// Index of the lexicographically smaller parent.
    pub left: usize,
    /// Index of the larger parent.
    pub right: usize,
}

/// Generates the Apriori candidates of length `k` from qualified patterns of
/// length `k - 1` (Algorithm 2).
///
/// `qualified` is sorted in place (the returned parent indices refer to the
/// sorted order). All patterns must share the same length; mixed input is a
/// logic error and panics in debug builds.
pub fn generate_candidates(qualified: &mut Vec<Pattern>) -> Vec<JoinCandidate> {
    qualified.sort_unstable();
    qualified.dedup();
    if qualified.len() < 2 {
        return Vec::new();
    }
    debug_assert!(
        qualified.windows(2).all(|w| w[0].len() == w[1].len()),
        "generate_candidates requires uniform pattern length"
    );

    let lookup: FxHashSet<&Pattern> = qualified.iter().collect();
    let k = qualified[0].len() + 1;
    let mut out = Vec::new();

    // Prefix-join: patterns sharing the first k-2 items sit adjacently in
    // lexicographic order, forming a block; join all pairs inside a block.
    let mut block_start = 0;
    for i in 1..=qualified.len() {
        let block_ended =
            i == qualified.len() || qualified[i].prefix() != qualified[block_start].prefix();
        if !block_ended {
            continue;
        }
        let block = &qualified[block_start..i];
        for a in 0..block.len() {
            for b in (a + 1)..block.len() {
                let candidate = block[a].union(&block[b]);
                debug_assert_eq!(candidate.len(), k);
                // Apriori pruning: every (k-1)-sub-pattern must be qualified.
                let all_qualified = candidate
                    .k_minus_one_subsets()
                    .all(|sub| lookup.contains(&sub));
                if all_qualified {
                    out.push(JoinCandidate {
                        pattern: candidate,
                        left: block_start + a,
                        right: block_start + b,
                    });
                }
            }
        }
        block_start = i;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| Item(i)).collect())
    }

    #[test]
    fn joins_singletons_into_pairs() {
        let mut p1 = vec![pat(&[2]), pat(&[0]), pat(&[1])];
        let cands = generate_candidates(&mut p1);
        let patterns: Vec<&Pattern> = cands.iter().map(|c| &c.pattern).collect();
        assert_eq!(patterns, vec![&pat(&[0, 1]), &pat(&[0, 2]), &pat(&[1, 2])]);
        // Parent indices reference the sorted slice [ {0}, {1}, {2} ].
        assert_eq!((cands[0].left, cands[0].right), (0, 1));
        assert_eq!((cands[1].left, cands[1].right), (0, 2));
        assert_eq!((cands[2].left, cands[2].right), (1, 2));
    }

    #[test]
    fn prunes_candidates_with_unqualified_subsets() {
        // {0,1}, {0,2} join to {0,1,2}, but {1,2} is not qualified → pruned.
        let mut p2 = vec![pat(&[0, 1]), pat(&[0, 2])];
        let cands = generate_candidates(&mut p2);
        assert!(cands.is_empty());
    }

    #[test]
    fn keeps_candidates_with_all_subsets_qualified() {
        let mut p2 = vec![pat(&[0, 1]), pat(&[0, 2]), pat(&[1, 2])];
        let cands = generate_candidates(&mut p2);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].pattern, pat(&[0, 1, 2]));
        // Parents are the two sharing prefix [0]: {0,1} and {0,2}.
        assert_eq!(cands[0].left, 0);
        assert_eq!(cands[0].right, 1);
    }

    #[test]
    fn different_prefixes_do_not_join() {
        // {0,1} and {2,3}: union has length 4 ≠ 3, prefix join ignores them.
        let mut p2 = vec![pat(&[0, 1]), pat(&[2, 3])];
        assert!(generate_candidates(&mut p2).is_empty());
    }

    #[test]
    fn empty_and_singleton_input() {
        let mut empty: Vec<Pattern> = vec![];
        assert!(generate_candidates(&mut empty).is_empty());
        let mut one = vec![pat(&[4])];
        assert!(generate_candidates(&mut one).is_empty());
    }

    #[test]
    fn duplicates_are_merged_before_join() {
        let mut p1 = vec![pat(&[0]), pat(&[0]), pat(&[1])];
        let cands = generate_candidates(&mut p1);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].pattern, pat(&[0, 1]));
    }

    #[test]
    fn level3_join() {
        // All four 2-subsets of {0,1,2,3} minus one: check level-3 joins.
        let mut p2 = vec![
            pat(&[0, 1]),
            pat(&[0, 2]),
            pat(&[0, 3]),
            pat(&[1, 2]),
            pat(&[1, 3]),
            pat(&[2, 3]),
        ];
        let c3 = generate_candidates(&mut p2);
        let got: Vec<&Pattern> = c3.iter().map(|c| &c.pattern).collect();
        assert_eq!(
            got,
            vec![
                &pat(&[0, 1, 2]),
                &pat(&[0, 1, 3]),
                &pat(&[0, 2, 3]),
                &pat(&[1, 2, 3])
            ]
        );

        // Next level: all four 3-subsets qualified → {0,1,2,3} generated.
        let mut p3: Vec<Pattern> = got.into_iter().cloned().collect();
        let c4 = generate_candidates(&mut p3);
        assert_eq!(c4.len(), 1);
        assert_eq!(c4[0].pattern, pat(&[0, 1, 2, 3]));
    }

    #[test]
    fn parent_indices_are_valid_and_union_checks_out() {
        let mut p2 = vec![
            pat(&[0, 1]),
            pat(&[0, 2]),
            pat(&[1, 2]),
            pat(&[0, 3]),
            pat(&[1, 3]),
        ];
        let sorted_expected = {
            let mut s = p2.clone();
            s.sort_unstable();
            s
        };
        let cands = generate_candidates(&mut p2);
        assert_eq!(p2, sorted_expected, "input is sorted in place");
        for c in &cands {
            assert_eq!(p2[c.left].union(&p2[c.right]), c.pattern);
            assert!(c.left < c.right);
        }
    }
}
