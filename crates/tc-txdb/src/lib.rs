//! Transaction-database substrate.
//!
//! Every vertex of a database network carries a transaction database over a
//! global item set `S` (paper §3.1). This crate provides:
//!
//! * [`item`] — interned items and the global [`ItemSpace`];
//! * [`pattern`] — sorted itemsets (themes/patterns) with subset algebra;
//! * [`database`] — [`TransactionDb`], stored *vertically* (item → tidset
//!   bitsets) so that pattern frequency is a word-parallel intersection;
//! * [`eclat`] — depth-first frequent-itemset mining over a single vertex
//!   database, used by the TCS baseline's `ε` pre-filter;
//! * [`apriori`] — the level-wise candidate generation of Algorithm 2;
//! * [`fpc`] — Frequent Pattern Counting, the #P-complete problem the
//!   paper reduces from (Appendix A.1).

pub mod apriori;
pub mod database;
pub mod eclat;
pub mod fpc;
pub mod item;
pub mod pattern;

pub use apriori::{generate_candidates, JoinCandidate};
pub use database::TransactionDb;
pub use eclat::frequent_patterns;
pub use fpc::count_frequent_patterns;
pub use item::{Item, ItemSpace};
pub use pattern::Pattern;
