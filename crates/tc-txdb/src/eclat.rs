//! Depth-first frequent-itemset mining (Eclat) over one transaction DB.
//!
//! The TCS baseline (§4.2) pre-filters candidate themes with a frequency
//! threshold `ε`: the candidate set is
//! `P = {p | ∃ v_i ∈ V, f_i(p) > ε}`. Computing each vertex's frequent
//! patterns is classic frequent-itemset mining; we use the tidset-based
//! depth-first search (Eclat), which plugs directly into the vertical
//! representation of [`TransactionDb`].

use crate::database::TransactionDb;
use crate::item::Item;
use crate::pattern::Pattern;
use tc_util::BitSet;

/// All patterns `p` with `f(p) > min_freq` in `db`, up to `max_len` items.
///
/// `min_freq` is a **strict** lower bound, matching the paper's `f_i(p) > ε`.
/// `max_len = usize::MAX` imposes no length cap. Patterns are returned in
/// lexicographic order; the empty pattern is never reported.
pub fn frequent_patterns(db: &TransactionDb, min_freq: f64, max_len: usize) -> Vec<Pattern> {
    let mut out = Vec::new();
    for_each_frequent_pattern(db, min_freq, max_len, |p, _| out.push(p.clone()));
    out
}

/// Visits every pattern with `f(p) > min_freq` (strict), with its support.
///
/// The visitor receives the pattern and its absolute support. Enumeration is
/// depth-first in item order, so parents are always visited before
/// extensions.
pub fn for_each_frequent_pattern(
    db: &TransactionDb,
    min_freq: f64,
    max_len: usize,
    mut visit: impl FnMut(&Pattern, usize),
) {
    let h = db.num_transactions();
    if h == 0 || max_len == 0 {
        return;
    }
    // Strict threshold: support > min_freq * h  ⟺  support >= floor(min_freq*h) + 1
    // computed in f64 to avoid rounding pitfalls near integral boundaries.
    let min_support_exclusive = min_freq * h as f64;

    let mut items: Vec<Item> = db.items().collect();
    items.sort_unstable();

    // Frequent single items seed the DFS.
    let frequent_items: Vec<(Item, &BitSet)> = items
        .into_iter()
        .filter_map(|i| {
            let ts = db.tidset(i)?;
            (ts.count() as f64 > min_support_exclusive).then_some((i, ts))
        })
        .collect();

    let mut prefix: Vec<Item> = Vec::new();
    dfs(
        &frequent_items,
        0,
        None,
        &mut prefix,
        min_support_exclusive,
        max_len,
        &mut visit,
    );
}

/// Recursive Eclat step.
///
/// `acc` is the tidset of the current prefix (`None` at the root, meaning
/// "all transactions"). For each candidate item at or after `start`, the
/// extension tidset is `acc ∩ tidset(item)`.
fn dfs(
    items: &[(Item, &BitSet)],
    start: usize,
    acc: Option<&BitSet>,
    prefix: &mut Vec<Item>,
    min_support_exclusive: f64,
    max_len: usize,
    visit: &mut impl FnMut(&Pattern, usize),
) {
    for idx in start..items.len() {
        let (item, tidset) = items[idx];
        let extended: BitSet = match acc {
            None => (*tidset).clone(),
            Some(a) => a.intersection(tidset),
        };
        let support = extended.count();
        if support as f64 <= min_support_exclusive {
            continue;
        }
        prefix.push(item);
        let pattern = Pattern::new(prefix.clone());
        visit(&pattern, support);
        if prefix.len() < max_len {
            dfs(
                items,
                idx + 1,
                Some(&extended),
                prefix,
                min_support_exclusive,
                max_len,
                visit,
            );
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(items(ids))
    }

    fn db() -> TransactionDb {
        // 4 transactions; frequencies: {0}:1.0 {1}:0.75 {2}:0.5 {0,1}:0.75
        // {0,2}:0.5 {1,2}:0.25 {0,1,2}:0.25
        TransactionDb::from_transactions([
            items(&[0, 1, 2]),
            items(&[0, 1]),
            items(&[0, 1]),
            items(&[0, 2]),
        ])
    }

    #[test]
    fn mines_all_with_zero_threshold() {
        let got = frequent_patterns(&db(), 0.0, usize::MAX);
        let expect = vec![
            pat(&[0]),
            pat(&[0, 1]),
            pat(&[0, 1, 2]),
            pat(&[0, 2]),
            pat(&[1]),
            pat(&[1, 2]),
            pat(&[2]),
        ];
        assert_eq!(got, expect);
    }

    #[test]
    fn threshold_is_strict() {
        // f({2}) = 0.5 exactly: must be excluded at min_freq = 0.5.
        let got = frequent_patterns(&db(), 0.5, usize::MAX);
        assert_eq!(got, vec![pat(&[0]), pat(&[0, 1]), pat(&[1])]);
    }

    #[test]
    fn max_len_caps_depth() {
        let got = frequent_patterns(&db(), 0.0, 1);
        assert_eq!(got, vec![pat(&[0]), pat(&[1]), pat(&[2])]);
        let got2 = frequent_patterns(&db(), 0.0, 2);
        assert!(got2.contains(&pat(&[0, 1])));
        assert!(!got2.iter().any(|p| p.len() > 2));
    }

    #[test]
    fn supports_reported_correctly() {
        let mut seen = Vec::new();
        for_each_frequent_pattern(&db(), 0.0, usize::MAX, |p, s| seen.push((p.clone(), s)));
        let lookup: std::collections::HashMap<_, _> = seen.into_iter().collect();
        assert_eq!(lookup[&pat(&[0])], 4);
        assert_eq!(lookup[&pat(&[0, 1])], 3);
        assert_eq!(lookup[&pat(&[0, 1, 2])], 1);
    }

    #[test]
    fn empty_db_yields_nothing() {
        assert!(frequent_patterns(&TransactionDb::new(), 0.0, usize::MAX).is_empty());
    }

    #[test]
    fn high_threshold_yields_nothing() {
        assert!(frequent_patterns(&db(), 1.0, usize::MAX).is_empty());
    }

    #[test]
    fn results_match_bruteforce_support() {
        // Oracle: every reported pattern's support from db.support() must
        // clear the threshold, and every itemset over seen items that
        // clears it must be reported.
        let d = db();
        let min_freq = 0.3;
        let got: std::collections::HashSet<Pattern> = frequent_patterns(&d, min_freq, usize::MAX)
            .into_iter()
            .collect();
        let all_items = [Item(0), Item(1), Item(2)];
        for mask in 1u32..8 {
            let p: Pattern = all_items
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &it)| it)
                .collect();
            let frequent = d.frequency(&p) > min_freq;
            assert_eq!(got.contains(&p), frequent, "pattern {p}");
        }
    }

    #[test]
    fn anti_monotone_closure() {
        // Every sub-pattern of a reported pattern is also reported.
        let got: std::collections::HashSet<Pattern> = frequent_patterns(&db(), 0.2, usize::MAX)
            .into_iter()
            .collect();
        for p in &got {
            for sub in p.k_minus_one_subsets() {
                if !sub.is_empty() {
                    assert!(got.contains(&sub), "{sub} missing though {p} present");
                }
            }
        }
    }
}
