//! Patterns (themes): sorted, duplicate-free itemsets.
//!
//! The paper uses *theme* and *pattern* interchangeably (§3.1); a pattern is
//! an itemset `p ⊆ S`. Patterns are kept sorted so subset tests and unions
//! are linear merges, and so the lexicographic order over patterns is the
//! prefix order required by Apriori joins and the set-enumeration tree.

use crate::item::Item;
use tc_util::HeapSize;

/// An immutable sorted itemset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pattern {
    items: Box<[Item]>,
}

impl Pattern {
    /// The empty pattern `∅` (the theme of the whole database network).
    pub fn empty() -> Self {
        Pattern {
            items: Box::new([]),
        }
    }

    /// Builds a pattern from arbitrary items, sorting and deduplicating.
    pub fn new(mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        items.dedup();
        Pattern {
            items: items.into_boxed_slice(),
        }
    }

    /// A single-item pattern.
    pub fn singleton(item: Item) -> Self {
        Pattern {
            items: Box::new([item]),
        }
    }

    /// Number of items (`|p|`, the pattern *length*).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` for the empty pattern.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Iterates the items in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Item> + '_ {
        self.items.iter().copied()
    }

    /// Membership test (binary search).
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// `true` if `self ⊆ other` (linear merge).
    pub fn is_subset_of(&self, other: &Pattern) -> bool {
        let mut j = 0;
        for &x in self.items.iter() {
            loop {
                if j == other.items.len() {
                    return false;
                }
                match other.items[j].cmp(&x) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        break;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
        }
        true
    }

    /// `self ∪ other` (linear merge).
    pub fn union(&self, other: &Pattern) -> Pattern {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (a, b) = (&self.items, &other.items);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Pattern {
            items: out.into_boxed_slice(),
        }
    }

    /// `self ∩ other` (linear merge).
    pub fn intersection(&self, other: &Pattern) -> Pattern {
        let mut out = Vec::new();
        let (a, b) = (&self.items, &other.items);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Pattern {
            items: out.into_boxed_slice(),
        }
    }

    /// A new pattern with `item` added (no-op if already present).
    pub fn with_item(&self, item: Item) -> Pattern {
        match self.items.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut out = Vec::with_capacity(self.len() + 1);
                out.extend_from_slice(&self.items[..pos]);
                out.push(item);
                out.extend_from_slice(&self.items[pos..]);
                Pattern {
                    items: out.into_boxed_slice(),
                }
            }
        }
    }

    /// All sub-patterns obtained by removing exactly one item — the
    /// `(k-1)`-sub-patterns checked by Algorithm 2's Apriori pruning.
    pub fn k_minus_one_subsets(&self) -> impl Iterator<Item = Pattern> + '_ {
        (0..self.items.len()).map(move |skip| {
            let mut out = Vec::with_capacity(self.items.len() - 1);
            for (i, &item) in self.items.iter().enumerate() {
                if i != skip {
                    out.push(item);
                }
            }
            Pattern {
                items: out.into_boxed_slice(),
            }
        })
    }

    /// The items except the last — the Apriori join *prefix*.
    pub fn prefix(&self) -> &[Item] {
        self.items.split_last().map_or(&[], |(_, rest)| rest)
    }

    /// The largest item, if nonempty.
    pub fn last(&self) -> Option<Item> {
        self.items.last().copied()
    }
}

impl From<Vec<Item>> for Pattern {
    fn from(v: Vec<Item>) -> Self {
        Pattern::new(v)
    }
}

impl From<&[Item]> for Pattern {
    fn from(v: &[Item]) -> Self {
        Pattern::new(v.to_vec())
    }
}

impl FromIterator<Item> for Pattern {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        Pattern::new(iter.into_iter().collect())
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl HeapSize for Pattern {
    fn heap_size(&self) -> usize {
        self.items.len() * std::mem::size_of::<Item>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| Item(i)).collect())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let q = p(&[3, 1, 2, 1, 3]);
        assert_eq!(q.items(), &[Item(1), Item(2), Item(3)]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn empty_pattern() {
        let e = Pattern::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_subset_of(&p(&[1, 2])));
        assert_eq!(e.last(), None);
        assert_eq!(e.prefix(), &[]);
    }

    #[test]
    fn subset_tests() {
        assert!(p(&[1, 3]).is_subset_of(&p(&[1, 2, 3])));
        assert!(!p(&[1, 4]).is_subset_of(&p(&[1, 2, 3])));
        assert!(p(&[2]).is_subset_of(&p(&[1, 2, 3])));
        assert!(!p(&[0]).is_subset_of(&p(&[1, 2, 3])));
        assert!(p(&[1, 2, 3]).is_subset_of(&p(&[1, 2, 3])));
        assert!(!p(&[1, 2, 3]).is_subset_of(&p(&[1, 2])));
    }

    #[test]
    fn union_merges() {
        assert_eq!(p(&[1, 3]).union(&p(&[2, 3, 5])), p(&[1, 2, 3, 5]));
        assert_eq!(p(&[]).union(&p(&[7])), p(&[7]));
        assert_eq!(p(&[1]).union(&p(&[1])), p(&[1]));
    }

    #[test]
    fn intersection_merges() {
        assert_eq!(p(&[1, 2, 3]).intersection(&p(&[2, 3, 4])), p(&[2, 3]));
        assert_eq!(p(&[1]).intersection(&p(&[2])), Pattern::empty());
    }

    #[test]
    fn with_item_inserts_in_order() {
        assert_eq!(p(&[1, 3]).with_item(Item(2)), p(&[1, 2, 3]));
        assert_eq!(p(&[1, 3]).with_item(Item(0)), p(&[0, 1, 3]));
        assert_eq!(p(&[1, 3]).with_item(Item(5)), p(&[1, 3, 5]));
        assert_eq!(p(&[1, 3]).with_item(Item(3)), p(&[1, 3]));
    }

    #[test]
    fn k_minus_one_subsets_enumerates_all() {
        let subs: Vec<Pattern> = p(&[1, 2, 3]).k_minus_one_subsets().collect();
        assert_eq!(subs, vec![p(&[2, 3]), p(&[1, 3]), p(&[1, 2])]);
        let single: Vec<Pattern> = p(&[9]).k_minus_one_subsets().collect();
        assert_eq!(single, vec![Pattern::empty()]);
    }

    #[test]
    fn prefix_and_last() {
        let q = p(&[1, 2, 5]);
        assert_eq!(q.prefix(), &[Item(1), Item(2)]);
        assert_eq!(q.last(), Some(Item(5)));
    }

    #[test]
    fn lexicographic_order() {
        let mut v = vec![p(&[2]), p(&[1, 2]), p(&[1]), p(&[1, 3])];
        v.sort();
        assert_eq!(v, vec![p(&[1]), p(&[1, 2]), p(&[1, 3]), p(&[2])]);
    }

    #[test]
    fn contains_binary_search() {
        let q = p(&[1, 4, 9]);
        assert!(q.contains(Item(4)));
        assert!(!q.contains(Item(5)));
    }

    #[test]
    fn display_format() {
        assert_eq!(p(&[1, 2]).to_string(), "{i1,i2}");
        assert_eq!(Pattern::empty().to_string(), "{}");
    }

    #[test]
    fn from_iterator() {
        let q: Pattern = [Item(3), Item(1)].into_iter().collect();
        assert_eq!(q, p(&[1, 3]));
    }
}
