//! Property tests for the transaction-database substrate: pattern algebra
//! against a `BTreeSet` model, vertical frequency against a horizontal
//! scan, Eclat against brute-force enumeration, Apriori joins against the
//! definitional pair scan.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tc_txdb::{frequent_patterns, generate_candidates, Item, Pattern, TransactionDb};

fn arb_items(max_id: u32, len: usize) -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec((0..max_id).prop_map(Item), 0..len)
}

fn arb_transactions() -> impl Strategy<Value = Vec<Vec<Item>>> {
    prop::collection::vec(arb_items(6, 5), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ------------------------------------------------ pattern algebra

    #[test]
    fn pattern_union_matches_set_model(a in arb_items(10, 6), b in arb_items(10, 6)) {
        let pa = Pattern::new(a.clone());
        let pb = Pattern::new(b.clone());
        let sa: BTreeSet<Item> = a.into_iter().collect();
        let sb: BTreeSet<Item> = b.into_iter().collect();
        let union: Vec<Item> = sa.union(&sb).copied().collect();
        let joined = pa.union(&pb);
        prop_assert_eq!(joined.items(), &union[..]);
    }

    #[test]
    fn pattern_intersection_matches_set_model(a in arb_items(10, 6), b in arb_items(10, 6)) {
        let pa = Pattern::new(a.clone());
        let pb = Pattern::new(b.clone());
        let sa: BTreeSet<Item> = a.into_iter().collect();
        let sb: BTreeSet<Item> = b.into_iter().collect();
        let inter: Vec<Item> = sa.intersection(&sb).copied().collect();
        let met = pa.intersection(&pb);
        prop_assert_eq!(met.items(), &inter[..]);
    }

    #[test]
    fn pattern_subset_matches_set_model(a in arb_items(8, 5), b in arb_items(8, 5)) {
        let pa = Pattern::new(a.clone());
        let pb = Pattern::new(b.clone());
        let sa: BTreeSet<Item> = a.into_iter().collect();
        let sb: BTreeSet<Item> = b.into_iter().collect();
        prop_assert_eq!(pa.is_subset_of(&pb), sa.is_subset(&sb));
    }

    #[test]
    fn with_item_inserts(a in arb_items(10, 6), x in (0u32..10).prop_map(Item)) {
        let p = Pattern::new(a.clone());
        let q = p.with_item(x);
        prop_assert!(q.contains(x));
        prop_assert!(p.is_subset_of(&q));
        prop_assert!(q.len() <= p.len() + 1);
        // Sorted, duplicate-free.
        prop_assert!(q.items().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn k_minus_one_subsets_are_subsets(a in arb_items(8, 6)) {
        let p = Pattern::new(a);
        for sub in p.k_minus_one_subsets() {
            prop_assert_eq!(sub.len() + 1, p.len());
            prop_assert!(sub.is_subset_of(&p));
        }
        prop_assert_eq!(p.k_minus_one_subsets().count(), p.len());
    }

    // ------------------------------------------------ frequency model

    #[test]
    fn support_matches_horizontal_scan(ts in arb_transactions(), q in arb_items(6, 4)) {
        let db = TransactionDb::from_transactions(ts.iter().cloned());
        let pattern = Pattern::new(q);
        // Horizontal oracle: count transactions whose item set ⊇ pattern.
        let brute = ts
            .iter()
            .filter(|t| {
                let set: BTreeSet<Item> = t.iter().copied().collect();
                pattern.iter().all(|i| set.contains(&i))
            })
            .count();
        prop_assert_eq!(db.support(&pattern), brute);
        let f = db.frequency(&pattern);
        prop_assert!((f - brute as f64 / ts.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn frequency_anti_monotone(ts in arb_transactions(), q in arb_items(6, 4), extra in (0u32..6).prop_map(Item)) {
        let db = TransactionDb::from_transactions(ts.iter().cloned());
        let p = Pattern::new(q);
        let sup = p.with_item(extra);
        prop_assert!(db.frequency(&sup) <= db.frequency(&p) + 1e-12);
    }

    // ------------------------------------------------ Eclat vs brute force

    #[test]
    fn eclat_matches_bruteforce(ts in arb_transactions(), min_freq in 0.0f64..0.9) {
        let db = TransactionDb::from_transactions(ts.iter().cloned());
        let mined: BTreeSet<Pattern> =
            frequent_patterns(&db, min_freq, usize::MAX).into_iter().collect();
        // Brute force over all subsets of the 6-item universe.
        for mask in 1u32..64 {
            let p: Pattern = (0..6u32)
                .filter(|i| mask & (1 << i) != 0)
                .map(Item)
                .collect();
            let frequent = db.frequency(&p) > min_freq;
            prop_assert_eq!(
                mined.contains(&p),
                frequent,
                "pattern {} freq {}", &p, db.frequency(&p)
            );
        }
    }

    // ------------------------------------------------ Apriori join oracle

    #[test]
    fn apriori_join_matches_pairwise_definition(seed in prop::collection::btree_set(0u32..6, 1..5)) {
        // Qualified length-2 patterns: all pairs over `seed` items.
        let items: Vec<Item> = seed.into_iter().map(Item).collect();
        let mut qualified: Vec<Pattern> = Vec::new();
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                qualified.push(Pattern::new(vec![items[i], items[j]]));
            }
        }
        if qualified.len() < 2 {
            return Ok(());
        }
        let mut input = qualified.clone();
        let produced: BTreeSet<Pattern> = generate_candidates(&mut input)
            .into_iter()
            .map(|c| c.pattern)
            .collect();

        // Definition (Algorithm 2): unions of pairs with |p ∪ q| = 3 whose
        // every 2-sub-pattern is qualified.
        let qset: BTreeSet<Pattern> = qualified.iter().cloned().collect();
        let mut expected = BTreeSet::new();
        for a in &qualified {
            for b in &qualified {
                if a < b {
                    let u = a.union(b);
                    if u.len() == 3 && u.k_minus_one_subsets().all(|s| qset.contains(&s)) {
                        expected.insert(u);
                    }
                }
            }
        }
        prop_assert_eq!(produced, expected);
    }
}
