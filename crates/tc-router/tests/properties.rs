//! The sharding exactness contract, in-process: for ANY partition count,
//! scattering a query across the shard segments (with the router's
//! QBA→QUERY(universe) rewrite) and merging with [`merge_responses`]
//! yields answers element-identical to the unsharded [`SegmentTcTree`] —
//! same trusses in the same order, same `retrieved`, same `visited`.
//!
//! This is the socket-free core of what CI's `router-smoke` job asserts
//! with real daemons and curl: the fan-out tier adds throughput, never
//! approximation.

use proptest::prelude::*;
use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder};
use tc_index::TcTreeBuilder;
use tc_router::merge_responses;
use tc_serve::QueryResponse;
use tc_store::shardmap::{level1_items, split_tree, HashScheme};
use tc_store::SegmentTcTree;
use tc_txdb::{Item, Pattern};

const MAX_V: u32 = 7;
const MAX_ITEMS: u32 = 5;

/// Builds a valid network from arbitrary raw parts: endpoints are reduced
/// mod the vertex count, self loops dropped, transactions deduplicated.
fn build_network(n: u32, raw_edges: &[(u32, u32)], raw_txs: &[(u32, Vec<u32>)]) -> DatabaseNetwork {
    let mut b = DatabaseNetworkBuilder::new();
    let items: Vec<Item> = (0..MAX_ITEMS)
        .map(|i| b.intern_item(&format!("w{i}")))
        .collect();
    for &(u, v) in raw_edges {
        let (u, v) = (u % n, v % n);
        if u != v {
            b.add_edge(u, v);
        }
    }
    for (v, tx) in raw_txs {
        let mut ids: Vec<u32> = tx.iter().map(|&i| i % MAX_ITEMS).collect();
        ids.sort_unstable();
        ids.dedup();
        let tx: Vec<Item> = ids.into_iter().map(|i| items[i as usize]).collect();
        b.add_transaction(v % n, &tx);
    }
    b.ensure_vertex(n - 1);
    b.build().unwrap()
}

fn segment(tree: &tc_index::TcTree) -> SegmentTcTree {
    let mut buf = Vec::new();
    tc_store::save_tree_segment(tree, &mut buf).unwrap();
    SegmentTcTree::from_bytes(buf).unwrap()
}

/// What the router does per request, minus the sockets: run the
/// (rewritten) query on every shard segment and merge.
fn sharded_answer(shards: &[SegmentTcTree], q: &Pattern, alpha: f64) -> QueryResponse {
    let parts = shards
        .iter()
        .map(|s| QueryResponse::from_result(&s.query(q, alpha).unwrap()))
        .collect();
    merge_responses(parts)
}

/// Strips the timing field, the one value the contract excludes.
fn timeless(mut r: QueryResponse) -> QueryResponse {
    r.elapsed_secs = 0.0;
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_answers_equal_unsharded_for_any_partition_count(
        n in 3u32..MAX_V,
        raw_edges in prop::collection::vec((0u32..64, 0u32..64), 4..28),
        raw_txs in prop::collection::vec((0u32..64, prop::collection::vec(0u32..64, 1..4)), 4..40),
        shard_count in 1u32..=5,
        alpha in 0.0f64..2.0,
        raw_pattern in prop::collection::vec(0u32..MAX_ITEMS, 0..4),
    ) {
        let net = build_network(n, &raw_edges, &raw_txs);
        let tree = TcTreeBuilder { threads: 1, max_len: usize::MAX }.build(&net);
        let unsharded = segment(&tree);
        let shards: Vec<SegmentTcTree> = split_tree(&tree, HashScheme::Crc32Item, shard_count)
            .iter()
            .map(segment)
            .collect();
        // The router's QBA rewrite: query every shard with the FULL
        // tree's level-1 universe (from the shard map), not the shard's
        // own root children.
        let universe: Pattern = level1_items(&tree).iter().map(|&i| Item(i)).collect();

        // QBA at the sampled alpha and at 0 (retrieve everything).
        for a in [alpha, 0.0] {
            let want = timeless(QueryResponse::from_result(&unsharded.query_by_alpha(a).unwrap()));
            let got = timeless(sharded_answer(&shards, &universe, a));
            prop_assert_eq!(&got, &want, "QBA({}) diverged at {} shards", a, shard_count);
        }

        // QBP over a random sub-pattern (the wire passes it unchanged).
        let mut ids = raw_pattern;
        ids.sort_unstable();
        ids.dedup();
        let q: Pattern = ids.iter().map(|&i| Item(i)).collect();
        let want = timeless(QueryResponse::from_result(&unsharded.query_by_pattern(&q).unwrap()));
        let got = timeless(sharded_answer(&shards, &q, 0.0));
        prop_assert_eq!(&got, &want, "QBP diverged at {} shards", shard_count);

        // The combined form at the sampled alpha.
        let want = timeless(QueryResponse::from_result(&unsharded.query(&q, alpha).unwrap()));
        let got = timeless(sharded_answer(&shards, &q, alpha));
        prop_assert_eq!(&got, &want, "QUERY diverged at {} shards", shard_count);
    }
}
