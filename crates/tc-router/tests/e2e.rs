//! End-to-end router tests over real sockets: N shard daemons + the
//! gateway, answers compared against the unsharded segment, degraded
//! mode with a killed daemon (503 vs `--partial`), and shard-map
//! hot-reload through the handle.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use tc_core::DatabaseNetworkBuilder;
use tc_index::{TcTree, TcTreeBuilder};
use tc_router::{Router, RouterConfig};
use tc_serve::{QueryResponse, ServeConfig, Server, ServerHandle};
use tc_store::shardmap::{level1_items, split_tree, HashScheme, ShardEntry, ShardMap};
use tc_store::SegmentTcTree;

/// A fixture with several level-1 items, so a 3-way split actually
/// spreads subtrees across shards.
fn sample_tree() -> TcTree {
    let mut b = DatabaseNetworkBuilder::new();
    let x = b.intern_item("x");
    let y = b.intern_item("y");
    let z = b.intern_item("z");
    let w = b.intern_item("w");
    for v in 0..5u32 {
        for _ in 0..3 {
            b.add_transaction(v, &[x, y]);
        }
        b.add_transaction(v, &[x, z]);
        b.add_transaction(v, &[y, w]);
    }
    for (u, v) in [
        (0, 1),
        (1, 2),
        (0, 2),
        (0, 3),
        (1, 3),
        (2, 3),
        (3, 4),
        (2, 4),
    ] {
        b.add_edge(u, v);
    }
    TcTreeBuilder::default().build(&b.build().unwrap())
}

fn segment(tree: &TcTree) -> SegmentTcTree {
    let mut buf = Vec::new();
    tc_store::save_tree_segment(tree, &mut buf).unwrap();
    SegmentTcTree::from_bytes(buf).unwrap()
}

struct Daemon {
    handle: ServerHandle,
    thread: std::thread::JoinHandle<()>,
}

/// Boots one daemon per shard and returns (map, daemons).
fn boot_shards(tree: &TcTree, shard_count: u32) -> (ShardMap, Vec<Daemon>) {
    let mut entries = Vec::new();
    let mut daemons = Vec::new();
    for shard in split_tree(tree, HashScheme::Crc32Item, shard_count) {
        let server = Server::bind(segment(&shard), "127.0.0.1:0", ServeConfig::default()).unwrap();
        entries.push(ShardEntry {
            addr: server.local_addr().unwrap().to_string(),
            path: String::new(),
        });
        let handle = server.handle();
        let thread = std::thread::spawn(move || {
            server.run().unwrap();
        });
        daemons.push(Daemon { handle, thread });
    }
    let map = ShardMap {
        scheme: HashScheme::Crc32Item,
        items: level1_items(tree),
        shards: entries,
    };
    (map, daemons)
}

struct Gateway {
    addr: String,
    handle: tc_router::RouterHandle,
    thread: std::thread::JoinHandle<tc_router::RouterStats>,
}

fn boot_router(map: ShardMap, cfg: RouterConfig) -> Gateway {
    let router = Router::bind(map, "127.0.0.1:0", cfg).unwrap();
    let addr = router.local_addr().unwrap().to_string();
    let handle = router.handle();
    let thread = std::thread::spawn(move || router.run().unwrap());
    Gateway {
        addr,
        handle,
        thread,
    }
}

/// A raw one-shot HTTP GET that keeps the response headers visible
/// (tc-serve's `HttpClient` drops them, and the partial contract lives
/// in a header).
fn raw_get(addr: &str, path: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).unwrap();
    (status, headers, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    let name = name.to_ascii_lowercase();
    headers
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v.as_str())
}

/// The expected body for a healthy router: the unsharded answer, with
/// the router's own `secs` spliced in. Returns (prefix, suffix) around
/// the timing field so the comparison is exact everywhere else.
fn split_secs(body: &str) -> (String, String) {
    let (head, rest) = body.split_once("\"secs\":").expect("body has secs");
    let (_, tail) = rest.split_once(",\"trusses\":").expect("body has trusses");
    (head.to_string(), tail.to_string())
}

#[test]
fn router_answers_match_unsharded_and_degrade_as_configured() {
    let tree = sample_tree();
    let unsharded = segment(&tree);
    let (map, mut daemons) = boot_shards(&tree, 3);

    // Strict router (no --partial) plus a permissive one on the same map.
    let strict = boot_router(map.clone(), RouterConfig::default());
    let partial = boot_router(
        map.clone(),
        RouterConfig {
            partial: true,
            ..RouterConfig::default()
        },
    );

    // ---- healthy: byte-identical to the unsharded segment except secs ----
    let q01: tc_txdb::Pattern = [0u32, 1].iter().map(|&i| tc_txdb::Item(i)).collect();
    let q0: tc_txdb::Pattern = std::iter::once(tc_txdb::Item(0)).collect();
    let cases = [
        ("/qba?alpha=0.0", unsharded.query_by_alpha(0.0).unwrap()),
        ("/qba?alpha=0.2", unsharded.query_by_alpha(0.2).unwrap()),
        ("/qbp?items=0,1", unsharded.query(&q01, 0.0).unwrap()),
        (
            "/query?items=0&alpha=0.1",
            unsharded.query(&q0, 0.1).unwrap(),
        ),
    ];
    for (path, local) in &cases {
        let want = QueryResponse::from_result(local).encode_json();
        let (status, headers, body) = raw_get(&strict.addr, path);
        assert_eq!(status, 200, "{path}: {body}");
        assert!(header(&headers, "X-TC-Partial-Shards").is_none(), "{path}");
        assert_eq!(split_secs(&body), split_secs(&want), "{path}");
    }

    // ---- batch: per-entry objects match the unsharded answers ----
    let mut client = tc_serve::HttpClient::connect(&strict.addr).unwrap();
    let resp = client
        .post("/query", r#"[{"alpha":0.0},{"items":[0,1]}]"#)
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.body);
    assert!(resp.body.contains("\"count\":2"));
    let want0 = QueryResponse::from_result(&unsharded.query_by_alpha(0.0).unwrap());
    assert!(
        resp.body
            .contains(&format!("\"retrieved\":{}", want0.retrieved)),
        "{}",
        resp.body
    );

    // ---- healthz + metrics ----
    let (status, _, body) = raw_get(&strict.addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"shards\":3"), "{body}");
    let (status, _, text) = raw_get(&strict.addr, "/metrics");
    assert_eq!(status, 200);
    for needle in [
        "# TYPE tcrouter_requests_total counter",
        "tcrouter_fanout_total{shard=\"0\"}",
        "tcrouter_shard_latency_seconds_bucket{shard=\"2\",le=\"+Inf\"}",
        "tcrouter_shards 3",
        "tcrouter_shards_down 0",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }

    // ---- kill one daemon: strict answers 503, partial answers 200 ----
    let victim = daemons.remove(1);
    victim.handle.shutdown();
    victim.thread.join().unwrap();

    let (status, _, body) = raw_get(&strict.addr, "/qba?alpha=0.0");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("unavailable"), "{body}");
    let (_, _, text) = raw_get(&strict.addr, "/metrics");
    assert!(text.contains("tcrouter_shards_down 1"), "{text}");

    let (status, headers, body) = raw_get(&partial.addr, "/qba?alpha=0.0");
    assert_eq!(status, 200, "{body}");
    assert_eq!(header(&headers, "X-TC-Partial-Shards"), Some("1"), "{body}");
    // The partial body is the live shards' union: a strict subset.
    let full = QueryResponse::from_result(&unsharded.query_by_alpha(0.0).unwrap());
    let got_retrieved: usize = body
        .split("\"retrieved\":")
        .nth(1)
        .unwrap()
        .split(',')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(got_retrieved < full.retrieved, "{body}");

    // ---- teardown ----
    assert!(strict.handle.stats().fanout > 0);
    strict.handle.shutdown();
    partial.handle.shutdown();
    strict.thread.join().unwrap();
    partial.thread.join().unwrap();
    for d in daemons {
        d.handle.shutdown();
        d.thread.join().unwrap();
    }
}

#[test]
fn reload_swaps_the_map_and_survives_a_corrupt_one() {
    let tree = sample_tree();
    let (map, daemons) = boot_shards(&tree, 2);

    let dir = std::env::temp_dir().join(format!("tc_router_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let map_path = dir.join("shards.tcmap");
    map.save_to_path(&map_path).unwrap();

    let gateway = boot_router(
        map.clone(),
        RouterConfig {
            map_path: Some(map_path.clone()),
            ..RouterConfig::default()
        },
    );

    // A good reload swaps in the re-read map.
    assert_eq!(gateway.handle.reload().unwrap(), (2, map.items.len()));

    // A corrupt map is refused; the old layout keeps serving.
    let mut bytes = std::fs::read(&map_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&map_path, &bytes).unwrap();
    assert!(gateway.handle.reload().is_err());
    let (status, _, body) = raw_get(&gateway.addr, "/qba?alpha=0.0");
    assert_eq!(status, 200, "{body}");
    let metrics = gateway.handle.prometheus();
    assert!(
        metrics.contains("tcrouter_reloads_total{outcome=\"ok\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("tcrouter_reloads_total{outcome=\"error\"} 1"),
        "{metrics}"
    );

    gateway.handle.shutdown();
    gateway.thread.join().unwrap();
    for d in daemons {
        d.handle.shutdown();
        d.thread.join().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}
