//! Router-side counters and the `tcrouter_*` Prometheus exposition.
//!
//! The router reuses tc-serve's [`Histogram`] and bucket grid so shard
//! daemons and the gateway can be graphed on one axis; only the metric
//! names differ (`tcrouter_` prefix, plus per-shard labels the daemons
//! cannot know).

use crate::Shards;
use std::sync::atomic::{AtomicU64, Ordering};
use tc_serve::metrics::{HTTP_CODES, LATENCY_BUCKETS_SECS};
use tc_serve::Histogram;

/// Counters, gauges, and per-verb latency histograms for one router.
#[derive(Default)]
pub(crate) struct RouterMetrics {
    /// Scatter-gather requests, by verb.
    pub qba: AtomicU64,
    pub qbp: AtomicU64,
    pub query: AtomicU64,
    pub batch: AtomicU64,
    /// `/healthz` hits (`/metrics` is deliberately uncounted: scraping
    /// must not move what it measures).
    pub healthz: AtomicU64,
    /// Malformed requests (bad params, bad JSON, oversized frames).
    pub protocol_errors: AtomicU64,
    /// Requests refused by the per-client token bucket.
    pub rate_limited: AtomicU64,
    /// 200-responses served with shards missing (`--partial`).
    pub partial_responses: AtomicU64,
    /// Successful / failed shard-map reloads (SIGHUP or handle).
    pub reloads: AtomicU64,
    pub reload_failures: AtomicU64,
    /// Gauge: shards that failed in the most recent scatter.
    pub shards_down: AtomicU64,
    /// Responses by status code, positionally matching [`HTTP_CODES`].
    pub http_responses: [AtomicU64; HTTP_CODES.len()],
    /// End-to-end router latency (scatter + merge), by verb.
    pub qba_latency: Histogram,
    pub qbp_latency: Histogram,
    pub query_latency: Histogram,
    pub batch_latency: Histogram,
}

impl RouterMetrics {
    /// Counts one response under its status code (unknown codes land in
    /// the 500 bucket, mirroring tc-serve).
    pub fn count_http_response(&self, code: u16) {
        // Fold unknown codes onto 500; if 500 itself ever left the list,
        // fold onto the last slot rather than panic in a request path.
        let fold = HTTP_CODES
            .iter()
            .position(|&c| c == 500)
            .unwrap_or(HTTP_CODES.len() - 1);
        let idx = HTTP_CODES.iter().position(|&c| c == code).unwrap_or(fold);
        self.http_responses[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus text exposition (`GET /metrics`).
    pub fn render_prometheus(&self, inflight: u64, shards: &Shards) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::with_capacity(4096);
        let family =
            |out: &mut String, name: &str, kind: &str, help: &str, series: &[(String, u64)]| {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
                for (labels, value) in series {
                    out.push_str(&format!("{name}{labels} {value}\n"));
                }
            };

        family(
            &mut out,
            "tcrouter_requests_total",
            "counter",
            "Scatter-gather requests accepted, by verb.",
            &[
                ("{verb=\"qba\"}".into(), load(&self.qba)),
                ("{verb=\"qbp\"}".into(), load(&self.qbp)),
                ("{verb=\"query\"}".into(), load(&self.query)),
                ("{verb=\"batch\"}".into(), load(&self.batch)),
                ("{verb=\"healthz\"}".into(), load(&self.healthz)),
            ],
        );
        family(
            &mut out,
            "tcrouter_http_responses_total",
            "counter",
            "Responses written, by status code.",
            &HTTP_CODES
                .iter()
                .zip(&self.http_responses)
                .map(|(code, n)| (format!("{{code=\"{code}\"}}"), load(n)))
                .collect::<Vec<_>>(),
        );
        family(
            &mut out,
            "tcrouter_requests_rejected_total",
            "counter",
            "Requests refused before fan-out, by reason.",
            &[
                ("{reason=\"rate_limited\"}".into(), load(&self.rate_limited)),
                ("{reason=\"protocol\"}".into(), load(&self.protocol_errors)),
            ],
        );
        family(
            &mut out,
            "tcrouter_partial_responses_total",
            "counter",
            "Responses served with one or more shards missing (--partial).",
            &[(String::new(), load(&self.partial_responses))],
        );
        family(
            &mut out,
            "tcrouter_reloads_total",
            "counter",
            "Shard-map reloads, by outcome.",
            &[
                ("{outcome=\"ok\"}".into(), load(&self.reloads)),
                ("{outcome=\"error\"}".into(), load(&self.reload_failures)),
            ],
        );
        family(
            &mut out,
            "tcrouter_shards",
            "gauge",
            "Shards in the active map.",
            &[(String::new(), shards.pools.len() as u64)],
        );
        family(
            &mut out,
            "tcrouter_shards_down",
            "gauge",
            "Shards that failed in the most recent scatter (degraded mode when > 0).",
            &[(String::new(), load(&self.shards_down))],
        );
        family(
            &mut out,
            "tcrouter_inflight_sessions",
            "gauge",
            "HTTP sessions currently admitted.",
            &[(String::new(), inflight)],
        );
        family(
            &mut out,
            "tcrouter_fanout_total",
            "counter",
            "Shard RPCs attempted, by shard.",
            &shards
                .pools
                .iter()
                .map(|p| (format!("{{shard=\"{}\"}}", p.id), load(&p.fanout)))
                .collect::<Vec<_>>(),
        );
        family(
            &mut out,
            "tcrouter_shard_errors_total",
            "counter",
            "Shard RPCs that failed at the transport layer, by shard.",
            &shards
                .pools
                .iter()
                .map(|p| (format!("{{shard=\"{}\"}}", p.id), load(&p.errors)))
                .collect::<Vec<_>>(),
        );
        for pool in &shards.pools {
            render_histogram(
                &mut out,
                "tcrouter_shard_latency_seconds",
                "Shard RPC round-trip latency, by shard.",
                &format!("shard=\"{}\"", pool.id),
                &pool.latency,
            );
        }
        for (verb, hist) in [
            ("qba", &self.qba_latency),
            ("qbp", &self.qbp_latency),
            ("query", &self.query_latency),
            ("batch", &self.batch_latency),
        ] {
            render_histogram(
                &mut out,
                "tcrouter_request_latency_seconds",
                "End-to-end router latency (scatter + merge), by verb.",
                &format!("verb=\"{verb}\""),
                hist,
            );
        }
        out
    }
}

/// Renders one labelled series of a histogram family, emitting the
/// HELP/TYPE header before the family's first series only.
fn render_histogram(out: &mut String, name: &str, help: &str, label: &str, h: &Histogram) {
    if !out.contains(&format!("# TYPE {name} ")) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    }
    let cumulative = h.cumulative_buckets();
    for (bound, cum) in LATENCY_BUCKETS_SECS.iter().zip(&cumulative) {
        out.push_str(&format!("{name}_bucket{{{label},le=\"{bound}\"}} {cum}\n"));
    }
    out.push_str(&format!(
        "{name}_bucket{{{label},le=\"+Inf\"}} {}\n",
        cumulative.last().copied().unwrap_or(0)
    ));
    out.push_str(&format!("{name}_sum{{{label}}} {}\n", h.sum_secs()));
    out.push_str(&format!("{name}_count{{{label}}} {}\n", h.count()));
}
