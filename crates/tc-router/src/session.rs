//! One admitted HTTP session: parse, rate-limit, route, scatter-gather.
//!
//! The loop is a lean sibling of tc-serve's gateway session — same frame
//! caps, same ticked reads against shutdown and the idle clock, same
//! route table — but every query handler fans out to the shard daemons
//! instead of walking a local segment, and responses may carry the
//! `X-TC-Partial-Shards` header when `--partial` served around a down
//! shard.

use crate::{Gathered, Inner};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};
use tc_serve::http::{parse_batch_specs, parse_items_qs, reason_phrase, require_param};
use tc_serve::protocol::{encode_error, parse_alpha};
use tc_serve::server::READ_TICK;
use tc_serve::QuerySpec;

/// Longest accepted request or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted `POST /query` body, in bytes.
const MAX_BODY: usize = 1024 * 1024;

/// JSON content type for API responses.
const CT_JSON: &str = "application/json";
/// The Prometheus text exposition content type.
const CT_METRICS: &str = "text/plain; version=0.0.4";

/// The header naming shards a `--partial` response is missing.
pub(crate) const PARTIAL_HEADER: &str = "X-TC-Partial-Shards";

/// One routed response: status, body, and (for partial answers) the
/// down-shard ids to surface in [`PARTIAL_HEADER`].
pub(crate) struct Reply {
    code: u16,
    content_type: &'static str,
    body: String,
    partial: Option<String>,
}

impl Reply {
    fn new(code: u16, content_type: &'static str, body: String) -> Reply {
        Reply {
            code,
            content_type,
            body,
            partial: None,
        }
    }
}

fn json_err(msg: &str) -> String {
    encode_error(msg, true)
}

/// Writes one complete response and counts it.
fn respond(
    inner: &Inner,
    stream: &mut TcpStream,
    reply: &Reply,
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        reply.code,
        reason_phrase(reply.code),
        reply.content_type,
        reply.body.len()
    );
    if reply.code == 429 || reply.code == 503 {
        head.push_str("Retry-After: 1\r\n");
    }
    if let Some(shards) = &reply.partial {
        head.push_str(&format!("{PARTIAL_HEADER}: {shards}\r\n"));
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    inner.metrics.count_http_response(reply.code);
    stream.write_all(head.as_bytes())?;
    stream.write_all(reply.body.as_bytes())
}

/// The admission-control rejection, written straight from the accept
/// loop (the session was never spawned).
pub(crate) fn write_busy_503(
    inner: &Inner,
    stream: &mut TcpStream,
    reason: &str,
) -> std::io::Result<()> {
    let reply = Reply::new(503, CT_JSON, json_err(reason));
    respond(inner, stream, &reply, true)
}

/// A socket reader that ticks: blocked reads wake every [`READ_TICK`] to
/// re-check the shutdown flag and the idle clock.
struct TickReader<'a> {
    reader: BufReader<TcpStream>,
    inner: &'a Inner,
    idle: Duration,
}

/// Why a ticked read stopped short of data.
enum ReadStop {
    Eof,
    Shutdown,
    IdleTimeout,
    TooLong,
}

impl TickReader<'_> {
    /// Reads one `\n`-terminated line (CRLF tolerated), stripped, with
    /// the total buffered bytes bounded by `MAX_LINE + 2`.
    fn read_line(&mut self, line: &mut String) -> std::io::Result<Result<(), ReadStop>> {
        line.clear();
        let mut buf = Vec::new();
        loop {
            let budget = (MAX_LINE + 2).saturating_sub(buf.len()) as u64;
            if budget == 0 {
                return Ok(Err(ReadStop::TooLong));
            }
            match (&mut self.reader).take(budget).read_until(b'\n', &mut buf) {
                Ok(0) => {
                    return Ok(Err(if buf.is_empty() {
                        ReadStop::Eof
                    } else {
                        ReadStop::Shutdown // mid-line EOF: nothing to answer
                    }));
                }
                Ok(_) => {
                    if buf.last() != Some(&b'\n') {
                        continue; // budget spent mid-line → TooLong above
                    }
                    self.idle = Duration::ZERO;
                    while matches!(buf.last(), Some(b'\n' | b'\r')) {
                        buf.pop();
                    }
                    if buf.len() > MAX_LINE {
                        return Ok(Err(ReadStop::TooLong));
                    }
                    let text = std::str::from_utf8(&buf)
                        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?;
                    line.push_str(text);
                    return Ok(Ok(()));
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if let Some(stop) = self.tick()? {
                        return Ok(Err(stop));
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads exactly `buf.len()` body bytes.
    fn read_exact(&mut self, buf: &mut [u8]) -> std::io::Result<Result<(), ReadStop>> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.reader.read(&mut buf[filled..]) {
                Ok(0) => return Ok(Err(ReadStop::Eof)),
                Ok(n) => {
                    filled += n;
                    self.idle = Duration::ZERO;
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if let Some(stop) = self.tick()? {
                        return Ok(Err(stop));
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(Ok(()))
    }

    fn tick(&mut self) -> std::io::Result<Option<ReadStop>> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Ok(Some(ReadStop::Shutdown));
        }
        self.idle += READ_TICK;
        if let Some(limit) = self.inner.cfg.idle_timeout {
            if self.idle >= limit {
                return Ok(Some(ReadStop::IdleTimeout));
            }
        }
        Ok(None)
    }
}

/// Serves one admitted HTTP connection (keep-alive) until the client
/// closes, an error closes it, or shutdown drains it.
pub(crate) fn serve_session(inner: &Inner, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    let mut reader = TickReader {
        reader: BufReader::new(stream.try_clone()?),
        inner,
        idle: Duration::ZERO,
    };
    let mut stream = stream;
    let client_ip = stream.peer_addr().ok().map(|a| a.ip());

    let bad_request = |inner: &Inner, stream: &mut TcpStream, msg: &str| {
        inner
            .metrics
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        respond(
            inner,
            stream,
            &Reply::new(400, CT_JSON, json_err(msg)),
            true,
        )
    };

    let mut line = String::new();
    loop {
        match reader.read_line(&mut line)? {
            Ok(()) => {}
            Err(ReadStop::Eof | ReadStop::Shutdown) => return Ok(()),
            Err(ReadStop::IdleTimeout) => {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "session idle timeout",
                ));
            }
            Err(ReadStop::TooLong) => {
                bad_request(inner, &mut stream, "request line too long")?;
                return Ok(());
            }
        }
        if line.is_empty() {
            continue; // tolerate a stray blank line between requests
        }

        // ---- request line -------------------------------------------------
        let parts: Vec<&str> = line.split(' ').filter(|t| !t.is_empty()).collect();
        let [method, target, version] = parts.as_slice() else {
            bad_request(inner, &mut stream, "malformed request line")?;
            return Ok(());
        };
        if !version.starts_with("HTTP/1.") {
            bad_request(inner, &mut stream, "only HTTP/1.0 and HTTP/1.1 are spoken")?;
            return Ok(());
        }
        let (method, target, version) = (method.to_string(), target.to_string(), *version);
        let http10 = version == "HTTP/1.0";

        // ---- headers ------------------------------------------------------
        let mut content_length: usize = 0;
        let mut connection = String::new();
        let mut header_count = 0usize;
        let mut header = String::new();
        loop {
            match reader.read_line(&mut header)? {
                Ok(()) => {}
                Err(ReadStop::TooLong) => {
                    bad_request(inner, &mut stream, "header line too long")?;
                    return Ok(());
                }
                Err(ReadStop::IdleTimeout) => {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        "session idle timeout",
                    ));
                }
                Err(_) => return Ok(()), // EOF/shutdown mid-headers
            }
            if header.is_empty() {
                break;
            }
            header_count += 1;
            if header_count > MAX_HEADERS {
                bad_request(inner, &mut stream, "too many headers")?;
                return Ok(());
            }
            let Some((name, value)) = header.split_once(':') else {
                bad_request(inner, &mut stream, "malformed header line")?;
                return Ok(());
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    let Ok(n) = value.parse::<usize>() else {
                        bad_request(inner, &mut stream, "bad Content-Length")?;
                        return Ok(());
                    };
                    content_length = n;
                }
                "connection" => connection = value.to_ascii_lowercase(),
                "transfer-encoding" => {
                    bad_request(inner, &mut stream, "Transfer-Encoding is not supported")?;
                    return Ok(());
                }
                _ => {}
            }
        }

        // ---- body ---------------------------------------------------------
        if content_length > MAX_BODY {
            inner
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            let reply = Reply::new(
                413,
                CT_JSON,
                json_err(&format!("body exceeds {MAX_BODY} bytes")),
            );
            respond(inner, &mut stream, &reply, true)?;
            return Ok(());
        }
        let mut body_bytes = vec![0u8; content_length];
        if content_length > 0 {
            match reader.read_exact(&mut body_bytes)? {
                Ok(()) => {}
                Err(ReadStop::IdleTimeout) => {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        "session idle timeout",
                    ));
                }
                Err(_) => return Ok(()), // EOF/shutdown mid-body
            }
        }

        let close_after = connection == "close" || (http10 && connection != "keep-alive");

        // ---- rate limit ---------------------------------------------------
        // Introspection endpoints stay exempt, as on the shard daemons.
        let introspection = {
            let path = target.split('?').next().unwrap_or("");
            path == "/healthz" || path == "/metrics"
        };
        if !introspection {
            if let Some(ip) = client_ip {
                if !inner.within_rate(ip) {
                    let reply =
                        Reply::new(429, CT_JSON, json_err("per-client rate limit exceeded"));
                    respond(inner, &mut stream, &reply, close_after)?;
                    if close_after {
                        return Ok(());
                    }
                    continue;
                }
            }
        }

        // ---- route --------------------------------------------------------
        let reply = route(inner, &method, &target, &body_bytes);
        let close = close_after || reply.code == 400;
        respond(inner, &mut stream, &reply, close)?;
        if close || inner.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Dispatches one parsed request to its handler.
fn route(inner: &Inner, method: &str, target: &str, body: &[u8]) -> Reply {
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if target.contains('%') {
        return param_error(inner, "percent-encoding is not used by this API");
    }
    match (method, path) {
        ("GET", "/healthz") => {
            inner.metrics.healthz.fetch_add(1, Ordering::Relaxed);
            let shards = inner.snapshot();
            Reply::new(
                200,
                CT_JSON,
                format!(
                    "{{\"status\":\"ok\",\"shards\":{},\"items\":{},\"partial\":{},\"shards_down\":{}}}\n",
                    shards.pools.len(),
                    shards.map.items.len(),
                    inner.cfg.partial,
                    inner.metrics.shards_down.load(Ordering::Relaxed)
                ),
            )
        }
        ("GET", "/metrics") => {
            let shards = inner.snapshot();
            let text = inner
                .metrics
                .render_prometheus(inner.inflight.load(Ordering::SeqCst) as u64, &shards);
            Reply::new(200, CT_METRICS, text)
        }
        ("GET", "/qba") => match require_param(query_string, "alpha").and_then(parse_alpha) {
            Ok(alpha) => run_query(inner, QuerySpec::Qba(alpha)),
            Err(msg) => param_error(inner, &msg),
        },
        ("GET", "/qbp") => match require_param(query_string, "items").and_then(parse_items_qs) {
            Ok(items) => run_query(inner, QuerySpec::Qbp(items)),
            Err(msg) => param_error(inner, &msg),
        },
        ("GET", "/query") => {
            let parsed = require_param(query_string, "items")
                .and_then(parse_items_qs)
                .and_then(|items| {
                    require_param(query_string, "alpha")
                        .and_then(parse_alpha)
                        .map(|alpha| (items, alpha))
                });
            match parsed {
                Ok((items, alpha)) => run_query(inner, QuerySpec::Query(items, alpha)),
                Err(msg) => param_error(inner, &msg),
            }
        }
        ("POST", "/query") => handle_batch(inner, body),
        (_, "/healthz" | "/metrics" | "/qba" | "/qbp" | "/query") => Reply::new(
            405,
            CT_JSON,
            json_err(&format!("{method} not allowed here")),
        ),
        _ => Reply::new(404, CT_JSON, json_err(&format!("no such endpoint {path}"))),
    }
}

fn param_error(inner: &Inner, msg: &str) -> Reply {
    inner
        .metrics
        .protocol_errors
        .fetch_add(1, Ordering::Relaxed);
    Reply::new(400, CT_JSON, json_err(msg))
}

/// Counts the verb and returns its end-to-end latency histogram.
fn count_verb<'a>(inner: &'a Inner, spec: &QuerySpec) -> &'a tc_serve::Histogram {
    let m = &inner.metrics;
    match spec {
        QuerySpec::Qba(_) => {
            m.qba.fetch_add(1, Ordering::Relaxed);
            &m.qba_latency
        }
        QuerySpec::Qbp(_) => {
            m.qbp.fetch_add(1, Ordering::Relaxed);
            &m.qbp_latency
        }
        QuerySpec::Query(..) => {
            m.query.fetch_add(1, Ordering::Relaxed);
            &m.query_latency
        }
    }
}

/// Scatters one query to every shard and renders the gathered answer.
fn run_query(inner: &Inner, spec: QuerySpec) -> Reply {
    let shards = inner.snapshot();
    let hist = count_verb(inner, &spec);
    let started = Instant::now();
    let gathered = crate::scatter_query(inner, &shards, &spec);
    hist.observe(started.elapsed().as_secs_f64());
    match gathered {
        Gathered::Complete(resp) => Reply::new(200, CT_JSON, resp.encode_json()),
        Gathered::Partial(resp, down) => Reply {
            code: 200,
            content_type: CT_JSON,
            body: resp.encode_json(),
            partial: Some(down_list(&down)),
        },
        Gathered::Unavailable(down, err) => Reply::new(
            503,
            CT_JSON,
            json_err(&format!("shard(s) {} unavailable: {err}", down_list(&down))),
        ),
        Gathered::Failed(msg) => Reply::new(500, CT_JSON, json_err(&msg)),
    }
}

fn down_list(down: &[u32]) -> String {
    down.iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// `POST /query`: parse the whole batch up front (atomic rejection),
/// then scatter each spec in order. One down shard fails only its own
/// entries inline unless `--partial` is on, in which case the batch
/// answers 200 with the union of every down shard in [`PARTIAL_HEADER`].
fn handle_batch(inner: &Inner, body: &[u8]) -> Reply {
    let started = Instant::now();
    let Ok(text) = std::str::from_utf8(body) else {
        return param_error(inner, "body is not UTF-8");
    };
    let specs = match parse_batch_specs(text) {
        Ok(specs) => specs,
        Err(msg) => return param_error(inner, &msg),
    };
    inner.metrics.batch.fetch_add(1, Ordering::Relaxed);
    // One shard snapshot for the whole batch: a SIGHUP reload landing
    // mid-batch never mixes shard layouts inside one response.
    let shards = inner.snapshot();
    let mut results = String::new();
    let mut all_down: Vec<u32> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        match crate::scatter_query(inner, &shards, spec) {
            Gathered::Complete(resp) => results.push_str(&resp.json_object()),
            Gathered::Partial(resp, down) => {
                for d in down {
                    if !all_down.contains(&d) {
                        all_down.push(d);
                    }
                }
                results.push_str(&resp.json_object());
            }
            Gathered::Unavailable(down, err) => {
                let msg = format!("shard(s) {} unavailable: {err}", down_list(&down));
                results.push_str(json_err(&msg).trim_end());
            }
            Gathered::Failed(msg) => results.push_str(json_err(&msg).trim_end()),
        }
    }
    inner
        .metrics
        .batch_latency
        .observe(started.elapsed().as_secs_f64());
    all_down.sort_unstable();
    Reply {
        code: 200,
        content_type: CT_JSON,
        body: format!(
            "{{\"status\":\"ok\",\"count\":{},\"results\":[{results}]}}\n",
            specs.len()
        ),
        partial: (!all_down.is_empty()).then(|| down_list(&all_down)),
    }
}
