//! `tc-router` — the scatter-gather HTTP gateway over sharded TC-Tree
//! segments.
//!
//! `tc shard` splits a TC-Tree **by root-child subtree** into N
//! self-contained segments (see [`tc_store::shardmap`]) and records the
//! layout in a `TCMAP01` shard map. This crate is the serving half: a
//! router process loads the map, keeps a pool of line-protocol
//! [`ServeClient`](tc_serve::ServeClient)s per shard daemon, and serves the same HTTP/JSON
//! surface as a single `tc serve` daemon (`GET /qba /qbp /query`,
//! `POST /query` batches, `/healthz`, `/metrics`) by **scattering**
//! every query to all shards and **gathering** the answers with a
//! deterministic merge.
//!
//! The merge is exact, not approximate. Three facts carry it:
//!
//! 1. Subtree partitioning makes per-shard answers *disjoint*: every
//!    non-root node lives in exactly one shard, with its full subtree.
//! 2. The router rewrites `QBA(α)` into `QUERY(universe, α)`, where the
//!    universe is the full tree's level-1 item set stored in the map. A
//!    shard's own QBA would build the universe from its local root
//!    children and wrongly prune deeper patterns that mention items
//!    whose level-1 node lives elsewhere; with the rewrite, every
//!    per-shard pruning decision equals the unsharded walk's.
//! 3. The unsharded walk emits trusses in BFS order, and within a BFS
//!    level arena order equals pattern lexicographic order — so sorting
//!    the concatenated shard answers by `(pattern length, pattern)`
//!    reproduces the unsharded ordering, and summing `retrieved` /
//!    `visited` reproduces its counters.
//!
//! A healthy router therefore answers **byte-identically** to a single
//! daemon serving the unsharded segment, except for the `secs` timing
//! field. When a shard is down, the router either refuses with 503
//! (default) or, with [`RouterConfig::partial`], serves what the live
//! shards returned and names the missing shards in the
//! `X-TC-Partial-Shards` response header. `docs/SHARDING.md` specifies
//! the format and contract; `docs/OPERATIONS.md` has the runbook.
//!
//! ## Quick taste
//!
//! ```
//! use tc_core::DatabaseNetworkBuilder;
//! use tc_index::TcTreeBuilder;
//! use tc_router::{Router, RouterConfig};
//! use tc_serve::{HttpClient, ServeConfig, Server};
//! use tc_store::shardmap::{level1_items, split_tree, HashScheme, ShardEntry, ShardMap};
//! use tc_store::SegmentTcTree;
//!
//! // A tiny tree, split two ways, each shard served by its own daemon.
//! let mut b = DatabaseNetworkBuilder::new();
//! let x = b.intern_item("x");
//! let y = b.intern_item("y");
//! for v in 0..3u32 {
//!     for _ in 0..4 {
//!         b.add_transaction(v, &[x, y]);
//!     }
//! }
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let tree = TcTreeBuilder::default().build(&b.build().unwrap());
//!
//! let mut daemons = Vec::new();
//! let mut entries = Vec::new();
//! for shard in split_tree(&tree, HashScheme::Crc32Item, 2) {
//!     let mut bytes = Vec::new();
//!     tc_store::save_tree_segment(&shard, &mut bytes).unwrap();
//!     let seg = SegmentTcTree::from_bytes(bytes).unwrap();
//!     let server = Server::bind(seg, "127.0.0.1:0", ServeConfig::default()).unwrap();
//!     entries.push(ShardEntry {
//!         addr: server.local_addr().unwrap().to_string(),
//!         path: String::new(),
//!     });
//!     daemons.push(server);
//! }
//! let map = ShardMap {
//!     scheme: HashScheme::Crc32Item,
//!     items: level1_items(&tree),
//!     shards: entries,
//! };
//!
//! let router = Router::bind(map, "127.0.0.1:0", RouterConfig::default()).unwrap();
//! let addr = router.local_addr().unwrap().to_string();
//! let handle = router.handle();
//! let gateway = std::thread::spawn(move || router.run().unwrap());
//! let handles: Vec<_> = daemons
//!     .into_iter()
//!     .map(|d| {
//!         let h = d.handle();
//!         std::thread::spawn(move || d.run().unwrap());
//!         h
//!     })
//!     .collect();
//!
//! let mut client = HttpClient::connect(&addr).unwrap();
//! let resp = client.get("/qba?alpha=0.0").unwrap();
//! assert!(resp.is_ok());
//! let local = tree.query_by_alpha(0.0);
//! assert!(resp.body.contains(&format!("\"retrieved\":{}", local.retrieved_nodes)));
//!
//! handle.shutdown();
//! gateway.join().unwrap();
//! for h in handles {
//!     h.shutdown();
//! }
//! ```

mod metrics;
mod pool;
mod session;

use metrics::RouterMetrics;
use pool::ShardPool;
use std::io::ErrorKind;
use std::net::{IpAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tc_serve::{ClientError, QueryResponse, QuerySpec, RateLimit, RateLimiter};
use tc_store::ShardMap;
use tc_util::sync::Mutex;
use tc_util::LoadError;

/// Accept-loop poll interval while the listener is idle.
const ACCEPT_TICK: Duration = Duration::from_millis(20);
/// How long shutdown waits for admitted sessions to drain.
const DRAIN_LIMIT: Duration = Duration::from_secs(5);

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Most concurrently admitted HTTP sessions; excess connections are
    /// refused with an immediate 503, never queued.
    pub max_inflight: usize,
    /// Close a session idling longer than this (None: never).
    pub idle_timeout: Option<Duration>,
    /// Per-client-IP token bucket (None: unlimited).
    pub rate_limit: Option<RateLimit>,
    /// With a shard down: `false` answers 503, `true` serves the live
    /// shards' union and names the missing shards in
    /// `X-TC-Partial-Shards`.
    pub partial: bool,
    /// Where to re-read the shard map on SIGHUP / [`RouterHandle::reload`]
    /// (None: reload is refused).
    pub map_path: Option<PathBuf>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            max_inflight: 64,
            idle_timeout: Some(Duration::from_secs(30)),
            rate_limit: None,
            partial: false,
            map_path: None,
        }
    }
}

/// One loaded shard layout: the parsed map plus a connection pool per
/// shard. Swapped wholesale on reload; in-flight requests keep the
/// snapshot they started with.
pub(crate) struct Shards {
    pub map: ShardMap,
    pub pools: Vec<ShardPool>,
}

impl Shards {
    fn new(map: ShardMap) -> Shards {
        let pools = map
            .shards
            .iter()
            .enumerate()
            .map(|(id, s)| ShardPool::new(id as u32, s.addr.clone()))
            .collect();
        Shards { map, pools }
    }
}

/// Shared router state.
pub(crate) struct Inner {
    pub cfg: RouterConfig,
    shards: Mutex<Arc<Shards>>,
    pub metrics: RouterMetrics,
    pub inflight: AtomicUsize,
    pub shutdown: AtomicBool,
    limiter: Option<RateLimiter>,
}

impl Inner {
    /// The current shard layout; requests hold one snapshot end-to-end.
    pub fn snapshot(&self) -> Arc<Shards> {
        self.shards.lock().clone()
    }

    /// Admits under the per-client rate limit, counting refusals.
    pub fn within_rate(&self, ip: IpAddr) -> bool {
        match &self.limiter {
            Some(limiter) => {
                let ok = limiter.allow(ip);
                if !ok {
                    self.metrics.rate_limited.fetch_add(1, Ordering::Relaxed);
                }
                ok
            }
            None => true,
        }
    }
}

/// The outcome of one scatter-gather round.
pub(crate) enum Gathered {
    /// Every shard answered; the merge equals the unsharded answer.
    Complete(QueryResponse),
    /// Some shards were down and `--partial` is on: the live shards'
    /// union, plus the down shard ids.
    Partial(QueryResponse, Vec<u32>),
    /// Some shards were down and `--partial` is off: the down shard ids
    /// and the first transport error.
    Unavailable(Vec<u32>, String),
    /// A shard answered with a query-level error (the request's fault).
    Failed(String),
}

/// Scatters `spec` to every shard in `shards` concurrently and gathers
/// the merged outcome. `QBA(α)` is rewritten to `QUERY(universe, α)` —
/// see the crate docs for why that keeps per-shard pruning exact.
pub(crate) fn scatter_query(inner: &Inner, shards: &Shards, spec: &QuerySpec) -> Gathered {
    let results: Vec<Result<QueryResponse, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .pools
            .iter()
            .map(|p| {
                scope.spawn(move || {
                    p.run(|client| match spec {
                        QuerySpec::Qba(alpha) => client.query(&shards.map.items, *alpha),
                        QuerySpec::Qbp(items) => client.qbp(items),
                        QuerySpec::Query(items, alpha) => client.query(items, *alpha),
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // A panicking scatter worker must not take the whole
                // gateway session down with it: treat its shard exactly
                // like a transport failure (503 or a partial answer,
                // depending on `--partial`).
                h.join().unwrap_or_else(|_| {
                    Err(ClientError::Io(std::io::Error::other(
                        "scatter worker panicked",
                    )))
                })
            })
            .collect()
    });
    let mut answered = Vec::new();
    let mut down = Vec::new();
    let mut first_err = String::new();
    for (id, result) in results.into_iter().enumerate() {
        match result {
            Ok(resp) => answered.push(resp),
            // A query-level error means the shard is healthy but the
            // request is bad; every shard ran the same request, so
            // surface it as the request's failure.
            Err(ClientError::Remote(msg)) => return Gathered::Failed(msg),
            Err(e) => {
                if down.is_empty() {
                    first_err = e.to_string();
                }
                down.push(id as u32);
            }
        }
    }
    inner
        .metrics
        .shards_down
        .store(down.len() as u64, Ordering::Relaxed);
    if down.is_empty() {
        Gathered::Complete(merge_responses(answered))
    } else if inner.cfg.partial {
        inner
            .metrics
            .partial_responses
            .fetch_add(1, Ordering::Relaxed);
        Gathered::Partial(merge_responses(answered), down)
    } else {
        Gathered::Unavailable(down, first_err)
    }
}

/// Merges disjoint per-shard answers into one response: counters sum,
/// and trusses sort by `(pattern length, pattern)` — the unsharded
/// tree's own BFS emission order, so a full merge is element-identical
/// to the unsharded answer. `elapsed_secs` is the router-side maximum
/// (the scatter's critical path), not a sum.
pub fn merge_responses(parts: Vec<QueryResponse>) -> QueryResponse {
    let mut merged = QueryResponse {
        retrieved: 0,
        visited: 0,
        elapsed_secs: 0.0,
        trusses: Vec::new(),
    };
    for part in parts {
        merged.retrieved += part.retrieved;
        merged.visited += part.visited;
        merged.elapsed_secs = merged.elapsed_secs.max(part.elapsed_secs);
        merged.trusses.extend(part.trusses);
    }
    merged
        .trusses
        .sort_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
    merged
}

/// Counter totals reported when a router exits.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterStats {
    /// Scatter-gather requests served (qba + qbp + query + batch).
    pub requests: u64,
    /// Shard RPCs attempted across all shards.
    pub fanout: u64,
    /// Shard RPCs that failed at the transport layer.
    pub shard_errors: u64,
    /// Responses served with shards missing (`--partial`).
    pub partial_responses: u64,
    /// Successful shard-map reloads.
    pub reloads: u64,
}

/// A bound scatter-gather gateway; [`Router::run`] starts serving.
pub struct Router {
    listener: TcpListener,
    inner: Arc<Inner>,
}

/// A cloneable driver for a running router: shutdown, reload, stats.
#[derive(Clone)]
pub struct RouterHandle {
    inner: Arc<Inner>,
}

impl Router {
    /// Binds `http_addr` (port `0` picks an ephemeral port — read it
    /// back with [`Router::local_addr`]) over the given shard layout.
    /// Shard connections open lazily on first use, so daemons may boot
    /// after the router.
    pub fn bind(map: ShardMap, http_addr: &str, cfg: RouterConfig) -> std::io::Result<Router> {
        let listener = TcpListener::bind(http_addr)?;
        listener.set_nonblocking(true)?;
        let limiter = cfg.rate_limit.map(RateLimiter::new);
        let inner = Arc::new(Inner {
            cfg,
            shards: Mutex::new(Arc::new(Shards::new(map))),
            metrics: RouterMetrics::default(),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            limiter,
        });
        Ok(Router { listener, inner })
    }

    /// The bound HTTP address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A driver handle, usable from any thread while `run` serves.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Serves until shutdown (handle, SIGTERM/SIGINT via
    /// [`tc_serve::install_signal_handlers`]), then drains admitted
    /// sessions and returns the counter totals.
    pub fn run(self) -> std::io::Result<RouterStats> {
        while !self.inner.shutdown.load(Ordering::SeqCst) && !tc_serve::shutdown_signal_pending() {
            if tc_serve::take_reload_signal() {
                // Keep serving the old map on failure; the metrics and
                // exit stats record the refused swap.
                let _ = self.handle().reload();
            }
            match self.listener.accept() {
                Ok((stream, _)) => admit(&self.inner, stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_TICK),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Sessions poll the flag every READ_TICK; give them a bounded
        // window to finish the response they are writing.
        let deadline = std::time::Instant::now() + DRAIN_LIMIT;
        while self.inner.inflight.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline
        {
            std::thread::sleep(ACCEPT_TICK);
        }
        Ok(self.handle().stats())
    }
}

/// Admission control: spawn a session thread within the inflight budget,
/// refuse with an immediate 503 beyond it.
fn admit(inner: &Arc<Inner>, stream: TcpStream) {
    let admitted = inner
        .inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < inner.cfg.max_inflight).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        let mut stream = stream;
        let _ = session::write_busy_503(
            inner,
            &mut stream,
            &format!("router at max inflight ({})", inner.cfg.max_inflight),
        );
        return;
    }
    let session_inner = Arc::clone(inner);
    let spawned = std::thread::Builder::new()
        .name("tc-router-session".into())
        .spawn(move || {
            let inner = session_inner;
            struct Deflight<'a>(&'a Inner);
            impl Drop for Deflight<'_> {
                fn drop(&mut self) {
                    self.0.inflight.fetch_sub(1, Ordering::SeqCst);
                }
            }
            let _guard = Deflight(&inner);
            let _ = session::serve_session(&inner, stream);
        });
    if spawned.is_err() {
        // Could not spawn: release the slot we reserved.
        inner.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl RouterHandle {
    /// Asks the accept loop to stop; `run` then drains and returns.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Re-reads the shard map from [`RouterConfig::map_path`] and swaps
    /// it in atomically. Validation happens before the swap: a corrupt
    /// or unreadable map leaves the old layout serving and counts a
    /// failed reload. Returns `(shard_count, universe_len)` on success.
    pub fn reload(&self) -> Result<(usize, usize), LoadError> {
        let Some(path) = self.inner.cfg.map_path.clone() else {
            self.inner
                .metrics
                .reload_failures
                .fetch_add(1, Ordering::Relaxed);
            return Err(LoadError::Corrupt(
                "router: no shard-map path configured for reload".into(),
            ));
        };
        match ShardMap::load_from_path(&path) {
            Ok(map) => {
                let counts = (map.shards.len(), map.items.len());
                *self.inner.shards.lock() = Arc::new(Shards::new(map));
                self.inner.metrics.reloads.fetch_add(1, Ordering::Relaxed);
                Ok(counts)
            }
            Err(e) => {
                self.inner
                    .metrics
                    .reload_failures
                    .fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// The Prometheus exposition, as served by `GET /metrics`.
    pub fn prometheus(&self) -> String {
        let shards = self.inner.snapshot();
        self.inner
            .metrics
            .render_prometheus(self.inner.inflight.load(Ordering::SeqCst) as u64, &shards)
    }

    /// Counter totals so far.
    pub fn stats(&self) -> RouterStats {
        let m = &self.inner.metrics;
        let shards = self.inner.snapshot();
        let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
        RouterStats {
            requests: load(&m.qba) + load(&m.qbp) + load(&m.query) + load(&m.batch),
            fanout: shards.pools.iter().map(|p| load(&p.fanout)).sum(),
            shard_errors: shards.pools.iter().map(|p| load(&p.errors)).sum(),
            partial_responses: load(&m.partial_responses),
            reloads: load(&m.reloads),
        }
    }
}
