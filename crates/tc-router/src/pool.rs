//! Per-shard connection pools over the tc-serve line protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use tc_serve::{ClientError, Histogram, ServeClient};
use tc_util::sync::Mutex;

/// Idle connections kept per shard; extras are closed on check-in.
const MAX_IDLE: usize = 8;

/// A lazy pool of line-protocol clients for one shard daemon, plus that
/// shard's fan-out telemetry. Connections are opened on demand (a shard
/// that boots after the router still works) and returned after a clean
/// round-trip; a transport error discards the connection so the next
/// call probes the daemon afresh.
pub(crate) struct ShardPool {
    /// The shard's id — its index in the shard map.
    pub id: u32,
    /// `host:port` of the shard daemon.
    pub addr: String,
    idle: Mutex<Vec<ServeClient>>,
    /// RPCs attempted against this shard.
    pub fanout: AtomicU64,
    /// RPCs that failed at the transport layer (connect/read/write,
    /// admission BUSY, protocol skew) — query-level `ERR` answers are
    /// the *request's* fault and are not counted here.
    pub errors: AtomicU64,
    /// Round-trip latency to this shard, connect included.
    pub latency: Histogram,
}

impl ShardPool {
    pub fn new(id: u32, addr: String) -> ShardPool {
        ShardPool {
            id,
            addr,
            idle: Mutex::new(Vec::new()),
            fanout: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: Histogram::default(),
        }
    }

    /// Runs one RPC against this shard on a pooled (or fresh) connection.
    pub fn run<T>(
        &self,
        f: impl FnOnce(&mut ServeClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        self.fanout.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let result = self.run_inner(f);
        self.latency.observe(started.elapsed().as_secs_f64());
        if !matches!(result, Ok(_) | Err(ClientError::Remote(_))) {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn run_inner<T>(
        &self,
        f: impl FnOnce(&mut ServeClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let pooled = self.idle.lock().pop();
        let mut client = match pooled {
            Some(c) => c,
            None => ServeClient::connect(&self.addr)?,
        };
        let result = f(&mut client);
        // A `Remote` error is an answered request on a healthy socket;
        // anything else leaves the connection in an unknown state.
        if matches!(result, Ok(_) | Err(ClientError::Remote(_))) {
            let mut idle = self.idle.lock();
            if idle.len() < MAX_IDLE {
                idle.push(client);
            }
        }
        result
    }
}
