//! Zero-downtime segment hot-reload: the swap cell serving threads read
//! through, and the off-thread reload that fills it.
//!
//! ## Consistency model
//!
//! The daemon serves queries from an `Arc<SegmentTcTree>` held in a
//! [`TreeSlot`]. Every request **loads the slot once** and runs entirely
//! against that snapshot, so a swap landing mid-request changes nothing
//! for it: in-flight requests answer from the old segment, requests
//! arriving after the swap answer from the new one, and no request ever
//! sees a mix. Sessions are never dropped — the swap is one `Arc`
//! pointer exchange, not a listener restart — and the old segment is
//! freed when its last in-flight request finishes.
//!
//! ## Trigger paths
//!
//! * `SIGHUP` → the accept loop notices the flag and calls
//!   [`crate::server::ServerHandle::reload`] on a detached thread;
//! * embedders and tests call `ServerHandle::reload` /
//!   `ServerHandle::swap_tree` directly.
//!
//! The replacement segment is opened and validated **before** the swap
//! ([`SegmentTcTree::open_with`] checks magic, header geometry, section
//! lengths, and the node-directory checksum); a segment that fails
//! validation leaves the old one serving and only bumps
//! `tcserve_reload_failures_total`.
//!
//! Reloads reopen with the daemon's configured [`StoreOptions`], so an
//! mmap-backed daemon stays mmap-backed and a cache budget survives the
//! swap. Dropping the old `Arc<SegmentTcTree>` (once its last in-flight
//! request finishes) unmaps the old source — repeated `SIGHUP`s never
//! accumulate mappings.
//!
//! The slot's lock and `Arc` come through the [`tc_util::sync`] facade,
//! so `tc-check` model-checks the snapshot guarantee (readers observe
//! the fully-validated old or new tree, never a mix) under
//! `--cfg tc_check_model`.

use std::path::Path;
use tc_store::{SegmentTcTree, StoreOptions};
use tc_util::sync::{Arc, Mutex};
use tc_util::LoadError;

/// The swap cell: readers take a cheap `Arc` clone, the reloader
/// exchanges the pointer. A `Mutex` (held only for the clone/exchange)
/// is plenty here — the critical section is two refcount ops, far below
/// the cost of the query that follows.
#[derive(Debug)]
pub struct TreeSlot {
    current: Mutex<Arc<SegmentTcTree>>,
}

impl TreeSlot {
    /// Wraps the initially served segment.
    pub fn new(tree: SegmentTcTree) -> TreeSlot {
        TreeSlot {
            current: Mutex::new(Arc::new(tree)),
        }
    }

    /// The snapshot to serve one request from. Call once per request:
    /// everything derived from the returned `Arc` is mutually consistent.
    pub fn load(&self) -> Arc<SegmentTcTree> {
        Arc::clone(&self.current.lock())
    }

    /// Atomically replaces the served segment. In-flight requests keep
    /// their snapshot; subsequent [`TreeSlot::load`]s see `tree`.
    pub fn store(&self, tree: Arc<SegmentTcTree>) {
        *self.current.lock() = tree;
    }

    /// [`TreeSlot::store`], taking ownership of an unwrapped tree — the
    /// common shape at reload sites, which validate a fresh
    /// [`SegmentTcTree`] before it ever becomes shared.
    pub fn store_tree(&self, tree: SegmentTcTree) {
        self.store(Arc::new(tree));
    }
}

/// Opens and validates `path` as a replacement segment, off the serving
/// path, and swaps it into `slot` only on success. The segment is opened
/// with `opts` — the daemon's page source and cache budget apply to the
/// replacement exactly as they did to the original.
///
/// Returns the new segment's node count for the reload log line.
pub fn reload_from_path(
    slot: &TreeSlot,
    path: &Path,
    opts: StoreOptions,
) -> Result<usize, LoadError> {
    let fresh = SegmentTcTree::open_with(path, opts)?;
    let nodes = fresh.num_nodes();
    slot.store_tree(fresh);
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::DatabaseNetworkBuilder;
    use tc_index::TcTreeBuilder;

    fn segment_bytes_with_vertices(n: u32) -> Vec<u8> {
        let mut b = DatabaseNetworkBuilder::new();
        let item = b.intern_item("x");
        for v in 0..n {
            for _ in 0..4 {
                b.add_transaction(v, &[item]);
            }
        }
        for v in 0..n {
            b.add_edge(v, (v + 1) % n);
        }
        b.add_edge(0, 2);
        let tree = TcTreeBuilder::default().build(&b.build().unwrap());
        let mut bytes = Vec::new();
        tc_store::save_tree_segment(&tree, &mut bytes).unwrap();
        bytes
    }

    fn segment_with_vertices(n: u32) -> SegmentTcTree {
        SegmentTcTree::from_bytes(segment_bytes_with_vertices(n)).unwrap()
    }

    #[test]
    fn loads_are_snapshots_across_a_swap() {
        let slot = TreeSlot::new(segment_with_vertices(3));
        let before = slot.load();
        let before_nodes = before.num_nodes();
        slot.store(Arc::new(segment_with_vertices(6)));
        // The pre-swap snapshot still answers from the old segment…
        assert_eq!(before.num_nodes(), before_nodes);
        assert!(before.query_by_alpha(0.0).is_ok());
        // …while new loads see the replacement.
        let after = slot.load();
        assert!(Arc::ptr_eq(&slot.load(), &after));
        assert!(!Arc::ptr_eq(&before, &after));
    }

    #[test]
    fn reload_from_path_validates_before_swapping() {
        let dir = std::env::temp_dir().join("tc_serve_reload_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let slot = TreeSlot::new(segment_with_vertices(3));
        let old_nodes = slot.load().num_nodes();

        // A damaged file must leave the old segment serving.
        let bad = dir.join("bad.seg");
        std::fs::write(&bad, b"TCSEG01\n garbage").unwrap();
        assert!(reload_from_path(&slot, &bad, StoreOptions::default()).is_err());
        assert_eq!(slot.load().num_nodes(), old_nodes);

        // A valid segment swaps in.
        let good = dir.join("good.seg");
        let replacement_bytes = segment_bytes_with_vertices(6);
        let replacement_nodes = SegmentTcTree::from_bytes(replacement_bytes.clone())
            .unwrap()
            .num_nodes();
        std::fs::write(&good, &replacement_bytes).unwrap();
        let nodes = reload_from_path(&slot, &good, StoreOptions::default()).unwrap();
        assert_eq!(nodes, replacement_nodes);
        assert_eq!(slot.load().num_nodes(), replacement_nodes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_preserves_store_options() {
        let dir = std::env::temp_dir().join("tc_serve_reload_opts");
        std::fs::create_dir_all(&dir).unwrap();
        let slot = TreeSlot::new(segment_with_vertices(3));
        let path = dir.join("next.seg");
        std::fs::write(&path, segment_bytes_with_vertices(6)).unwrap();
        let opts = StoreOptions {
            source: tc_store::SourceKind::Mmap,
            cache_bytes: Some(1 << 20),
        };
        reload_from_path(&slot, &path, opts).unwrap();
        let tree = slot.load();
        assert_eq!(tree.cache_stats().budget, Some(1 << 20));
        #[cfg(unix)]
        assert_eq!(tree.source_kind(), tc_store::SourceKind::Mmap);
        std::fs::remove_dir_all(&dir).ok();
    }
}
