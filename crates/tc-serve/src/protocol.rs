//! The `tc-serve` wire protocol: line-oriented requests and responses
//! over TCP, version-stamped at connection time.
//!
//! ## Session shape
//!
//! On connect the server sends exactly one **greeting** line:
//!
//! ```text
//! TCSERVE 1 OK nodes=<N> alpha_star=<F>     admitted — requests may follow
//! TCSERVE 1 BUSY <reason>                   rejected — connection closes
//! ```
//!
//! An admitted client then sends one request per line:
//!
//! ```text
//! QBA <alpha> [JSON]              query-by-alpha  (q = S, threshold only)
//! QBP <i1,i2,…> [JSON]            query-by-pattern (alpha = 0)
//! QUERY <i1,i2,…> <alpha> [JSON]  the general (q, alpha) query
//! STATS [JSON]                    server counters
//! QUIT                            end this session
//! SHUTDOWN                        end this session and stop the daemon
//! ```
//!
//! Items are dense numeric ids joined by commas; `-` spells the empty
//! pattern. The optional trailing `JSON` token asks for the response as a
//! single JSON line instead of the default tab-separated frame.
//!
//! ## Tab-separated responses (the default)
//!
//! ```text
//! query verbs:  OK\t<count>\t<visited>\t<elapsed_secs>
//!               then <count> lines:  <i1,i2,…|->\t<vertices>\t<edges>
//! STATS:        OK\t<count>
//!               then <count> lines:  <key>\t<value>
//! QUIT/SHUTDOWN:BYE                 (connection closes)
//! any failure:  ERR\t<message>      (session continues)
//! ```
//!
//! The first tab-separated field of every response line is a status
//! token (`OK`, `BYE`, `ERR`, `BUSY`), so clients can frame a response by
//! reading the header line and then exactly `count` data lines — no
//! terminator sentinel, no ambiguity on embedded whitespace.
//!
//! ## JSON responses
//!
//! With the `JSON` token the whole response is one line:
//!
//! ```text
//! {"status":"ok","retrieved":2,"visited":5,"secs":0.0001,
//!  "trusses":[{"pattern":[3],"vertices":4,"edges":6}, …]}
//! {"status":"ok","stats":{"accepted":10, …}}
//! {"status":"err","message":"…"}
//! ```
//!
//! Floats use Rust's shortest round-trip `Display`, so a value parsed
//! back compares bit-equal to what the server measured.

use tc_txdb::{Item, Pattern};

/// Protocol version, sent in the greeting. Bump on any wire change.
pub const PROTOCOL_VERSION: u32 = 1;

/// The greeting token opening every server line sent at connect time.
pub const GREETING_WORD: &str = "TCSERVE";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `QBA <alpha>` — query-by-alpha.
    Qba { alpha: f64, json: bool },
    /// `QBP <items>` — query-by-pattern.
    Qbp { items: Vec<u32>, json: bool },
    /// `QUERY <items> <alpha>` — the general query.
    Query {
        items: Vec<u32>,
        alpha: f64,
        json: bool,
    },
    /// `STATS` — server counters.
    Stats { json: bool },
    /// `QUIT` — end the session.
    Quit,
    /// `SHUTDOWN` — end the session and stop the daemon.
    Shutdown,
}

impl Request {
    /// The verb keyword, as counted by the server's per-verb telemetry.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Qba { .. } => "QBA",
            Request::Qbp { .. } => "QBP",
            Request::Query { .. } => "QUERY",
            Request::Stats { .. } => "STATS",
            Request::Quit => "QUIT",
            Request::Shutdown => "SHUTDOWN",
        }
    }

    /// Parses one request line (no trailing newline).
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut tokens: Vec<&str> = line.split_whitespace().collect();
        let json = tokens
            .last()
            .is_some_and(|t| t.eq_ignore_ascii_case("JSON"));
        if json {
            tokens.pop();
        }
        let (&verb, args) = tokens
            .split_first()
            .ok_or_else(|| "empty request".to_string())?;
        let arity = |want: usize| -> Result<(), String> {
            if args.len() == want {
                Ok(())
            } else {
                Err(format!(
                    "{verb} takes {want} argument(s), got {}",
                    args.len()
                ))
            }
        };
        match verb.to_ascii_uppercase().as_str() {
            "QBA" => {
                arity(1)?;
                Ok(Request::Qba {
                    alpha: parse_alpha(args[0])?,
                    json,
                })
            }
            "QBP" => {
                arity(1)?;
                Ok(Request::Qbp {
                    items: parse_items(args[0])?,
                    json,
                })
            }
            "QUERY" => {
                arity(2)?;
                Ok(Request::Query {
                    items: parse_items(args[0])?,
                    alpha: parse_alpha(args[1])?,
                    json,
                })
            }
            "STATS" => {
                arity(0)?;
                Ok(Request::Stats { json })
            }
            "QUIT" => {
                arity(0)?;
                Ok(Request::Quit)
            }
            "SHUTDOWN" => {
                arity(0)?;
                Ok(Request::Shutdown)
            }
            other => Err(format!(
                "unknown verb '{other}' (QBA, QBP, QUERY, STATS, QUIT, SHUTDOWN)"
            )),
        }
    }

    /// Renders the request as its wire line (no trailing newline) — the
    /// exact inverse of [`Request::parse`].
    pub fn encode(&self) -> String {
        let json = |j: bool| if j { " JSON" } else { "" };
        match self {
            Request::Qba { alpha, json: j } => format!("QBA {alpha}{}", json(*j)),
            Request::Qbp { items, json: j } => format!("QBP {}{}", encode_items(items), json(*j)),
            Request::Query {
                items,
                alpha,
                json: j,
            } => format!("QUERY {} {alpha}{}", encode_items(items), json(*j)),
            Request::Stats { json: j } => format!("STATS{}", json(*j)),
            Request::Quit => "QUIT".to_string(),
            Request::Shutdown => "SHUTDOWN".to_string(),
        }
    }
}

/// Parses and validates an `alpha` token: finite, non-negative.
pub fn parse_alpha(token: &str) -> Result<f64, String> {
    let alpha: f64 = token.parse().map_err(|_| format!("bad alpha '{token}'"))?;
    if !alpha.is_finite() || alpha < 0.0 {
        return Err(format!("alpha must be finite and >= 0, got '{token}'"));
    }
    Ok(alpha)
}

/// Parses an items token: `-` for the empty pattern, else dense numeric
/// ids joined by commas.
pub fn parse_items(token: &str) -> Result<Vec<u32>, String> {
    if token == "-" {
        return Ok(Vec::new());
    }
    token
        .split(',')
        .map(|t| {
            t.parse::<u32>()
                .map_err(|_| format!("bad item id '{t}' (dense numeric ids only)"))
        })
        .collect()
}

fn encode_items(items: &[u32]) -> String {
    if items.is_empty() {
        return "-".to_string();
    }
    items
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// One retrieved truss, reduced to what the wire carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrussSummary {
    /// The truss pattern's dense item ids, ascending.
    pub items: Vec<u32>,
    /// `|V*_p(alpha)|`.
    pub vertices: usize,
    /// `|E*_p(alpha)|`.
    pub edges: usize,
}

impl TrussSummary {
    /// Rebuilds the [`Pattern`] the ids spell.
    pub fn pattern(&self) -> Pattern {
        Pattern::new(self.items.iter().map(|&i| Item(i)).collect())
    }
}

/// A query response, as carried by the wire in either encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Nodes whose truss came back non-empty (`retrieved_nodes`).
    pub retrieved: usize,
    /// Nodes visited by the pruned walk (`visited_nodes`).
    pub visited: usize,
    /// Server-side wall-clock seconds for the query.
    pub elapsed_secs: f64,
    /// The retrieved trusses, in tree BFS order.
    pub trusses: Vec<TrussSummary>,
}

impl QueryResponse {
    /// Reduces a full [`tc_index::QueryResult`] to its wire form.
    pub fn from_result(r: &tc_index::QueryResult) -> QueryResponse {
        QueryResponse {
            retrieved: r.retrieved_nodes,
            visited: r.visited_nodes,
            elapsed_secs: r.elapsed_secs,
            trusses: r
                .trusses
                .iter()
                .map(|t| TrussSummary {
                    items: t.pattern.iter().map(|i| i.0).collect(),
                    vertices: t.num_vertices(),
                    edges: t.num_edges(),
                })
                .collect(),
        }
    }

    /// Renders the tab-separated frame: header line plus one line per
    /// truss, each `\n`-terminated.
    pub fn encode_tab(&self) -> String {
        let mut out = format!(
            "OK\t{}\t{}\t{}\n",
            self.trusses.len(),
            self.visited,
            self.elapsed_secs
        );
        for t in &self.trusses {
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                encode_items(&t.items),
                t.vertices,
                t.edges
            ));
        }
        out
    }

    /// Renders the single-line JSON form (`\n`-terminated).
    pub fn encode_json(&self) -> String {
        let mut out = self.json_object();
        out.push('\n');
        out
    }

    /// Renders the bare JSON object, no trailing newline — the building
    /// block both the line protocol's `JSON` frames and the HTTP
    /// gateway's bodies (single and batched) are assembled from.
    pub fn json_object(&self) -> String {
        let mut out = format!(
            "{{\"status\":\"ok\",\"retrieved\":{},\"visited\":{},\"secs\":{},\"trusses\":[",
            self.retrieved, self.visited, self.elapsed_secs
        );
        for (i, t) in self.trusses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"pattern\":[{}],\"vertices\":{},\"edges\":{}}}",
                t.items
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
                t.vertices,
                t.edges
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses the header line of a tab-separated frame, returning
    /// `(truss_count, visited, elapsed_secs)`.
    pub fn parse_tab_header(line: &str) -> Result<(usize, usize, f64), String> {
        let fields: Vec<&str> = line.trim_end().split('\t').collect();
        match fields.as_slice() {
            ["OK", count, visited, secs] => Ok((
                count
                    .parse()
                    .map_err(|_| format!("bad truss count '{count}'"))?,
                visited
                    .parse()
                    .map_err(|_| format!("bad visited count '{visited}'"))?,
                secs.parse().map_err(|_| format!("bad elapsed '{secs}'"))?,
            )),
            ["ERR", msg @ ..] => Err(format!("server error: {}", msg.join("\t"))),
            _ => Err(format!("malformed response header '{}'", line.trim_end())),
        }
    }

    /// Parses one truss data line of a tab-separated frame.
    pub fn parse_tab_truss(line: &str) -> Result<TrussSummary, String> {
        let fields: Vec<&str> = line.trim_end().split('\t').collect();
        let [items, vertices, edges] = fields.as_slice() else {
            return Err(format!("malformed truss line '{}'", line.trim_end()));
        };
        Ok(TrussSummary {
            items: parse_items(items)?,
            vertices: vertices
                .parse()
                .map_err(|_| format!("bad vertex count '{vertices}'"))?,
            edges: edges
                .parse()
                .map_err(|_| format!("bad edge count '{edges}'"))?,
        })
    }
}

/// Renders the admitted greeting line (`\n`-terminated).
pub fn encode_greeting_ok(nodes: usize, alpha_star: f64) -> String {
    format!("{GREETING_WORD} {PROTOCOL_VERSION} OK nodes={nodes} alpha_star={alpha_star}\n")
}

/// Renders the rejected greeting line (`\n`-terminated).
pub fn encode_greeting_busy(reason: &str) -> String {
    format!("{GREETING_WORD} {PROTOCOL_VERSION} BUSY {reason}\n")
}

/// What a greeting line said.
#[derive(Debug, Clone, PartialEq)]
pub enum Greeting {
    /// Session admitted; the directory facts advertised at connect time.
    Admitted {
        /// Protocol version the server speaks.
        version: u32,
        /// `SegmentTcTree::num_nodes()` of the served tree.
        nodes: usize,
        /// `alpha_upper_bound()` of the served tree.
        alpha_star: f64,
    },
    /// Session rejected by admission control; the connection is closed.
    Busy {
        /// Protocol version the server speaks.
        version: u32,
        /// Human-readable rejection reason.
        reason: String,
    },
}

/// Parses a greeting line.
pub fn parse_greeting(line: &str) -> Result<Greeting, String> {
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some(GREETING_WORD) {
        return Err(format!("not a tc-serve greeting: '{}'", line.trim_end()));
    }
    let version: u32 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("greeting missing version: '{}'", line.trim_end()))?;
    match tokens.next() {
        Some("OK") => {
            let mut nodes = None;
            let mut alpha_star = None;
            for kv in tokens {
                match kv.split_once('=') {
                    Some(("nodes", v)) => nodes = v.parse().ok(),
                    Some(("alpha_star", v)) => alpha_star = v.parse().ok(),
                    _ => {} // forward-compatible: ignore unknown facts
                }
            }
            Ok(Greeting::Admitted {
                version,
                nodes: nodes.ok_or("greeting missing nodes=")?,
                alpha_star: alpha_star.ok_or("greeting missing alpha_star=")?,
            })
        }
        Some("BUSY") => Ok(Greeting::Busy {
            version,
            reason: tokens.collect::<Vec<_>>().join(" "),
        }),
        other => Err(format!("unknown greeting status {other:?}")),
    }
}

/// Renders an in-session error line in the requested encoding
/// (`\n`-terminated). Newlines in `msg` are flattened so the frame stays
/// line-oriented; in the JSON encoding every remaining control character
/// (messages echo client input, which may carry a tab or worse) is
/// `\u00XX`-escaped so the body is always valid JSON.
pub fn encode_error(msg: &str, json: bool) -> String {
    let flat = msg.replace(['\n', '\r'], " ");
    if json {
        let mut escaped = String::with_capacity(flat.len());
        for c in flat.chars() {
            match c {
                '\\' => escaped.push_str("\\\\"),
                '"' => escaped.push_str("\\\""),
                c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
                c => escaped.push(c),
            }
        }
        format!("{{\"status\":\"err\",\"message\":\"{escaped}\"}}\n")
    } else {
        format!("ERR\t{flat}\n")
    }
}

/// Renders the STATS response from `(key, value)` rows (`\n`-terminated).
pub fn encode_stats(rows: &[(&str, u64)], json: bool) -> String {
    if json {
        let body = rows
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"status\":\"ok\",\"stats\":{{{body}}}}}\n")
    } else {
        let mut out = format!("OK\t{}\n", rows.len());
        for (k, v) in rows {
            out.push_str(&format!("{k}\t{v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_encode_and_parse() {
        let cases = [
            Request::Qba {
                alpha: 0.25,
                json: false,
            },
            Request::Qba {
                alpha: 0.0,
                json: true,
            },
            Request::Qbp {
                items: vec![3, 7, 12],
                json: false,
            },
            Request::Qbp {
                items: Vec::new(),
                json: true,
            },
            Request::Query {
                items: vec![1],
                alpha: 0.5,
                json: false,
            },
            Request::Stats { json: true },
            Request::Quit,
            Request::Shutdown,
        ];
        for req in cases {
            let line = req.encode();
            assert_eq!(Request::parse(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn parse_is_case_insensitive_on_verbs() {
        assert_eq!(
            Request::parse("qba 0.5").unwrap(),
            Request::Qba {
                alpha: 0.5,
                json: false
            }
        );
        assert_eq!(
            Request::parse("query 1,2 0.1 json").unwrap(),
            Request::Query {
                items: vec![1, 2],
                alpha: 0.1,
                json: true
            }
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "  ",
            "FROB 1",
            "QBA",
            "QBA x",
            "QBA -0.5",
            "QBA inf",
            "QBA nan",
            "QBA 0.1 0.2",
            "QBP",
            "QBP 1,x",
            "QUERY 1,2",
            "QUERY 1,2 0.1 extra JSON extra",
            "STATS now",
            "QUIT please",
        ] {
            assert!(Request::parse(line).is_err(), "accepted: '{line}'");
        }
    }

    #[test]
    fn greeting_roundtrips_and_tolerates_future_facts() {
        let g = parse_greeting(&encode_greeting_ok(1469, 0.625)).unwrap();
        assert_eq!(
            g,
            Greeting::Admitted {
                version: PROTOCOL_VERSION,
                nodes: 1469,
                alpha_star: 0.625
            }
        );
        let g = parse_greeting("TCSERVE 9 OK nodes=3 shards=2 alpha_star=0.5\n").unwrap();
        assert_eq!(
            g,
            Greeting::Admitted {
                version: 9,
                nodes: 3,
                alpha_star: 0.5
            }
        );
        let g = parse_greeting(&encode_greeting_busy("inflight limit (4) reached")).unwrap();
        assert_eq!(
            g,
            Greeting::Busy {
                version: PROTOCOL_VERSION,
                reason: "inflight limit (4) reached".into()
            }
        );
        assert!(parse_greeting("HTTP/1.1 200 OK\n").is_err());
        assert!(parse_greeting("TCSERVE one OK nodes=1 alpha_star=0\n").is_err());
    }

    #[test]
    fn query_response_tab_frame_roundtrips() {
        let resp = QueryResponse {
            retrieved: 2,
            visited: 5,
            elapsed_secs: 0.000125,
            trusses: vec![
                TrussSummary {
                    items: vec![3],
                    vertices: 4,
                    edges: 6,
                },
                TrussSummary {
                    items: vec![3, 7],
                    vertices: 3,
                    edges: 3,
                },
            ],
        };
        let frame = resp.encode_tab();
        let mut lines = frame.lines();
        let (count, visited, secs) =
            QueryResponse::parse_tab_header(lines.next().unwrap()).unwrap();
        assert_eq!((count, visited), (2, 5));
        assert_eq!(secs, 0.000125, "floats must round-trip exactly");
        let parsed: Vec<TrussSummary> = lines
            .map(|l| QueryResponse::parse_tab_truss(l).unwrap())
            .collect();
        assert_eq!(parsed, resp.trusses);
    }

    #[test]
    fn empty_pattern_truss_line_roundtrips() {
        let t = TrussSummary {
            items: Vec::new(),
            vertices: 0,
            edges: 0,
        };
        let line = format!("{}\t{}\t{}", "-", t.vertices, t.edges);
        assert_eq!(QueryResponse::parse_tab_truss(&line).unwrap(), t);
        assert!(t.pattern().is_empty());
    }

    #[test]
    fn err_header_surfaces_server_message() {
        let err = QueryResponse::parse_tab_header("ERR\tbad alpha 'x'").unwrap_err();
        assert!(err.contains("bad alpha"), "{err}");
    }

    #[test]
    fn json_encodings_are_single_escaped_lines() {
        let resp = QueryResponse {
            retrieved: 1,
            visited: 1,
            elapsed_secs: 0.5,
            trusses: vec![TrussSummary {
                items: vec![1, 2],
                vertices: 3,
                edges: 3,
            }],
        };
        let json = resp.encode_json();
        assert_eq!(json.matches('\n').count(), 1);
        assert!(json.contains("\"pattern\":[1,2]"), "{json}");
        let err = encode_error("quote \" back \\ newline\nend", true);
        assert_eq!(err.matches('\n').count(), 1);
        assert!(err.contains("\\\""), "{err}");
        // Client-echoed control characters (a tab smuggled through a
        // query string, say) must still yield valid JSON: parse the body
        // back and recover the exact message.
        let msg = "bad alpha '0.\t5' \u{1} end";
        let err = encode_error(msg, true);
        let parsed = tc_util::json::parse(err.trim_end()).expect("error body must be valid JSON");
        assert_eq!(
            parsed
                .get("message")
                .and_then(tc_util::json::JsonValue::as_str),
            Some(msg)
        );
        let stats = encode_stats(&[("accepted", 3), ("qba", 1)], true);
        assert!(stats.contains("\"accepted\":3"), "{stats}");
        let stats_tab = encode_stats(&[("accepted", 3), ("qba", 1)], false);
        assert!(stats_tab.starts_with("OK\t2\n"), "{stats_tab}");
        assert!(stats_tab.contains("qba\t1\n"), "{stats_tab}");
    }

    #[test]
    fn truss_summary_rebuilds_pattern() {
        let t = TrussSummary {
            items: vec![2, 9],
            vertices: 1,
            edges: 0,
        };
        assert_eq!(t.pattern().to_string(), "{i2,i9}");
    }
}
