//! The serving daemon: a bounded-admission worker pool answering the
//! [`crate::protocol`] over TCP, straight off a lazily-materialised
//! [`SegmentTcTree`].
//!
//! ## Admission control
//!
//! The accept loop is the *only* place connections queue, and the queue
//! is bounded by `max_inflight` — the number of sessions admitted but not
//! yet finished (queued + being served). A connection arriving over the
//! limit is answered with a one-line `BUSY` greeting and closed
//! immediately: overload degrades into explicit, cheap rejections the
//! client can retry, never into unbounded queueing or silent hangs.
//!
//! ## Shutdown
//!
//! Shutdown is requested by the `SHUTDOWN` verb, by
//! [`ServerHandle::shutdown`], or — in the `tc serve` binary — by
//! SIGTERM/SIGINT via [`install_signal_handlers`]. The accept loop stops
//! admitting, in-flight sessions notice the flag at their next request
//! boundary (socket reads time out every [`READ_TICK`]), queued-but-
//! unserved sessions are drained the same way, and [`Server::run`]
//! returns once every worker has parked. No connection is ever answered
//! partially: a response line is written whole or not at all.

use crate::protocol::{
    encode_error, encode_greeting_busy, encode_greeting_ok, encode_stats, QueryResponse, Request,
};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use tc_store::SegmentTcTree;
use tc_txdb::{Item, Pattern};

/// How often blocked socket reads and queue waits wake to re-check the
/// shutdown flag — the upper bound on shutdown latency per session.
pub const READ_TICK: Duration = Duration::from_millis(200);

/// Accept-loop poll interval while the listener is idle.
const ACCEPT_TICK: Duration = Duration::from_millis(20);

/// Server configuration. `Default` matches the `tc serve` CLI defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads serving admitted sessions.
    pub workers: usize,
    /// Maximum admitted-but-unfinished sessions (queued + in service);
    /// connections beyond it are greeted `BUSY` and closed.
    pub max_inflight: usize,
    /// How long a session may sit without completing a request line
    /// before it is closed and its admission slot freed. A hung or
    /// half-dead client would otherwise hold one of `max_inflight` slots
    /// forever. `None` disables the timeout.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            max_inflight: 64,
            idle_timeout: Some(Duration::from_secs(300)),
        }
    }
}

/// Monotonic per-verb and admission counters, surfaced by `STATS`.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    admitted: AtomicU64,
    rejected_busy: AtomicU64,
    qba: AtomicU64,
    qbp: AtomicU64,
    query: AtomicU64,
    stats: AtomicU64,
    protocol_errors: AtomicU64,
    query_failures: AtomicU64,
    timeouts: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted (admitted + rejected).
    pub accepted: u64,
    /// Sessions admitted past admission control.
    pub admitted: u64,
    /// Connections rejected with a `BUSY` greeting.
    pub rejected_busy: u64,
    /// `QBA` requests served.
    pub qba: u64,
    /// `QBP` requests served.
    pub qbp: u64,
    /// `QUERY` requests served.
    pub query: u64,
    /// `STATS` requests served.
    pub stats: u64,
    /// Requests rejected as malformed (`ERR` responses to parse errors).
    pub protocol_errors: u64,
    /// Queries that failed server-side (e.g. segment corruption).
    pub query_failures: u64,
    /// Sessions closed for sitting idle past the configured timeout.
    pub timeouts: u64,
    /// Sessions admitted but not yet finished, at snapshot time.
    pub inflight: u64,
}

impl StatsSnapshot {
    /// Total query-verb requests served (`QBA` + `QBP` + `QUERY`).
    pub fn queries_served(&self) -> u64 {
        self.qba + self.qbp + self.query
    }
}

/// Shared server state: the tree, the bounded session queue, counters.
struct Inner {
    tree: SegmentTcTree,
    cfg: ServeConfig,
    counters: Counters,
    /// Admitted-but-unfinished session count — the admission gauge.
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
}

/// A clonable remote control for a running [`Server`] — lets tests and
/// embedding binaries request shutdown and read counters from outside
/// the accept loop.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Requests a graceful shutdown; [`Server::run`] returns once
    /// in-flight sessions finish.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.snapshot()
    }
}

impl Inner {
    fn snapshot(&self) -> StatsSnapshot {
        let c = &self.counters;
        StatsSnapshot {
            accepted: c.accepted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected_busy: c.rejected_busy.load(Ordering::Relaxed),
            qba: c.qba.load(Ordering::Relaxed),
            qbp: c.qbp.load(Ordering::Relaxed),
            query: c.query.load(Ordering::Relaxed),
            stats: c.stats.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            query_failures: c.query_failures.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::SeqCst) as u64,
        }
    }
}

/// The TCP query-serving daemon over one [`SegmentTcTree`].
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7641`; port `0` picks an ephemeral
    /// port — read it back with [`Server::local_addr`]) and prepares the
    /// daemon. Serving starts when [`Server::run`] is called.
    pub fn bind(tree: SegmentTcTree, addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        if cfg.workers == 0 || cfg.max_inflight == 0 {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "workers and max-inflight must be at least 1",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            inner: Arc::new(Inner {
                tree,
                cfg,
                counters: Counters::default(),
                inflight: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
            }),
        })
    }

    /// The bound socket address (resolves port `0` bindings).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote control valid for the lifetime of the daemon.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Runs the accept loop on the calling thread until shutdown is
    /// requested, then drains in-flight sessions and returns the final
    /// counter snapshot.
    pub fn run(self) -> std::io::Result<StatsSnapshot> {
        let workers: Vec<_> = (0..self.inner.cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&self.inner);
                std::thread::Builder::new()
                    .name(format!("tc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();

        while !self.inner.shutdown.load(Ordering::SeqCst) && !signal_received() {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_TICK),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    // Tear the pool down before surfacing the error.
                    self.inner.shutdown.store(true, Ordering::SeqCst);
                    self.inner.queue_cv.notify_all();
                    for w in workers {
                        let _ = w.join();
                    }
                    return Err(e);
                }
            }
        }

        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        Ok(self.inner.snapshot())
    }

    /// Admission control: enqueue within the inflight budget, reject with
    /// a `BUSY` greeting beyond it.
    fn admit(&self, mut stream: TcpStream) {
        let inner = &self.inner;
        inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
        let admitted = inner
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < inner.cfg.max_inflight).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            inner.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
            // Best effort: the client may already be gone.
            let _ = stream.write_all(
                encode_greeting_busy(&format!(
                    "inflight limit ({}) reached, retry later",
                    inner.cfg.max_inflight
                ))
                .as_bytes(),
            );
            return; // dropping the stream closes it
        }
        // Re-check the shutdown flag *under the queue lock*: workers decide
        // to exit under this lock (queue empty && shutdown), so a push that
        // observes the flag unset here is guaranteed a worker will drain it
        // — without this, a SHUTDOWN landing between the accept-loop check
        // and the push could orphan the connection and leak the inflight
        // gauge.
        let mut queue = self.inner.queue.lock().expect("queue poisoned");
        if inner.shutdown.load(Ordering::SeqCst) {
            drop(queue);
            inner.inflight.fetch_sub(1, Ordering::SeqCst);
            inner.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
            let _ = stream.write_all(encode_greeting_busy("server shutting down").as_bytes());
            return;
        }
        inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
        queue.push_back(stream);
        drop(queue);
        inner.queue_cv.notify_one();
    }
}

/// Decrements the inflight gauge when a session ends, panic-safe.
struct InflightGuard<'a>(&'a Inner);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let stream = {
            let mut queue = inner.queue.lock().expect("queue poisoned");
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = inner
                    .queue_cv
                    .wait_timeout(queue, READ_TICK)
                    .expect("queue poisoned");
                queue = q;
            }
        };
        let Some(stream) = stream else {
            // Shutdown with an empty queue: even sessions admitted after
            // the flag flipped have been drained (flag is checked only
            // under the same lock the acceptor pushes under).
            return;
        };
        let _guard = InflightGuard(inner);
        // Socket errors end the session; the next connection is unaffected.
        if let Err(e) = serve_session(inner, stream) {
            if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) {
                inner.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// What a request handler asks the session loop to do next.
enum SessionFlow {
    Continue,
    Close,
}

fn serve_session(inner: &Inner, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    stream.write_all(
        encode_greeting_ok(inner.tree.num_nodes(), inner.tree.alpha_upper_bound()).as_bytes(),
    )?;

    let mut line = String::new();
    let mut idle = Duration::ZERO;
    loop {
        // A read timeout re-checks the shutdown flag and advances the
        // idle clock; partial bytes already appended to `line` survive
        // the retry (a byte-trickling client still counts as idle — only
        // a *complete* request line resets the clock).
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => idle = Duration::ZERO,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                idle += READ_TICK;
                if let Some(limit) = inner.cfg.idle_timeout {
                    if idle >= limit {
                        // Best effort: the client may be past listening.
                        let _ = stream
                            .write_all(encode_error("session idle timeout", false).as_bytes());
                        return Err(std::io::Error::new(
                            ErrorKind::TimedOut,
                            "session idle timeout",
                        ));
                    }
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            line.clear();
            continue; // blank keep-alive lines are not a protocol error
        }
        let flow = match Request::parse(&line) {
            Ok(req) => handle_request(inner, &req, &mut stream)?,
            Err(msg) => {
                inner
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                stream.write_all(encode_error(&msg, false).as_bytes())?;
                SessionFlow::Continue
            }
        };
        line.clear();
        if matches!(flow, SessionFlow::Close) {
            return Ok(());
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

fn handle_request(
    inner: &Inner,
    req: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<SessionFlow> {
    let c = &inner.counters;
    let (result, json) = match req {
        Request::Qba { alpha, json } => {
            c.qba.fetch_add(1, Ordering::Relaxed);
            (inner.tree.query_by_alpha(*alpha), *json)
        }
        Request::Qbp { items, json } => {
            c.qbp.fetch_add(1, Ordering::Relaxed);
            (inner.tree.query_by_pattern(&pattern_of(items)), *json)
        }
        Request::Query { items, alpha, json } => {
            c.query.fetch_add(1, Ordering::Relaxed);
            (inner.tree.query(&pattern_of(items), *alpha), *json)
        }
        Request::Stats { json } => {
            c.stats.fetch_add(1, Ordering::Relaxed);
            let s = inner.snapshot();
            let rows = [
                ("protocol_version", u64::from(crate::PROTOCOL_VERSION)),
                ("nodes", inner.tree.num_nodes() as u64),
                ("materialized_nodes", inner.tree.materialized_nodes() as u64),
                ("workers", inner.cfg.workers as u64),
                ("max_inflight", inner.cfg.max_inflight as u64),
                ("inflight", s.inflight),
                ("accepted", s.accepted),
                ("admitted", s.admitted),
                ("rejected_busy", s.rejected_busy),
                ("qba", s.qba),
                ("qbp", s.qbp),
                ("query", s.query),
                ("stats", s.stats),
                ("protocol_errors", s.protocol_errors),
                ("query_failures", s.query_failures),
                ("timeouts", s.timeouts),
            ];
            stream.write_all(encode_stats(&rows, *json).as_bytes())?;
            return Ok(SessionFlow::Continue);
        }
        Request::Quit => {
            stream.write_all(b"BYE\n")?;
            return Ok(SessionFlow::Close);
        }
        Request::Shutdown => {
            stream.write_all(b"BYE\n")?;
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.queue_cv.notify_all();
            return Ok(SessionFlow::Close);
        }
    };
    match result {
        Ok(r) => {
            let resp = QueryResponse::from_result(&r);
            let frame = if json {
                resp.encode_json()
            } else {
                resp.encode_tab()
            };
            stream.write_all(frame.as_bytes())?;
        }
        Err(e) => {
            // A failed query (segment corruption discovered lazily) is an
            // ERR to this client, not a daemon crash.
            c.query_failures.fetch_add(1, Ordering::Relaxed);
            stream.write_all(encode_error(&e.to_string(), json).as_bytes())?;
        }
    }
    Ok(SessionFlow::Continue)
}

fn pattern_of(items: &[u32]) -> Pattern {
    Pattern::new(items.iter().map(|&i| Item(i)).collect())
}

// ---------------------------------------------------------------------------
// Signal plumbing: SIGTERM/SIGINT flip a global flag the accept loop
// polls. Only the `tc serve` binary installs the handlers; library users
// and tests drive shutdown via ServerHandle / the SHUTDOWN verb.
// ---------------------------------------------------------------------------

static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

fn signal_received() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

/// Routes SIGTERM and SIGINT into a graceful shutdown of every
/// [`Server::run`] loop in the process. Call once, before `run`.
///
/// Uses the C `signal(2)` entry point directly — the workspace vendors
/// its dependencies and has no `libc` crate, but every supported target
/// already links the C runtime through `std`.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// No-op off Unix: rely on process teardown.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}
