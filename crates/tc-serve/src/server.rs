//! The serving daemon: a bounded-admission worker pool answering the
//! [`crate::protocol`] over TCP and the [`crate::http`] JSON gateway,
//! straight off a hot-swappable [`SegmentTcTree`].
//!
//! ## Admission control
//!
//! The accept loops are the *only* place connections queue, and the queue
//! is bounded by `max_inflight` — the number of sessions admitted but not
//! yet finished (queued + being served) across **both** front-ends. A
//! connection arriving over the limit is answered with a one-line `BUSY`
//! greeting (TCP) or a `503` (HTTP) and closed immediately: overload
//! degrades into explicit, cheap rejections the client can retry, never
//! into unbounded queueing or silent hangs. Layered on top, an optional
//! per-client token bucket ([`crate::limit`]) rejects a single hot client
//! before it can monopolise the shared inflight budget.
//!
//! ## Hot reload
//!
//! `SIGHUP` (or [`ServerHandle::reload`]) swaps in a freshly opened and
//! validated segment without dropping a single session — see
//! [`crate::reload`] for the consistency model.
//!
//! ## Shutdown
//!
//! Shutdown is requested by the `SHUTDOWN` verb, by
//! [`ServerHandle::shutdown`], or — in the `tc serve` binary — by
//! SIGTERM/SIGINT via [`install_signal_handlers`]. The accept loop stops
//! admitting, in-flight sessions notice the flag at their next request
//! boundary (socket reads time out every [`READ_TICK`]), queued-but-
//! unserved sessions are drained the same way, and [`Server::run`]
//! returns once every worker has parked. No connection is ever answered
//! partially: a response line is written whole or not at all.

use crate::limit::{RateLimit, RateLimiter};
use crate::metrics::Metrics;
use crate::protocol::{
    encode_error, encode_greeting_busy, encode_greeting_ok, encode_stats, QueryResponse, Request,
};
use crate::reload::TreeSlot;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tc_store::{SegmentTcTree, StoreOptions};
use tc_txdb::{Item, Pattern};
use tc_util::sync::{Condvar, Mutex};
use tc_util::LoadError;

/// How often blocked socket reads and queue waits wake to re-check the
/// shutdown flag — the upper bound on shutdown latency per session.
pub const READ_TICK: Duration = Duration::from_millis(200);

/// Accept-loop poll interval while the listeners are idle.
const ACCEPT_TICK: Duration = Duration::from_millis(20);

/// Server configuration. `Default` matches the `tc serve` CLI defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads serving admitted sessions (both front-ends share
    /// the pool).
    pub workers: usize,
    /// Maximum admitted-but-unfinished sessions (queued + in service);
    /// connections beyond it are greeted `BUSY` / `503` and closed.
    pub max_inflight: usize,
    /// How long a session may sit without completing a request line
    /// before it is closed and its admission slot freed. A hung or
    /// half-dead client would otherwise hold one of `max_inflight` slots
    /// forever. `None` disables the timeout.
    pub idle_timeout: Option<Duration>,
    /// Also serve the HTTP/JSON gateway on this address (e.g.
    /// `127.0.0.1:8080`; port `0` picks an ephemeral port — read it back
    /// with [`Server::local_http_addr`]). `None` serves TCP only.
    pub http_addr: Option<String>,
    /// Per-client token-bucket rate limit, layered on the global
    /// inflight bound: one token per TCP connection or HTTP request,
    /// keyed by peer IP. `None` disables the limiter.
    pub rate_limit: Option<RateLimit>,
    /// Where `SIGHUP` / [`ServerHandle::reload`] re-open the segment
    /// from. `None` disables path-based reloads (handle-driven
    /// [`ServerHandle::swap_tree`] still works).
    pub reload_path: Option<PathBuf>,
    /// How the segment is opened — page-source backing and node-cache
    /// byte budget. Applied on every reload too, so a `--cache-bytes`
    /// envelope and an mmap backing survive `SIGHUP` swaps.
    pub store: StoreOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            max_inflight: 64,
            idle_timeout: Some(Duration::from_secs(300)),
            http_addr: None,
            rate_limit: None,
            reload_path: None,
            store: StoreOptions::default(),
        }
    }
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted (admitted + rejected), both front-ends.
    pub accepted: u64,
    /// Sessions admitted past admission control.
    pub admitted: u64,
    /// Connections rejected with a `BUSY` greeting or `503`.
    pub rejected_busy: u64,
    /// Requests/connections rejected by per-client rate limiting.
    pub rate_limited: u64,
    /// `QBA` requests served.
    pub qba: u64,
    /// `QBP` requests served.
    pub qbp: u64,
    /// `QUERY` requests served.
    pub query: u64,
    /// `STATS` / `/healthz` requests served.
    pub stats: u64,
    /// `POST /query` batch requests served.
    pub batch: u64,
    /// Requests rejected as malformed (`ERR` / `400` responses).
    pub protocol_errors: u64,
    /// Queries that failed server-side (e.g. segment corruption).
    pub query_failures: u64,
    /// Sessions closed for sitting idle past the configured timeout.
    pub timeouts: u64,
    /// Segment hot-reloads completed.
    pub reloads: u64,
    /// Hot-reload attempts that failed validation.
    pub reload_failures: u64,
    /// Sessions admitted but not yet finished, at snapshot time.
    pub inflight: u64,
}

impl StatsSnapshot {
    /// Total query-verb requests served (`QBA` + `QBP` + `QUERY`).
    pub fn queries_served(&self) -> u64 {
        self.qba + self.qbp + self.query
    }
}

/// Shared server state: the swappable tree, the bounded session queue,
/// telemetry, and the optional rate limiter.
pub(crate) struct Inner {
    pub(crate) tree: TreeSlot,
    pub(crate) cfg: ServeConfig,
    pub(crate) metrics: Metrics,
    /// Admitted-but-unfinished session count — the admission gauge.
    pub(crate) inflight: AtomicUsize,
    pub(crate) shutdown: AtomicBool,
    pub(crate) limiter: Option<RateLimiter>,
    reload_in_progress: AtomicBool,
    queue: Mutex<VecDeque<Session>>,
    queue_cv: Condvar,
}

/// Which front-end a queued session arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrontEnd {
    /// The line-oriented TCP protocol.
    Line,
    /// The HTTP/JSON gateway.
    Http,
}

struct Session {
    stream: TcpStream,
    front: FrontEnd,
}

/// A clonable remote control for a running [`Server`] — lets tests and
/// embedding binaries request shutdown, trigger hot reloads, and read
/// telemetry from outside the accept loop.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Requests a graceful shutdown; [`Server::run`] returns once
    /// in-flight sessions finish.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.snapshot()
    }

    /// The Prometheus text exposition, exactly as `GET /metrics` serves
    /// it.
    pub fn prometheus(&self) -> String {
        let tree = self.inner.tree.load();
        self.inner.metrics.render_prometheus(
            self.inner.inflight.load(Ordering::SeqCst) as u64,
            crate::metrics::TreeGauges::of(&tree),
        )
    }

    /// Atomically swaps `tree` in as the served segment and counts a
    /// completed reload. In-flight requests keep their snapshot; no
    /// session is dropped.
    pub fn swap_tree(&self, tree: SegmentTcTree) {
        self.inner.tree.store_tree(tree);
        self.inner.metrics.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Re-opens the configured `reload_path` and swaps the fresh segment
    /// in (the `SIGHUP` path, callable directly by embedders). Returns
    /// the new segment's node count; on failure the old segment keeps
    /// serving and only `reload_failures` moves.
    pub fn reload(&self) -> Result<usize, LoadError> {
        let inner = &self.inner;
        let Some(path) = inner.cfg.reload_path.clone() else {
            inner
                .metrics
                .reload_failures
                .fetch_add(1, Ordering::Relaxed);
            return Err(LoadError::corrupt("no reload path configured"));
        };
        match crate::reload::reload_from_path(&inner.tree, &path, inner.cfg.store) {
            Ok(nodes) => {
                inner.metrics.reloads.fetch_add(1, Ordering::Relaxed);
                Ok(nodes)
            }
            Err(e) => {
                inner
                    .metrics
                    .reload_failures
                    .fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Runs [`ServerHandle::reload`] on a detached thread, coalescing
    /// concurrent requests — the accept loop calls this on `SIGHUP` so a
    /// slow segment open never stalls admission.
    fn spawn_reload(&self) {
        let inner = &self.inner;
        if inner
            .reload_in_progress
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return; // a reload is already running; SIGHUP storms coalesce
        }
        let handle = self.clone();
        let spawned = std::thread::Builder::new()
            .name("tc-serve-reload".to_string())
            .spawn(move || {
                match handle.reload() {
                    Ok(nodes) => eprintln!("tc-serve: segment reloaded ({nodes} nodes)"),
                    Err(e) => eprintln!("tc-serve: reload failed, old segment kept: {e}"),
                }
                handle
                    .inner
                    .reload_in_progress
                    .store(false, Ordering::SeqCst);
            });
        if let Err(e) = spawned {
            // Spawn failure (thread exhaustion) must not take the accept
            // loop down — the old segment keeps serving, the latch clears
            // so a later SIGHUP can retry, and the failure is counted.
            eprintln!("tc-serve: could not spawn reload thread: {e}");
            inner
                .metrics
                .reload_failures
                .fetch_add(1, Ordering::Relaxed);
            inner.reload_in_progress.store(false, Ordering::SeqCst);
        }
    }
}

impl Inner {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        let m = &self.metrics;
        let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            accepted: load(&m.accepted),
            admitted: load(&m.admitted),
            rejected_busy: load(&m.rejected_busy),
            rate_limited: load(&m.rate_limited),
            qba: load(&m.qba),
            qbp: load(&m.qbp),
            query: load(&m.query),
            stats: load(&m.stats),
            batch: load(&m.batch),
            protocol_errors: load(&m.protocol_errors),
            query_failures: load(&m.query_failures),
            timeouts: load(&m.timeouts),
            reloads: load(&m.reloads),
            reload_failures: load(&m.reload_failures),
            inflight: self.inflight.load(Ordering::SeqCst) as u64,
        }
    }

    /// Whether `client` is within its per-client rate budget (always
    /// true when no limiter is configured).
    pub(crate) fn within_rate(&self, client: std::net::IpAddr) -> bool {
        match &self.limiter {
            Some(l) => {
                let ok = l.allow(client);
                if !ok {
                    self.metrics.rate_limited.fetch_add(1, Ordering::Relaxed);
                }
                ok
            }
            None => true,
        }
    }
}

/// The query-serving daemon over one hot-swappable [`SegmentTcTree`]:
/// the TCP line protocol, plus the HTTP/JSON gateway when configured.
pub struct Server {
    listener: TcpListener,
    http_listener: Option<TcpListener>,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7641`; port `0` picks an ephemeral
    /// port — read it back with [`Server::local_addr`]) and, when
    /// `cfg.http_addr` is set, the HTTP gateway address too. Serving
    /// starts when [`Server::run`] is called.
    pub fn bind(tree: SegmentTcTree, addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        if cfg.workers == 0 || cfg.max_inflight == 0 {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "workers and max-inflight must be at least 1",
            ));
        }
        if let Some(rl) = &cfg.rate_limit {
            if !(rl.per_sec > 0.0 && rl.burst >= 1.0) {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidInput,
                    "rate limit needs per_sec > 0 and burst >= 1",
                ));
            }
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let http_listener = match &cfg.http_addr {
            Some(http_addr) => {
                let l = TcpListener::bind(http_addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let limiter = cfg.rate_limit.map(RateLimiter::new);
        Ok(Server {
            listener,
            http_listener,
            inner: Arc::new(Inner {
                tree: TreeSlot::new(tree),
                cfg,
                metrics: Metrics::default(),
                inflight: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                limiter,
                reload_in_progress: AtomicBool::new(false),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
            }),
        })
    }

    /// The bound TCP-protocol socket address (resolves port `0`
    /// bindings).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound HTTP gateway address, when one was configured.
    pub fn local_http_addr(&self) -> Option<std::io::Result<std::net::SocketAddr>> {
        self.http_listener.as_ref().map(TcpListener::local_addr)
    }

    /// A remote control valid for the lifetime of the daemon.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Runs the accept loop on the calling thread until shutdown is
    /// requested, then drains in-flight sessions and returns the final
    /// counter snapshot.
    pub fn run(self) -> std::io::Result<StatsSnapshot> {
        let teardown = |inner: &Arc<Inner>, workers: Vec<std::thread::JoinHandle<()>>| {
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.queue_cv.notify_all();
            for w in workers {
                let _ = w.join();
            }
        };

        let mut workers = Vec::with_capacity(self.inner.cfg.workers);
        for i in 0..self.inner.cfg.workers {
            let inner = Arc::clone(&self.inner);
            let spawned = std::thread::Builder::new()
                .name(format!("tc-serve-worker-{i}"))
                .spawn(move || worker_loop(&inner));
            match spawned {
                Ok(h) => workers.push(h),
                Err(e) => {
                    // A short pool can't serve the configured parallelism;
                    // fail startup cleanly instead of panicking.
                    teardown(&self.inner, workers);
                    return Err(e);
                }
            }
        }

        while !self.inner.shutdown.load(Ordering::SeqCst) && !signal_received() {
            if take_reload_signal() {
                self.handle().spawn_reload();
            }
            let mut idle = true;
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.admit(stream, FrontEnd::Line);
                    idle = false;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => idle = false,
                Err(e) => {
                    // Tear the pool down before surfacing the error.
                    teardown(&self.inner, workers);
                    return Err(e);
                }
            }
            if let Some(http) = &self.http_listener {
                match http.accept() {
                    Ok((stream, _)) => {
                        self.admit(stream, FrontEnd::Http);
                        idle = false;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == ErrorKind::Interrupted => idle = false,
                    Err(e) => {
                        teardown(&self.inner, workers);
                        return Err(e);
                    }
                }
            }
            if idle {
                std::thread::sleep(ACCEPT_TICK);
            }
        }

        teardown(&self.inner, workers);
        Ok(self.inner.snapshot())
    }

    /// Admission control: enqueue within the rate and inflight budgets,
    /// reject with a `BUSY` greeting / `503` beyond them.
    fn admit(&self, mut stream: TcpStream, front: FrontEnd) {
        let inner = &self.inner;
        inner.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        // Per-client rate limiting applies to TCP at connection grain
        // (one token per session); the HTTP front-end charges per
        // request instead, inside the session loop, so a keep-alive
        // connection cannot amortise the limit away.
        if front == FrontEnd::Line {
            let client_ip = stream.peer_addr().map(|a| a.ip());
            if let Ok(ip) = client_ip {
                if !inner.within_rate(ip) {
                    let _ = stream.write_all(
                        encode_greeting_busy("per-client rate limit exceeded, retry later")
                            .as_bytes(),
                    );
                    return;
                }
            }
        }
        let admitted = inner
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < inner.cfg.max_inflight).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            inner.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
            let reason = format!(
                "inflight limit ({}) reached, retry later",
                inner.cfg.max_inflight
            );
            // Best effort: the client may already be gone.
            let _ = match front {
                FrontEnd::Line => stream.write_all(encode_greeting_busy(&reason).as_bytes()),
                FrontEnd::Http => crate::http::write_busy_503(inner, &mut stream, &reason),
            };
            return; // dropping the stream closes it
        }
        // Re-check the shutdown flag *under the queue lock*: workers decide
        // to exit under this lock (queue empty && shutdown), so a push that
        // observes the flag unset here is guaranteed a worker will drain it
        // — without this, a SHUTDOWN landing between the accept-loop check
        // and the push could orphan the connection and leak the inflight
        // gauge.
        let mut queue = self.inner.queue.lock();
        if inner.shutdown.load(Ordering::SeqCst) {
            drop(queue);
            inner.inflight.fetch_sub(1, Ordering::SeqCst);
            inner.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
            let _ = match front {
                FrontEnd::Line => {
                    stream.write_all(encode_greeting_busy("server shutting down").as_bytes())
                }
                FrontEnd::Http => {
                    crate::http::write_busy_503(inner, &mut stream, "server shutting down")
                }
            };
            return;
        }
        inner.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        queue.push_back(Session { stream, front });
        drop(queue);
        inner.queue_cv.notify_one();
    }
}

/// Decrements the inflight gauge when a session ends, panic-safe.
struct InflightGuard<'a>(&'a Inner);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let session = {
            let mut queue = inner.queue.lock();
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = inner.queue_cv.wait_timeout(queue, READ_TICK);
                queue = q;
            }
        };
        let Some(session) = session else {
            // Shutdown with an empty queue: even sessions admitted after
            // the flag flipped have been drained (flag is checked only
            // under the same lock the acceptor pushes under).
            return;
        };
        let _guard = InflightGuard(inner);
        // Socket errors end the session; the next connection is unaffected.
        let result = match session.front {
            FrontEnd::Line => serve_session(inner, session.stream),
            FrontEnd::Http => crate::http::serve_http_session(inner, session.stream),
        };
        if let Err(e) = result {
            if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) {
                inner.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// What a request handler asks the session loop to do next.
enum SessionFlow {
    Continue,
    Close,
}

/// Longest accepted request line on the TCP protocol, in bytes. Generous
/// (a pattern of tens of thousands of items fits) but it bounds what a
/// client streaming bytes with no newline can make a session buffer.
const MAX_TCP_LINE: usize = 1024 * 1024;

/// Why [`read_request_line`] returned without a line.
enum LineStop {
    /// Client closed the connection.
    Eof,
    /// The daemon is shutting down.
    Shutdown,
    /// The session idled past the configured timeout.
    IdleTimeout,
    /// The line outgrew [`MAX_TCP_LINE`].
    TooLong,
}

/// Reads one `\n`-terminated request line into `line` (terminator kept,
/// matching `BufRead::read_line`). Every read goes through a `take`
/// bounded by the remaining line budget, so an endless unterminated line
/// is cut off as [`LineStop::TooLong`] instead of growing without bound.
/// Blocked reads tick every [`READ_TICK`] against the shutdown flag and
/// `idle`; only a complete line resets the idle clock.
fn read_request_line(
    inner: &Inner,
    reader: &mut BufReader<TcpStream>,
    idle: &mut Duration,
    line: &mut String,
) -> std::io::Result<Result<(), LineStop>> {
    line.clear();
    let mut buf = Vec::new();
    loop {
        let budget = (MAX_TCP_LINE + 2).saturating_sub(buf.len()) as u64;
        if budget == 0 {
            return Ok(Err(LineStop::TooLong));
        }
        match reader.by_ref().take(budget).read_until(b'\n', &mut buf) {
            Ok(0) => return Ok(Err(LineStop::Eof)), // client closed (even mid-line)
            Ok(_) => {
                if buf.last() != Some(&b'\n') {
                    continue; // budget spent mid-line → TooLong above
                }
                *idle = Duration::ZERO;
                let text = std::str::from_utf8(&buf)
                    .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?;
                line.push_str(text);
                return Ok(Ok(()));
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return Ok(Err(LineStop::Shutdown));
                }
                *idle += READ_TICK;
                if let Some(limit) = inner.cfg.idle_timeout {
                    if *idle >= limit {
                        return Ok(Err(LineStop::IdleTimeout));
                    }
                }
                // Partial bytes already in `buf` survive the retry (a
                // byte-trickling client still counts as idle).
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn serve_session(inner: &Inner, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    {
        // The greeting advertises the directory facts of the segment
        // serving *right now*; a session outliving a hot reload keeps its
        // connection and simply sees post-swap answers on later requests.
        let tree = inner.tree.load();
        stream
            .write_all(encode_greeting_ok(tree.num_nodes(), tree.alpha_upper_bound()).as_bytes())?;
    }

    let mut line = String::new();
    let mut idle = Duration::ZERO;
    loop {
        match read_request_line(inner, &mut reader, &mut idle, &mut line)? {
            Ok(()) => {}
            Err(LineStop::Eof | LineStop::Shutdown) => return Ok(()),
            Err(LineStop::IdleTimeout) => {
                // Best effort: the client may be past listening.
                let _ = stream.write_all(encode_error("session idle timeout", false).as_bytes());
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "session idle timeout",
                ));
            }
            Err(LineStop::TooLong) => {
                inner
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                // Framing is lost mid-line; answer and close.
                let _ = stream.write_all(encode_error("request line too long", false).as_bytes());
                return Ok(());
            }
        }
        if line.trim().is_empty() {
            line.clear();
            continue; // blank keep-alive lines are not a protocol error
        }
        let flow = match Request::parse(&line) {
            Ok(req) => {
                // One snapshot per request: a hot reload landing mid-
                // request never mixes old and new segments in one answer.
                let tree = inner.tree.load();
                handle_request(inner, &tree, &req, &mut stream)?
            }
            Err(msg) => {
                inner
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                stream.write_all(encode_error(&msg, false).as_bytes())?;
                SessionFlow::Continue
            }
        };
        line.clear();
        if matches!(flow, SessionFlow::Close) {
            return Ok(());
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

fn handle_request(
    inner: &Inner,
    tree: &SegmentTcTree,
    req: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<SessionFlow> {
    let m = &inner.metrics;
    let (result, hist, json) = match req {
        Request::Qba { alpha, json } => {
            m.qba.fetch_add(1, Ordering::Relaxed);
            (tree.query_by_alpha(*alpha), &m.qba_latency, *json)
        }
        Request::Qbp { items, json } => {
            m.qbp.fetch_add(1, Ordering::Relaxed);
            (
                tree.query_by_pattern(&pattern_of(items)),
                &m.qbp_latency,
                *json,
            )
        }
        Request::Query { items, alpha, json } => {
            m.query.fetch_add(1, Ordering::Relaxed);
            (
                tree.query(&pattern_of(items), *alpha),
                &m.query_latency,
                *json,
            )
        }
        Request::Stats { json } => {
            m.stats.fetch_add(1, Ordering::Relaxed);
            let s = inner.snapshot();
            let cache = tree.cache_stats();
            // The STATS table is integer-valued; the hit *ratio* is
            // reported as a percentage (floor), exact ratio in /metrics.
            let hit_total = cache.hits + cache.misses;
            let hit_pct = (cache.hits * 100).checked_div(hit_total).unwrap_or(100);
            let rows = [
                ("protocol_version", u64::from(crate::PROTOCOL_VERSION)),
                ("nodes", tree.num_nodes() as u64),
                ("materialized_nodes", tree.materialized_nodes() as u64),
                ("materialized_total", cache.materialized_total),
                ("cache_bytes_used", cache.bytes_used),
                ("cache_bytes_budget", cache.budget.unwrap_or(0)),
                ("cache_evictions", cache.evictions),
                ("cache_hits", cache.hits),
                ("cache_misses", cache.misses),
                ("cache_hit_ratio_pct", hit_pct),
                ("workers", inner.cfg.workers as u64),
                ("max_inflight", inner.cfg.max_inflight as u64),
                ("inflight", s.inflight),
                ("accepted", s.accepted),
                ("admitted", s.admitted),
                ("rejected_busy", s.rejected_busy),
                ("rate_limited", s.rate_limited),
                ("qba", s.qba),
                ("qbp", s.qbp),
                ("query", s.query),
                ("stats", s.stats),
                ("batch", s.batch),
                ("protocol_errors", s.protocol_errors),
                ("query_failures", s.query_failures),
                ("timeouts", s.timeouts),
                ("reloads", s.reloads),
                ("reload_failures", s.reload_failures),
            ];
            stream.write_all(encode_stats(&rows, *json).as_bytes())?;
            return Ok(SessionFlow::Continue);
        }
        Request::Quit => {
            stream.write_all(b"BYE\n")?;
            return Ok(SessionFlow::Close);
        }
        Request::Shutdown => {
            stream.write_all(b"BYE\n")?;
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.queue_cv.notify_all();
            return Ok(SessionFlow::Close);
        }
    };
    match result {
        Ok(r) => {
            hist.observe(r.elapsed_secs);
            let resp = QueryResponse::from_result(&r);
            let frame = if json {
                resp.encode_json()
            } else {
                resp.encode_tab()
            };
            stream.write_all(frame.as_bytes())?;
        }
        Err(e) => {
            // A failed query (segment corruption discovered lazily) is an
            // ERR to this client, not a daemon crash.
            m.query_failures.fetch_add(1, Ordering::Relaxed);
            stream.write_all(encode_error(&e.to_string(), json).as_bytes())?;
        }
    }
    Ok(SessionFlow::Continue)
}

pub(crate) fn pattern_of(items: &[u32]) -> Pattern {
    Pattern::new(items.iter().map(|&i| Item(i)).collect())
}

// ---------------------------------------------------------------------------
// Signal plumbing: SIGTERM/SIGINT flip a shutdown flag, SIGHUP a reload
// flag; the accept loop polls both. Only the `tc serve` binary installs
// the handlers; library users and tests drive shutdown and reload via
// ServerHandle / the SHUTDOWN verb.
// ---------------------------------------------------------------------------

static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);
static SIGNAL_RELOAD: AtomicBool = AtomicBool::new(false);

fn signal_received() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

/// Whether a SIGTERM/SIGINT arrived since [`install_signal_handlers`].
/// The flag is process-wide: every accept loop (tc-serve daemons and the
/// tc-router gateway alike) polls it and drains on the same signal.
pub fn shutdown_signal_pending() -> bool {
    signal_received()
}

/// Consumes a pending SIGHUP, if one arrived since the last check.
pub fn take_reload_signal() -> bool {
    SIGNAL_RELOAD.swap(false, Ordering::SeqCst)
}

/// Routes SIGTERM and SIGINT into a graceful shutdown — and SIGHUP into
/// a segment hot-reload — of every [`Server::run`] loop in the process.
/// Call once, before `run`.
///
/// Uses the C `signal(2)` entry point directly — the workspace vendors
/// its dependencies and has no `libc` crate, but every supported target
/// already links the C runtime through `std`.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_shutdown(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" fn on_reload(_signum: i32) {
        SIGNAL_RELOAD.store(true, Ordering::SeqCst);
    }
    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    // SAFETY: `signal(2)` is async-signal-safe to install from any thread;
    // the handlers passed are `extern "C" fn(i32)` with the exact ABI the
    // C runtime invokes them under, and each performs only a single atomic
    // store (itself async-signal-safe). The returned previous handler is
    // deliberately discarded — the daemon owns these three signals.
    unsafe {
        signal(SIGTERM, on_shutdown);
        signal(SIGINT, on_shutdown);
        signal(SIGHUP, on_reload);
    }
}

/// No-op off Unix: rely on process teardown.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}
