//! Serving telemetry: the daemon's monotonic counters, per-verb latency
//! histograms, and the Prometheus text exposition behind `GET /metrics`.
//!
//! One [`Metrics`] instance is shared by both front-ends (the TCP line
//! protocol and the HTTP/JSON gateway), so `STATS`, `/metrics`, and
//! `serve_bench` all read the same numbers — there is exactly one source
//! of serving truth per daemon.
//!
//! Everything here is lock-free: counters are `AtomicU64`, histogram
//! buckets are `AtomicU64`, and the latency sum is accumulated in
//! nanoseconds (a `u64` holds ~584 years of queries). Rendering takes a
//! relaxed snapshot — `/metrics` under load never blocks a query.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds in seconds, chosen to straddle the
/// observed serving range: warm directory-pruned queries sit in the tens
/// of microseconds, cold full-tree scans in the tens of milliseconds, and
/// anything past a second is an outage in the making. The implicit final
/// bucket is `+Inf`.
pub const LATENCY_BUCKETS_SECS: [f64; 12] = [
    25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 50e-3, 250e-3, 1.0,
];

/// A fixed-bucket latency histogram in the Prometheus exposition model:
/// cumulative `le` buckets, a sum, and a count.
#[derive(Debug, Default)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) observation counts; index `i` counts
    /// observations `<= LATENCY_BUCKETS_SECS[i]` and greater than the
    /// previous bound. The overflow (`+Inf`) bucket is `buckets[12]`.
    buckets: [AtomicU64; LATENCY_BUCKETS_SECS.len() + 1],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation of `secs` (negative or NaN observations
    /// are clamped to zero — a wall-clock can step backwards, telemetry
    /// must not corrupt for it).
    pub fn observe(&self, secs: f64) {
        let secs = if secs.is_finite() && secs > 0.0 {
            secs
        } else {
            0.0
        };
        let idx = LATENCY_BUCKETS_SECS
            .iter()
            .position(|&bound| secs <= bound)
            .unwrap_or(LATENCY_BUCKETS_SECS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let nanos = Duration::try_from_secs_f64(secs)
            .map(|d| d.as_nanos().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(u64::MAX);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Cumulative bucket counts in `le` order, ending with the `+Inf`
    /// bucket (== total count at snapshot time).
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut total = 0;
        self.buckets
            .iter()
            .map(|b| {
                total += b.load(Ordering::Relaxed);
                total
            })
            .collect()
    }
}

/// HTTP response status codes the gateway can produce, in exposition
/// order. Indexes into [`Metrics::http_responses`].
pub const HTTP_CODES: [u16; 8] = [200, 400, 404, 405, 413, 429, 500, 503];

/// Point-in-time tree and node-cache gauges, sampled from the served
/// segment by the caller of [`Metrics::render_prometheus`] (the tree is
/// swappable via hot-reload, so [`Metrics`] never holds it).
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeGauges {
    /// TC-Tree nodes in the served segment (excluding the root).
    pub nodes: u64,
    /// Nodes currently resident in the cache (falls on eviction).
    pub materialized: u64,
    /// Materialisations since open, cumulative across evictions.
    pub materialized_total: u64,
    /// Accounted bytes of resident truss decompositions.
    pub cache_bytes_used: u64,
    /// Configured cache budget in bytes; `0` = unbounded.
    pub cache_budget: u64,
    /// Nodes evicted by the cache's clock sweep.
    pub cache_evictions: u64,
    /// Cache lookups that found a resident node.
    pub cache_hits: u64,
    /// Cache lookups that had to materialise.
    pub cache_misses: u64,
}

impl TreeGauges {
    /// Samples every gauge from a served segment tree.
    pub fn of(tree: &tc_store::SegmentTcTree) -> TreeGauges {
        let s = tree.cache_stats();
        TreeGauges {
            nodes: tree.num_nodes() as u64,
            materialized: s.resident as u64,
            materialized_total: s.materialized_total,
            cache_bytes_used: s.bytes_used,
            cache_budget: s.budget.unwrap_or(0),
            cache_evictions: s.evictions,
            cache_hits: s.hits,
            cache_misses: s.misses,
        }
    }

    /// Cache hit fraction in `[0, 1]`; `1.0` before any lookup.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The daemon's shared telemetry: admission, per-verb, error, reload, and
/// HTTP-response counters plus per-verb latency histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted (admitted + rejected), both front-ends.
    pub accepted: AtomicU64,
    /// Sessions admitted past admission control.
    pub admitted: AtomicU64,
    /// Connections rejected with a `BUSY` greeting (or drained at
    /// shutdown before service).
    pub rejected_busy: AtomicU64,
    /// Requests or connections rejected by per-client rate limiting.
    pub rate_limited: AtomicU64,
    /// `QBA` requests served (both front-ends).
    pub qba: AtomicU64,
    /// `QBP` requests served (both front-ends).
    pub qbp: AtomicU64,
    /// General `QUERY` requests served (both front-ends).
    pub query: AtomicU64,
    /// `STATS` / `/healthz` introspection requests served.
    pub stats: AtomicU64,
    /// `POST /query` batch requests served (each carrying many queries).
    pub batch: AtomicU64,
    /// Malformed requests answered with an error (both front-ends).
    pub protocol_errors: AtomicU64,
    /// Queries that failed server-side (e.g. segment corruption).
    pub query_failures: AtomicU64,
    /// Sessions closed for sitting idle past the configured timeout.
    pub timeouts: AtomicU64,
    /// Segment hot-reloads completed (SIGHUP or handle-driven swaps).
    pub reloads: AtomicU64,
    /// Hot-reload attempts that failed validation (old segment kept).
    pub reload_failures: AtomicU64,
    /// HTTP responses by status code, indexed parallel to [`HTTP_CODES`].
    pub http_responses: [AtomicU64; HTTP_CODES.len()],
    /// Server-side `QBA` latency.
    pub qba_latency: Histogram,
    /// Server-side `QBP` latency.
    pub qbp_latency: Histogram,
    /// Server-side general-`QUERY` latency.
    pub query_latency: Histogram,
    /// Whole-request latency of `POST /query` batches.
    pub batch_latency: Histogram,
}

impl Metrics {
    /// Bumps the HTTP response counter for `code` (unknown codes count
    /// as 500 — the exposition set is closed).
    pub fn count_http_response(&self, code: u16) {
        // Fold unknown codes onto 500; if 500 itself ever left the list,
        // fold onto the last slot rather than panic in a request path.
        let fold = HTTP_CODES
            .iter()
            .position(|&c| c == 500)
            .unwrap_or(HTTP_CODES.len() - 1);
        let idx = HTTP_CODES.iter().position(|&c| c == code).unwrap_or(fold);
        self.http_responses[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus text exposition (format version 0.0.4).
    ///
    /// Gauges that live outside the counter set (inflight sessions, tree
    /// geometry, node-cache state) are passed in by the caller holding
    /// the current tree snapshot.
    pub fn render_prometheus(&self, inflight: u64, tree: TreeGauges) -> String {
        let mut out = String::with_capacity(4096);
        let c = |out: &mut String, name: &str, help: &str, rows: &[(&str, u64)]| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (labels, v) in rows {
                out.push_str(&format!("{name}{labels} {v}\n"));
            }
        };
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        c(
            &mut out,
            "tcserve_connections_total",
            "Connections accepted, by admission outcome.",
            &[
                ("{outcome=\"admitted\"}", load(&self.admitted)),
                ("{outcome=\"busy\"}", load(&self.rejected_busy)),
                ("{outcome=\"rate_limited\"}", load(&self.rate_limited)),
            ],
        );
        c(
            &mut out,
            "tcserve_requests_total",
            "Requests served, by verb (both front-ends).",
            &[
                ("{verb=\"qba\"}", load(&self.qba)),
                ("{verb=\"qbp\"}", load(&self.qbp)),
                ("{verb=\"query\"}", load(&self.query)),
                ("{verb=\"stats\"}", load(&self.stats)),
                ("{verb=\"batch\"}", load(&self.batch)),
            ],
        );
        c(
            &mut out,
            "tcserve_errors_total",
            "Failed requests, by failure kind.",
            &[
                ("{kind=\"protocol\"}", load(&self.protocol_errors)),
                ("{kind=\"query\"}", load(&self.query_failures)),
                ("{kind=\"timeout\"}", load(&self.timeouts)),
            ],
        );
        let http_rows: Vec<(String, u64)> = HTTP_CODES
            .iter()
            .zip(&self.http_responses)
            .map(|(code, n)| (format!("{{code=\"{code}\"}}"), n.load(Ordering::Relaxed)))
            .collect();
        let http_rows: Vec<(&str, u64)> = http_rows.iter().map(|(l, v)| (l.as_str(), *v)).collect();
        c(
            &mut out,
            "tcserve_http_responses_total",
            "HTTP responses sent, by status code.",
            &http_rows,
        );
        c(
            &mut out,
            "tcserve_reloads_total",
            "Segment hot-reloads completed without dropping sessions.",
            &[("", load(&self.reloads))],
        );
        c(
            &mut out,
            "tcserve_reload_failures_total",
            "Hot-reload attempts rejected at validation (old segment kept).",
            &[("", load(&self.reload_failures))],
        );
        let g = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        g(
            &mut out,
            "tcserve_inflight_sessions",
            "Sessions admitted but not yet finished.",
            inflight,
        );
        g(
            &mut out,
            "tcserve_tree_nodes",
            "TC-Tree nodes in the currently served segment.",
            tree.nodes,
        );
        g(
            &mut out,
            "tcserve_tree_materialized_nodes",
            "TC-Tree nodes currently resident in the node cache (falls on eviction).",
            tree.materialized,
        );
        c(
            &mut out,
            "tcserve_tree_materialized_total",
            "Node materialisations since open (re-parses after eviction count again).",
            &[("", tree.materialized_total)],
        );
        g(
            &mut out,
            "tcserve_cache_bytes_used",
            "Accounted bytes of resident truss decompositions.",
            tree.cache_bytes_used,
        );
        g(
            &mut out,
            "tcserve_cache_bytes_budget",
            "Configured node-cache byte budget (0 = unbounded).",
            tree.cache_budget,
        );
        c(
            &mut out,
            "tcserve_cache_evictions_total",
            "Nodes evicted by the cache's clock sweep.",
            &[("", tree.cache_evictions)],
        );
        c(
            &mut out,
            "tcserve_cache_lookups_total",
            "Node-cache lookups, by outcome.",
            &[
                ("{outcome=\"hit\"}", tree.cache_hits),
                ("{outcome=\"miss\"}", tree.cache_misses),
            ],
        );
        out.push_str(&format!(
            "# HELP tcserve_cache_hit_ratio Node-cache hit fraction in [0, 1] (1 before any lookup).\n\
             # TYPE tcserve_cache_hit_ratio gauge\n\
             tcserve_cache_hit_ratio {}\n",
            tree.cache_hit_ratio()
        ));
        for (verb, h) in [
            ("qba", &self.qba_latency),
            ("qbp", &self.qbp_latency),
            ("query", &self.query_latency),
            ("batch", &self.batch_latency),
        ] {
            render_histogram(&mut out, verb, h);
        }
        out
    }
}

/// Renders one labelled series of the shared latency histogram family.
fn render_histogram(out: &mut String, verb: &str, h: &Histogram) {
    const NAME: &str = "tcserve_request_latency_seconds";
    // The HELP/TYPE header precedes the family's first series only.
    if !out.contains(&format!("# TYPE {NAME} ")) {
        out.push_str(&format!(
            "# HELP {NAME} Server-side request latency, by verb.\n# TYPE {NAME} histogram\n"
        ));
    }
    let cumulative = h.cumulative_buckets();
    for (bound, cum) in LATENCY_BUCKETS_SECS.iter().zip(&cumulative) {
        out.push_str(&format!(
            "{NAME}_bucket{{verb=\"{verb}\",le=\"{bound}\"}} {cum}\n"
        ));
    }
    out.push_str(&format!(
        "{NAME}_bucket{{verb=\"{verb}\",le=\"+Inf\"}} {}\n",
        cumulative.last().copied().unwrap_or(0)
    ));
    out.push_str(&format!("{NAME}_sum{{verb=\"{verb}\"}} {}\n", h.sum_secs()));
    out.push_str(&format!("{NAME}_count{{verb=\"{verb}\"}} {}\n", h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_count_everything() {
        let h = Histogram::default();
        h.observe(10e-6); // bucket 0 (<= 25µs)
        h.observe(30e-6); // bucket 1 (<= 50µs)
        h.observe(0.75); // bucket 11 (<= 1s)
        h.observe(30.0); // +Inf bucket
        h.observe(-1.0); // clamped to 0 → bucket 0
        h.observe(f64::NAN); // clamped to 0 → bucket 0
        let cum = h.cumulative_buckets();
        assert_eq!(cum.len(), LATENCY_BUCKETS_SECS.len() + 1);
        assert_eq!(cum[0], 3, "10µs + two clamped zeros");
        assert_eq!(cum[1], 4);
        assert_eq!(cum[11], 5);
        assert_eq!(*cum.last().unwrap(), 6, "+Inf holds every observation");
        assert_eq!(h.count(), 6);
        assert!((h.sum_secs() - (10e-6 + 30e-6 + 0.75 + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn exposition_is_valid_prometheus_text() {
        let m = Metrics::default();
        m.qba.fetch_add(3, Ordering::Relaxed);
        m.qba_latency.observe(0.0001);
        m.count_http_response(200);
        m.count_http_response(418); // unknown → folds into 500
        let text = m.render_prometheus(
            2,
            TreeGauges {
                nodes: 1469,
                materialized: 17,
                materialized_total: 23,
                cache_bytes_used: 4096,
                cache_budget: 65536,
                cache_evictions: 6,
                cache_hits: 40,
                cache_misses: 10,
            },
        );
        assert!(text.contains("tcserve_requests_total{verb=\"qba\"} 3\n"));
        assert!(text.contains("tcserve_inflight_sessions 2\n"));
        assert!(text.contains("tcserve_tree_materialized_nodes 17\n"));
        assert!(text.contains("tcserve_tree_materialized_total 23\n"));
        assert!(text.contains("tcserve_cache_bytes_used 4096\n"));
        assert!(text.contains("tcserve_cache_bytes_budget 65536\n"));
        assert!(text.contains("tcserve_cache_evictions_total 6\n"));
        assert!(text.contains("tcserve_cache_lookups_total{outcome=\"hit\"} 40\n"));
        assert!(text.contains("tcserve_cache_hit_ratio 0.8\n"));
        assert!(text.contains("tcserve_http_responses_total{code=\"200\"} 1\n"));
        assert!(text.contains("tcserve_http_responses_total{code=\"500\"} 1\n"));
        assert!(text.contains("le=\"+Inf\"} 1\n"));
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
            let name = series.split('{').next().unwrap();
            assert!(
                !name.is_empty()
                    && name
                        .chars()
                        .all(|ch| ch.is_ascii_alphanumeric() || ch == '_' || ch == ':'),
                "bad metric name in: {line}"
            );
            if let Some(rest) = series.split_once('{').map(|(_, r)| r) {
                assert!(rest.ends_with('}'), "unterminated labels in: {line}");
            }
        }
        // The histogram family header appears exactly once.
        assert_eq!(
            text.matches("# TYPE tcserve_request_latency_seconds histogram")
                .count(),
            1
        );
    }

    #[test]
    fn histogram_family_counts_every_verb_series() {
        let m = Metrics::default();
        m.qbp_latency.observe(0.002);
        let text = m.render_prometheus(0, TreeGauges::default());
        for verb in ["qba", "qbp", "query", "batch"] {
            assert!(
                text.contains(&format!(
                    "tcserve_request_latency_seconds_count{{verb=\"{verb}\"}}"
                )),
                "missing series for {verb}"
            );
        }
        assert!(text.contains("tcserve_request_latency_seconds_count{verb=\"qbp\"} 1\n"));
    }
}
