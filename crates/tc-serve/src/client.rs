//! A blocking client for the [`crate::protocol`] — the library behind
//! `tc query --remote`, the `serve_bench` sweep, and the CI smoke driver.
//!
//! One [`ServeClient`] owns one TCP session: requests are issued
//! sequentially, responses are parsed into the same shapes the server
//! encodes, and a `BUSY` greeting surfaces as [`ClientError::Busy`] so
//! callers can implement retry/backoff without string matching.

use crate::protocol::{parse_greeting, Greeting, QueryResponse, Request};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side failures, split by who caused them.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write).
    Io(std::io::Error),
    /// The server rejected the connection under admission control.
    Busy(String),
    /// The server answered, but not in the protocol this client speaks.
    Protocol(String),
    /// The server reported a request-level error (`ERR …`).
    Remote(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Busy(r) => write!(f, "server busy: {r}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// `true` when the failure is an admission-control rejection — the
    /// retryable case.
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Busy(_))
    }
}

/// A remote query answer (the wire form plus nothing else — item-name
/// rendering is the caller's job, exactly as with a local query).
pub type RemoteResult = QueryResponse;

/// Bounded retry with exponential backoff for the retryable
/// [`ClientError::Busy`] rejection.
///
/// Attempt `k` (0-based) sleeps `base_delay · 2^k`, capped at
/// `max_delay`, then jittered down into `[half, full]` so a burst of
/// rejected clients does not reconverge on the server in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = fail fast on `BUSY`).
    pub retries: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry number `attempt` (0-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(attempt))
            .min(self.max_delay);
        exp.mul_f64(0.5 + 0.5 * jitter_fraction(attempt))
    }
}

/// A cheap source of per-attempt noise in `[0, 1)`: hashes the attempt
/// number under `RandomState`'s per-process random keys. Not
/// cryptographic — it only needs to decorrelate concurrent processes.
fn jitter_fraction(attempt: u32) -> f64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut h = RandomState::new().build_hasher();
    h.write_u32(attempt);
    (h.finish() % 1024) as f64 / 1024.0
}

/// One blocking protocol session.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    nodes: usize,
    alpha_star: f64,
    version: u32,
}

impl ServeClient {
    /// Connects to `addr` (`host:port`) and reads the greeting.
    ///
    /// A `BUSY` greeting returns [`ClientError::Busy`]; any non-protocol
    /// payload on the port returns [`ClientError::Protocol`].
    pub fn connect(addr: &str) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A daemon that stops mid-handshake must not hang the client. The
        // timeout guards the greeting only: it is cleared once admitted,
        // because a legitimately expensive query (cold full-tree QBA on a
        // big segment) may take arbitrarily long server-side.
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection before greeting".into(),
            ));
        }
        reader.get_ref().set_read_timeout(None)?;
        match parse_greeting(&line).map_err(ClientError::Protocol)? {
            Greeting::Admitted {
                version,
                nodes,
                alpha_star,
            } => Ok(ServeClient {
                reader,
                nodes,
                alpha_star,
                version,
            }),
            Greeting::Busy { reason, .. } => Err(ClientError::Busy(reason)),
        }
    }

    /// Like [`ServeClient::connect`], but retries `BUSY` rejections per
    /// `policy`. Only admission-control rejections are retried — I/O and
    /// protocol errors fail immediately, and the final `BUSY` is returned
    /// once the budget is exhausted.
    pub fn connect_with_retry(
        addr: &str,
        policy: &RetryPolicy,
    ) -> Result<ServeClient, ClientError> {
        let mut attempt = 0u32;
        loop {
            match ServeClient::connect(addr) {
                Err(e) if e.is_busy() && attempt < policy.retries => {
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Protocol version the server greeted with.
    pub fn server_version(&self) -> u32 {
        self.version
    }

    /// `num_nodes()` of the served tree, from the greeting.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// `alpha_upper_bound()` of the served tree, from the greeting.
    pub fn alpha_star(&self) -> f64 {
        self.alpha_star
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let mut line = req.encode();
        line.push('\n');
        self.reader.get_ref().write_all(line.as_bytes())?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection mid-response".into(),
            ));
        }
        Ok(line)
    }

    fn roundtrip_query(&mut self, req: &Request) -> Result<RemoteResult, ClientError> {
        self.send(req)?;
        let header = self.read_line()?;
        let (count, visited, elapsed_secs) = QueryResponse::parse_tab_header(&header)
            .map_err(|m| classify_header_error(&header, m))?;
        let mut trusses = Vec::with_capacity(count);
        for _ in 0..count {
            let line = self.read_line()?;
            trusses.push(QueryResponse::parse_tab_truss(&line).map_err(ClientError::Protocol)?);
        }
        Ok(QueryResponse {
            retrieved: count,
            visited,
            elapsed_secs,
            trusses,
        })
    }

    /// Query-by-alpha: `QBA <alpha>`.
    pub fn qba(&mut self, alpha: f64) -> Result<RemoteResult, ClientError> {
        self.roundtrip_query(&Request::Qba { alpha, json: false })
    }

    /// Query-by-pattern: `QBP <items>`.
    pub fn qbp(&mut self, items: &[u32]) -> Result<RemoteResult, ClientError> {
        self.roundtrip_query(&Request::Qbp {
            items: items.to_vec(),
            json: false,
        })
    }

    /// The general query: `QUERY <items> <alpha>`.
    pub fn query(&mut self, items: &[u32], alpha: f64) -> Result<RemoteResult, ClientError> {
        self.roundtrip_query(&Request::Query {
            items: items.to_vec(),
            alpha,
            json: false,
        })
    }

    /// Server counters: `STATS`, as ordered `(key, value)` rows.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        self.send(&Request::Stats { json: false })?;
        let header = self.read_line()?;
        let fields: Vec<&str> = header.trim_end().split('\t').collect();
        let count: usize = match fields.as_slice() {
            ["OK", n] => n
                .parse()
                .map_err(|_| ClientError::Protocol(format!("bad stats count '{n}'")))?,
            _ => return Err(classify_header_error(&header, String::new())),
        };
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            let line = self.read_line()?;
            let (k, v) = line
                .trim_end()
                .split_once('\t')
                .ok_or_else(|| ClientError::Protocol(format!("bad stats row '{line}'")))?;
            let v: u64 = v
                .parse()
                .map_err(|_| ClientError::Protocol(format!("bad stats value '{line}'")))?;
            rows.push((k.to_string(), v));
        }
        Ok(rows)
    }

    /// Ends the session politely (`QUIT`, await `BYE`). Dropping the
    /// client without calling this is also fine — the server treats EOF
    /// as QUIT.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send(&Request::Quit)?;
        self.expect_bye()
    }

    /// Asks the daemon to stop (`SHUTDOWN`, await `BYE`).
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        self.expect_bye()
    }

    fn expect_bye(&mut self) -> Result<(), ClientError> {
        let line = self.read_line()?;
        if line.trim_end() == "BYE" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "expected BYE, got '{}'",
                line.trim_end()
            )))
        }
    }
}

/// Distinguishes a server-reported `ERR` from a malformed frame.
fn classify_header_error(header: &str, parse_msg: String) -> ClientError {
    match header.trim_end().strip_prefix("ERR\t") {
        Some(msg) => ClientError::Remote(format!("server error: {msg}")),
        None if parse_msg.starts_with("server error") => ClientError::Remote(parse_msg),
        None => ClientError::Protocol(if parse_msg.is_empty() {
            format!("malformed response header '{}'", header.trim_end())
        } else {
            parse_msg
        }),
    }
}
