//! `tc-serve` — the TCP query-serving daemon for TC-Tree segments.
//!
//! The ROADMAP's query-serving item graduates here from an in-process
//! simulation (`throughput_bench`'s serving section) to a real network
//! service: a daemon opens a [`tc_store::SegmentTcTree`] once and answers
//! the paper's QBA / QBP / general `(q, α)` queries (Algorithm 5) over a
//! line-oriented TCP protocol, `std::net` only.
//!
//! * [`protocol`] — the wire grammar: versioned greeting, the
//!   `QBA`/`QBP`/`QUERY`/`STATS`/`QUIT`/`SHUTDOWN` verbs, tab-separated
//!   and JSON response encodings, parsers for both directions;
//! * [`server`] — the daemon: a worker pool with **bounded admission**
//!   (`max_inflight` sessions; overload is answered with an explicit
//!   `BUSY` greeting, never unbounded queueing), per-verb counters, and
//!   graceful shutdown on SIGTERM / the `SHUTDOWN` verb;
//! * [`client`] — a blocking session client, reused by
//!   `tc query --remote`, `tc-bench`'s `serve_bench` sweep, and CI;
//! * [`http`] — the HTTP/1.1 + JSON gateway (`GET /qba`, `GET /qbp`,
//!   `POST /query` batches, `GET /healthz`, `GET /metrics`), sharing the
//!   same pool, admission bound, and counters;
//! * [`metrics`] — the shared counters, per-verb latency histograms, and
//!   the Prometheus text exposition behind `GET /metrics`;
//! * [`limit`] — per-client token-bucket rate limiting layered on the
//!   global inflight bound;
//! * [`reload`] — `SIGHUP` / handle-driven segment hot-reload: open and
//!   validate off-thread, then one atomic `Arc` swap; sessions are never
//!   dropped and every request answers from a single snapshot.
//!
//! ## Quick taste
//!
//! ```
//! use tc_core::DatabaseNetworkBuilder;
//! use tc_index::TcTreeBuilder;
//! use tc_serve::{ServeClient, ServeConfig, Server};
//! use tc_store::SegmentTcTree;
//!
//! // A tiny tree, served from memory on an ephemeral loopback port.
//! let mut b = DatabaseNetworkBuilder::new();
//! let beer = b.intern_item("beer");
//! for v in 0..3u32 {
//!     for _ in 0..4 {
//!         b.add_transaction(v, &[beer]);
//!     }
//! }
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let tree = TcTreeBuilder::default().build(&b.build().unwrap());
//! let mut bytes = Vec::new();
//! tc_store::save_tree_segment(&tree, &mut bytes).unwrap();
//! let seg = SegmentTcTree::from_bytes(bytes).unwrap();
//!
//! let server = Server::bind(seg, "127.0.0.1:0", ServeConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap().to_string();
//! let daemon = std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = ServeClient::connect(&addr).unwrap();
//! let answer = client.qba(0.0).unwrap();
//! assert_eq!(answer.retrieved, tree.query_by_alpha(0.0).retrieved_nodes);
//! client.shutdown_server().unwrap();
//! daemon.join().unwrap();
//! ```

pub mod client;
pub mod http;
pub mod limit;
pub mod metrics;
pub mod protocol;
pub mod reload;
pub mod server;

pub use client::{ClientError, RemoteResult, RetryPolicy, ServeClient};
pub use http::{HttpClient, HttpResponse, QuerySpec};
pub use limit::{RateLimit, RateLimiter};
pub use metrics::{Histogram, Metrics};
pub use protocol::{Greeting, QueryResponse, Request, TrussSummary, PROTOCOL_VERSION};
pub use reload::TreeSlot;
pub use server::{
    install_signal_handlers, shutdown_signal_pending, take_reload_signal, ServeConfig, Server,
    ServerHandle, StatsSnapshot,
};
