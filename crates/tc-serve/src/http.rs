//! The HTTP/1.1 + JSON gateway: the same queries as the line protocol,
//! reachable with `curl`, plus the Prometheus scrape endpoint.
//!
//! Built on `std::net` only, like the rest of the daemon — requests are
//! parsed by hand against a deliberately small grammar and answered from
//! the same worker pool, admission bound, counters, and hot-swappable
//! segment as the TCP front-end.
//!
//! ## Endpoints
//!
//! ```text
//! GET  /healthz                      liveness + directory facts
//! GET  /metrics                      Prometheus text exposition (0.0.4)
//! GET  /qba?alpha=<F>                query-by-alpha
//! GET  /qbp?items=<i1,i2,…|->        query-by-pattern (alpha = 0)
//! GET  /query?items=<…>&alpha=<F>    the general (q, alpha) query
//! POST /query                        pipelined batch (JSON body)
//! ```
//!
//! Query responses are the same JSON objects the line protocol's `JSON`
//! frames carry (`{"status":"ok","retrieved":…,"visited":…,"secs":…,
//! "trusses":[…]}`), so a `curl` answer is byte-comparable to
//! `tc query --json` output — CI's `http-smoke` job does exactly that.
//! Item ids and alpha are plain numerals, so no percent-decoding is
//! needed (and none is performed; `%` in a target is a `400`).
//!
//! ## Batch bodies
//!
//! `POST /query` takes either a bare JSON array of query objects or
//! `{"queries":[…]}`. Each object names `items` (array of ids) and/or
//! `alpha` (number): both → `QUERY`, alpha only → `QBA`, items only →
//! `QBP`, neither → the batch is rejected. The response is
//! `{"status":"ok","count":N,"results":[…]}` with one result object per
//! query, in order; a query that fails server-side yields an inline
//! `{"status":"err",…}` object without failing its neighbours.
//!
//! ## Errors and robustness
//!
//! Every error is a JSON body with a conventional status code: `400`
//! (malformed request line, header, parameter, or body — the connection
//! closes, since framing may be lost), `404`/`405` (unknown path / wrong
//! method), `413` (body over 1 MiB), `429` (per-client rate limit, with
//! `Retry-After`), `500` (server-side query failure), `503` (admission
//! bound or shutdown). Malformed input can never panic or hang the
//! worker: all reads are capped and tick against the shutdown flag and
//! idle timeout, exactly like the line protocol.

use crate::protocol::{encode_error, parse_alpha, parse_items, QueryResponse};
use crate::server::{pattern_of, Inner, READ_TICK};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;
use tc_store::SegmentTcTree;
use tc_util::json::{parse as parse_json, JsonValue};

/// Longest accepted request or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted `POST /query` body, in bytes.
const MAX_BODY: usize = 1024 * 1024;
/// Most queries accepted in one batch body.
pub const MAX_BATCH: usize = 4096;

/// JSON content type for API responses.
const CT_JSON: &str = "application/json";
/// The Prometheus text exposition content type.
const CT_METRICS: &str = "text/plain; version=0.0.4";

/// Reason phrase for every status code the gateway (and the tc-router
/// fan-out tier, which reuses this exposition surface) can emit.
pub fn reason_phrase(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one complete response and counts it. `close` adds
/// `Connection: close`; the caller must then end the session.
fn respond(
    inner: &Inner,
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason_phrase(code),
        body.len()
    );
    if code == 429 || code == 503 {
        head.push_str("Retry-After: 1\r\n");
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    inner.metrics.count_http_response(code);
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// The admission-control rejection, written straight from the accept
/// loop (the session was never queued, so no worker is involved).
pub(crate) fn write_busy_503(
    inner: &Inner,
    stream: &mut TcpStream,
    reason: &str,
) -> std::io::Result<()> {
    respond(inner, stream, 503, CT_JSON, &json_err(reason), true)
}

/// One-line JSON error body (no trailing newline lost — bodies are
/// length-delimited, the newline is cosmetic for `curl`).
fn json_err(msg: &str) -> String {
    encode_error(msg, true)
}

/// A socket reader that ticks: blocked reads wake every [`READ_TICK`] to
/// re-check the shutdown flag and the idle clock, so a byte-trickling or
/// half-dead client can neither hang a worker nor survive shutdown.
struct TickReader<'a> {
    reader: BufReader<TcpStream>,
    inner: &'a Inner,
    idle: Duration,
}

/// Why a ticked read stopped short of data.
enum ReadStop {
    /// Clean end of stream before any byte of the current read.
    Eof,
    /// The daemon is shutting down; end the session quietly.
    Shutdown,
    /// The session idled past the configured timeout.
    IdleTimeout,
    /// The line outgrew [`MAX_LINE`].
    TooLong,
}

impl TickReader<'_> {
    /// Reads one `\n`-terminated line (CRLF tolerated), stripped. Every
    /// read goes through a `take` bounded by the remaining line budget,
    /// so a client streaming bytes with no newline can never buffer more
    /// than `MAX_LINE + 2` bytes before the line is cut off as
    /// [`ReadStop::TooLong`].
    fn read_line(&mut self, line: &mut String) -> std::io::Result<Result<(), ReadStop>> {
        line.clear();
        let mut buf = Vec::new();
        loop {
            // Budget for the raw line including its CRLF terminator; the
            // stripped line may be at most MAX_LINE bytes.
            let budget = (MAX_LINE + 2).saturating_sub(buf.len()) as u64;
            if budget == 0 {
                return Ok(Err(ReadStop::TooLong));
            }
            match (&mut self.reader).take(budget).read_until(b'\n', &mut buf) {
                Ok(0) => {
                    return Ok(Err(if buf.is_empty() {
                        ReadStop::Eof
                    } else {
                        ReadStop::Shutdown // mid-line EOF: nothing to answer
                    }));
                }
                Ok(_) => {
                    if buf.last() != Some(&b'\n') {
                        continue; // budget spent mid-line → TooLong above
                    }
                    self.idle = Duration::ZERO;
                    while matches!(buf.last(), Some(b'\n' | b'\r')) {
                        buf.pop();
                    }
                    if buf.len() > MAX_LINE {
                        return Ok(Err(ReadStop::TooLong));
                    }
                    let text = std::str::from_utf8(&buf)
                        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?;
                    line.push_str(text);
                    return Ok(Ok(()));
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if let Some(stop) = self.tick()? {
                        return Ok(Err(stop));
                    }
                    // Partial bytes already in `buf` survive the retry,
                    // but only a complete line resets the idle clock.
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads exactly `len` body bytes.
    fn read_exact(&mut self, buf: &mut [u8]) -> std::io::Result<Result<(), ReadStop>> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.reader.read(&mut buf[filled..]) {
                Ok(0) => return Ok(Err(ReadStop::Eof)),
                Ok(n) => {
                    filled += n;
                    self.idle = Duration::ZERO;
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if let Some(stop) = self.tick()? {
                        return Ok(Err(stop));
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(Ok(()))
    }

    /// One timeout tick: advances the idle clock, reports shutdown or
    /// idle expiry.
    fn tick(&mut self) -> std::io::Result<Option<ReadStop>> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Ok(Some(ReadStop::Shutdown));
        }
        self.idle += READ_TICK;
        if let Some(limit) = self.inner.cfg.idle_timeout {
            if self.idle >= limit {
                return Ok(Some(ReadStop::IdleTimeout));
            }
        }
        Ok(None)
    }
}

/// Serves one admitted HTTP connection (keep-alive: many requests) until
/// the client closes, an error closes it, or shutdown drains it.
pub(crate) fn serve_http_session(inner: &Inner, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    let mut reader = TickReader {
        reader: BufReader::new(stream.try_clone()?),
        inner,
        idle: Duration::ZERO,
    };
    let mut stream = stream;
    let client_ip = stream.peer_addr().ok().map(|a| a.ip());

    let mut line = String::new();
    loop {
        match reader.read_line(&mut line)? {
            Ok(()) => {}
            Err(ReadStop::Eof | ReadStop::Shutdown) => return Ok(()),
            Err(ReadStop::IdleTimeout) => {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "session idle timeout",
                ));
            }
            Err(ReadStop::TooLong) => {
                inner
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                respond(
                    inner,
                    &mut stream,
                    400,
                    CT_JSON,
                    &json_err("request line too long"),
                    true,
                )?;
                return Ok(());
            }
        }
        if line.is_empty() {
            continue; // tolerate a stray blank line between requests
        }

        // ---- request line -------------------------------------------------
        let bad_request = |inner: &Inner, stream: &mut TcpStream, msg: &str| {
            inner
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            respond(inner, stream, 400, CT_JSON, &json_err(msg), true)
        };
        let parts: Vec<&str> = line.split(' ').filter(|t| !t.is_empty()).collect();
        let [method, target, version] = parts.as_slice() else {
            bad_request(inner, &mut stream, "malformed request line")?;
            return Ok(());
        };
        if !version.starts_with("HTTP/1.") {
            bad_request(inner, &mut stream, "only HTTP/1.0 and HTTP/1.1 are spoken")?;
            return Ok(());
        }
        let (method, target, version) = (method.to_string(), target.to_string(), *version);
        let http10 = version == "HTTP/1.0";

        // ---- headers ------------------------------------------------------
        let mut content_length: usize = 0;
        let mut connection = String::new();
        let mut header_count = 0usize;
        let mut header = String::new();
        loop {
            match reader.read_line(&mut header)? {
                Ok(()) => {}
                Err(ReadStop::TooLong) => {
                    bad_request(inner, &mut stream, "header line too long")?;
                    return Ok(());
                }
                Err(ReadStop::IdleTimeout) => {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        "session idle timeout",
                    ));
                }
                Err(_) => return Ok(()), // EOF/shutdown mid-headers
            }
            if header.is_empty() {
                break;
            }
            header_count += 1;
            if header_count > MAX_HEADERS {
                bad_request(inner, &mut stream, "too many headers")?;
                return Ok(());
            }
            let Some((name, value)) = header.split_once(':') else {
                bad_request(inner, &mut stream, "malformed header line")?;
                return Ok(());
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    let Ok(n) = value.parse::<usize>() else {
                        bad_request(inner, &mut stream, "bad Content-Length")?;
                        return Ok(());
                    };
                    content_length = n;
                }
                "connection" => connection = value.to_ascii_lowercase(),
                "transfer-encoding" => {
                    // Chunked bodies are out of grammar; refuse rather
                    // than desynchronise on framing we don't implement.
                    bad_request(inner, &mut stream, "Transfer-Encoding is not supported")?;
                    return Ok(());
                }
                _ => {}
            }
        }

        // ---- body ---------------------------------------------------------
        if content_length > MAX_BODY {
            inner
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            respond(
                inner,
                &mut stream,
                413,
                CT_JSON,
                &json_err(&format!("body exceeds {MAX_BODY} bytes")),
                true,
            )?;
            return Ok(());
        }
        let mut body_bytes = vec![0u8; content_length];
        if content_length > 0 {
            match reader.read_exact(&mut body_bytes)? {
                Ok(()) => {}
                Err(ReadStop::IdleTimeout) => {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        "session idle timeout",
                    ));
                }
                Err(_) => return Ok(()), // EOF/shutdown mid-body
            }
        }

        let close_after = connection == "close" || (http10 && connection != "keep-alive");

        // ---- rate limit ---------------------------------------------------
        // Introspection endpoints are exempt: a throttled client must
        // still be observable, and scrapers must never be starved by a
        // noisy co-tenant behind the same IP.
        let introspection = {
            let path = target.split('?').next().unwrap_or("");
            path == "/healthz" || path == "/metrics"
        };
        if !introspection {
            if let Some(ip) = client_ip {
                if !inner.within_rate(ip) {
                    respond(
                        inner,
                        &mut stream,
                        429,
                        CT_JSON,
                        &json_err("per-client rate limit exceeded"),
                        close_after,
                    )?;
                    if close_after {
                        return Ok(());
                    }
                    continue;
                }
            }
        }

        // ---- route --------------------------------------------------------
        let (code, content_type, response_body) = route(inner, &method, &target, &body_bytes);
        let close = close_after || code == 400;
        respond(
            inner,
            &mut stream,
            code,
            content_type,
            &response_body,
            close,
        )?;
        if close {
            return Ok(());
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Dispatches one parsed request to its handler. Returns
/// `(status, content type, body)`.
fn route(inner: &Inner, method: &str, target: &str, body: &[u8]) -> (u16, &'static str, String) {
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if target.contains('%') {
        inner
            .metrics
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        return (
            400,
            CT_JSON,
            json_err("percent-encoding is not used by this API"),
        );
    }
    match (method, path) {
        ("GET", "/healthz") => {
            inner.metrics.stats.fetch_add(1, Ordering::Relaxed);
            let tree = inner.tree.load();
            (
                200,
                CT_JSON,
                format!(
                    "{{\"status\":\"ok\",\"nodes\":{},\"materialized\":{},\"cache_bytes_used\":{},\"alpha_star\":{}}}\n",
                    tree.num_nodes(),
                    tree.materialized_nodes(),
                    tree.cache_stats().bytes_used,
                    tree.alpha_upper_bound()
                ),
            )
        }
        ("GET", "/metrics") => {
            let tree = inner.tree.load();
            let text = inner.metrics.render_prometheus(
                inner.inflight.load(Ordering::SeqCst) as u64,
                crate::metrics::TreeGauges::of(&tree),
            );
            (200, CT_METRICS, text)
        }
        ("GET", "/qba") => match require_param(query_string, "alpha").and_then(parse_alpha) {
            Ok(alpha) => run_query(inner, QuerySpec::Qba(alpha)),
            Err(msg) => param_error(inner, &msg),
        },
        ("GET", "/qbp") => match require_param(query_string, "items").and_then(parse_items_qs) {
            Ok(items) => run_query(inner, QuerySpec::Qbp(items)),
            Err(msg) => param_error(inner, &msg),
        },
        ("GET", "/query") => {
            let parsed = require_param(query_string, "items")
                .and_then(parse_items_qs)
                .and_then(|items| {
                    require_param(query_string, "alpha")
                        .and_then(parse_alpha)
                        .map(|alpha| (items, alpha))
                });
            match parsed {
                Ok((items, alpha)) => run_query(inner, QuerySpec::Query(items, alpha)),
                Err(msg) => param_error(inner, &msg),
            }
        }
        ("POST", "/query") => handle_batch(inner, body),
        (_, "/healthz" | "/metrics" | "/qba" | "/qbp" | "/query") => (
            405,
            CT_JSON,
            json_err(&format!("{method} not allowed here")),
        ),
        _ => (404, CT_JSON, json_err(&format!("no such endpoint {path}"))),
    }
}

fn param_error(inner: &Inner, msg: &str) -> (u16, &'static str, String) {
    inner
        .metrics
        .protocol_errors
        .fetch_add(1, Ordering::Relaxed);
    (400, CT_JSON, json_err(msg))
}

/// Finds `name` in a raw query string (`k=v&k=v`, no decoding).
pub fn require_param<'a>(query_string: &'a str, name: &str) -> Result<&'a str, String> {
    query_string
        .split('&')
        .find_map(|pair| match pair.split_once('=') {
            Some((k, v)) if k == name => Some(v),
            _ => None,
        })
        .ok_or_else(|| format!("missing query parameter '{name}'"))
}

/// `items=` accepts the same grammar as the line protocol, plus the bare
/// empty value as a second spelling of the empty pattern.
pub fn parse_items_qs(raw: &str) -> Result<Vec<u32>, String> {
    if raw.is_empty() {
        return Ok(Vec::new());
    }
    parse_items(raw)
}

/// One query, after parameter validation.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// Query-by-alpha: every theme community with cohesion > alpha.
    Qba(f64),
    /// Query-by-pattern: every theme community whose pattern covers
    /// the given items.
    Qbp(Vec<u32>),
    /// The combined form: pattern plus alpha threshold.
    Query(Vec<u32>, f64),
}

/// Runs one query against the current snapshot, counting verb, latency,
/// and failure exactly like the line protocol does.
fn run_query(inner: &Inner, spec: QuerySpec) -> (u16, &'static str, String) {
    let tree = inner.tree.load();
    match execute(inner, &tree, &spec) {
        Ok(obj) => (200, CT_JSON, obj + "\n"),
        Err(msg) => (500, CT_JSON, json_err(&msg)),
    }
}

/// Executes `spec` against `tree`; `Ok` is the response JSON object
/// (no trailing newline), `Err` the server-side failure message.
fn execute(inner: &Inner, tree: &SegmentTcTree, spec: &QuerySpec) -> Result<String, String> {
    let m = &inner.metrics;
    let (result, hist) = match spec {
        QuerySpec::Qba(alpha) => {
            m.qba.fetch_add(1, Ordering::Relaxed);
            (tree.query_by_alpha(*alpha), &m.qba_latency)
        }
        QuerySpec::Qbp(items) => {
            m.qbp.fetch_add(1, Ordering::Relaxed);
            (tree.query_by_pattern(&pattern_of(items)), &m.qbp_latency)
        }
        QuerySpec::Query(items, alpha) => {
            m.query.fetch_add(1, Ordering::Relaxed);
            (tree.query(&pattern_of(items), *alpha), &m.query_latency)
        }
    };
    match result {
        Ok(r) => {
            hist.observe(r.elapsed_secs);
            Ok(QueryResponse::from_result(&r).json_object())
        }
        Err(e) => {
            m.query_failures.fetch_add(1, Ordering::Relaxed);
            Err(e.to_string())
        }
    }
}

/// `POST /query`: parse the whole batch up front (reject it atomically on
/// any malformed entry), then execute in order against one snapshot.
fn handle_batch(inner: &Inner, body: &[u8]) -> (u16, &'static str, String) {
    let started = std::time::Instant::now();
    let Ok(text) = std::str::from_utf8(body) else {
        return param_error(inner, "body is not UTF-8");
    };
    let specs = match parse_batch_specs(text) {
        Ok(specs) => specs,
        Err(msg) => return param_error(inner, &msg),
    };
    inner.metrics.batch.fetch_add(1, Ordering::Relaxed);
    // One snapshot for the whole batch: a hot reload landing mid-batch
    // never mixes segments inside one response.
    let tree = inner.tree.load();
    let mut results = String::new();
    for (i, spec) in specs.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        match execute(inner, &tree, spec) {
            Ok(obj) => results.push_str(&obj),
            Err(msg) => {
                // Inline error object: one bad query must not void the
                // rest of the batch the client pipelined with it.
                let err = json_err(&msg);
                results.push_str(err.trim_end());
            }
        }
    }
    inner
        .metrics
        .batch_latency
        .observe(started.elapsed().as_secs_f64());
    (
        200,
        CT_JSON,
        format!(
            "{{\"status\":\"ok\",\"count\":{},\"results\":[{results}]}}\n",
            specs.len()
        ),
    )
}

/// Parses a batch body into query specs: a bare array or
/// `{"queries":[…]}` of objects naming `items` and/or `alpha`.
pub fn parse_batch_specs(text: &str) -> Result<Vec<QuerySpec>, String> {
    let value = parse_json(text).map_err(|e| format!("bad JSON body: {e}"))?;
    let entries = value
        .as_arr()
        .or_else(|| value.get("queries").and_then(JsonValue::as_arr))
        .ok_or("body must be a JSON array or {\"queries\":[…]}")?;
    if entries.len() > MAX_BATCH {
        return Err(format!("batch of {} exceeds {MAX_BATCH}", entries.len()));
    }
    entries
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            let items = match entry.get("items") {
                None => None,
                Some(v) => Some(
                    v.as_arr()
                        .ok_or(format!("query {i}: items must be an array"))?
                        .iter()
                        .map(|x| {
                            let n = x
                                .as_num()
                                .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                                .ok_or(format!("query {i}: bad item id"))?;
                            u32::try_from(n as u64)
                                .map_err(|_| format!("query {i}: item id out of range"))
                        })
                        .collect::<Result<Vec<u32>, String>>()?,
                ),
            };
            let alpha = match entry.get("alpha") {
                None => None,
                Some(v) => Some(
                    v.as_num()
                        .filter(|a| a.is_finite() && *a >= 0.0)
                        .ok_or(format!("query {i}: alpha must be finite and >= 0"))?,
                ),
            };
            match (items, alpha) {
                (Some(items), Some(alpha)) => Ok(QuerySpec::Query(items, alpha)),
                (None, Some(alpha)) => Ok(QuerySpec::Qba(alpha)),
                (Some(items), None) => Ok(QuerySpec::Qbp(items)),
                (None, None) => Err(format!("query {i}: needs items and/or alpha")),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// The response body, exactly `Content-Length` bytes.
    pub body: String,
}

impl HttpResponse {
    /// Whether the status is 2xx.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A minimal blocking keep-alive HTTP/1.1 client — just enough for
/// `tc-serve`'s own tests, `serve_bench`'s HTTP sweep, and embedders who
/// already link this crate. Speaks only what the gateway serves:
/// `Content-Length`-delimited bodies over one reused connection.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to `addr` (e.g. `127.0.0.1:8080`).
    pub fn connect(addr: &str) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
        })
    }

    /// Issues `GET <target>` on the kept-alive connection.
    pub fn get(&mut self, target: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", target, None)
    }

    /// Issues `POST <target>` with a JSON `body`.
    pub fn post(&mut self, target: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request("POST", target, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let mut req = format!("{method} {target} HTTP/1.1\r\nHost: tc-serve\r\n");
        if let Some(body) = body {
            req.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        req.push_str("\r\n");
        if let Some(body) = body {
            req.push_str(body);
        }
        self.reader.get_mut().write_all(req.as_bytes())?;

        let bad = |msg: String| std::io::Error::new(ErrorKind::InvalidData, msg);
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad(format!("malformed status line '{}'", line.trim_end())))?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed mid-headers".to_string()));
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad Content-Length '{}'", value.trim())))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body".to_string()))?;
        Ok(HttpResponse { status, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_params_are_found_without_decoding() {
        assert_eq!(require_param("alpha=0.5", "alpha").unwrap(), "0.5");
        assert_eq!(require_param("items=1,2&alpha=0", "alpha").unwrap(), "0");
        assert_eq!(require_param("items=&alpha=0", "items").unwrap(), "");
        assert!(require_param("alpha=0.5", "items").is_err());
        assert!(require_param("", "alpha").is_err());
    }

    #[test]
    fn items_param_accepts_both_empty_spellings() {
        assert_eq!(parse_items_qs("").unwrap(), Vec::<u32>::new());
        assert_eq!(parse_items_qs("-").unwrap(), Vec::<u32>::new());
        assert_eq!(parse_items_qs("3,1").unwrap(), vec![3, 1]);
        assert!(parse_items_qs("3,x").is_err());
    }

    #[test]
    fn batch_specs_parse_both_shapes_and_all_three_verbs() {
        let bare = r#"[{"alpha":0.25},{"items":[3,7]},{"items":[1],"alpha":0.5}]"#;
        let specs = parse_batch_specs(bare).unwrap();
        assert_eq!(
            specs,
            vec![
                QuerySpec::Qba(0.25),
                QuerySpec::Qbp(vec![3, 7]),
                QuerySpec::Query(vec![1], 0.5),
            ]
        );
        let wrapped = r#"{"queries":[{"items":[],"alpha":0}]}"#;
        assert_eq!(
            parse_batch_specs(wrapped).unwrap(),
            vec![QuerySpec::Query(vec![], 0.0)]
        );
    }

    #[test]
    fn batch_specs_reject_malformed_entries() {
        for body in [
            "",
            "not json",
            "{}",
            r#"{"queries":{}}"#,
            r#"[{}]"#,
            r#"[{"items":3}]"#,
            r#"[{"items":[1.5]}]"#,
            r#"[{"items":[-1]}]"#,
            r#"[{"items":[1],"alpha":-0.5}]"#,
            r#"[{"alpha":"high"}]"#,
            r#"[{"items":[99999999999]}]"#,
        ] {
            assert!(parse_batch_specs(body).is_err(), "accepted: {body}");
        }
    }

    #[test]
    fn batch_cap_is_enforced() {
        let mut body = String::from("[");
        for i in 0..=MAX_BATCH {
            if i > 0 {
                body.push(',');
            }
            body.push_str("{\"alpha\":0}");
        }
        body.push(']');
        let err = parse_batch_specs(&body).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn reason_phrases_cover_the_exposition_codes() {
        for code in crate::metrics::HTTP_CODES {
            assert!(!reason_phrase(code).is_empty());
        }
        assert_eq!(reason_phrase(418), "Internal Server Error");
    }
}
