//! Per-client token-bucket rate limiting, layered **on top of** the
//! global `max_inflight` admission bound.
//!
//! The inflight bound protects the daemon from aggregate overload; this
//! limiter protects it from a *single* hot client starving everyone else
//! inside that bound. Each client (keyed by peer IP — ports churn per
//! connection) owns a token bucket refilled continuously at
//! [`RateLimit::per_sec`] up to [`RateLimit::burst`]; a request or
//! connection costs one token, and an empty bucket means an explicit
//! rejection the client can pace against: `429 Too Many Requests` on the
//! HTTP front-end, a `BUSY` greeting on the TCP one. Nothing ever queues
//! behind the limiter.

use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Instant;
use tc_util::sync::Mutex;

/// Hard cap on tracked buckets. At the cap, full (i.e. long-idle)
/// buckets are swept first — an idle client's bucket refills to `burst`
/// and then carries no more state than a fresh one — and if every bucket
/// is still active, the fullest is force-evicted so the map can never
/// outgrow the cap.
const MAX_TRACKED_CLIENTS: usize = 4096;

/// Token-bucket parameters: steady rate plus burst headroom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained requests per second per client.
    pub per_sec: f64,
    /// Bucket capacity — how many requests a client may burst after an
    /// idle stretch before the steady rate applies.
    pub burst: f64,
}

impl RateLimit {
    /// A limit of `per_sec` with the conventional 2× burst headroom
    /// (minimum 1 token, or no client could ever connect).
    pub fn per_second(per_sec: f64) -> RateLimit {
        RateLimit {
            per_sec,
            burst: (per_sec * 2.0).max(1.0),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// The shared limiter: one bucket per client IP behind one mutex. The
/// critical section is a handful of float ops — far cheaper than the
/// query that follows an admitted request.
#[derive(Debug)]
pub struct RateLimiter {
    cfg: RateLimit,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl RateLimiter {
    /// A limiter enforcing `cfg` per client IP.
    pub fn new(cfg: RateLimit) -> RateLimiter {
        RateLimiter {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> RateLimit {
        self.cfg
    }

    /// Spends one token from `client`'s bucket; `false` means the client
    /// is over its rate and the caller must reject the request.
    pub fn allow(&self, client: IpAddr) -> bool {
        self.allow_at(client, Instant::now())
    }

    /// [`RateLimiter::allow`] with an injected clock, so tests are
    /// deterministic.
    fn allow_at(&self, client: IpAddr, now: Instant) -> bool {
        let mut buckets = self.buckets.lock();
        if buckets.len() >= MAX_TRACKED_CLIENTS && !buckets.contains_key(&client) {
            let (per_sec, burst) = (self.cfg.per_sec, self.cfg.burst);
            let effective = move |b: &Bucket, now: Instant| {
                b.tokens + now.saturating_duration_since(b.refilled).as_secs_f64() * per_sec
            };
            buckets.retain(|_, b| effective(b, now) < burst);
            // The cap is a hard bound, not a hint: if every tracked
            // client is still active (e.g. an attacker cycling through an
            // IPv6 /64), the sweep frees nothing, so evict the fullest —
            // i.e. most idle — buckets to make room. Evicting a *drained*
            // bucket would hand a throttled client a fresh burst, so the
            // fullest goes first; for it, eviction is a no-op (a fresh
            // bucket starts with `burst` tokens anyway).
            while buckets.len() >= MAX_TRACKED_CLIENTS {
                let victim = buckets
                    .iter()
                    .max_by(|(_, a), (_, b)| effective(a, now).total_cmp(&effective(b, now)))
                    .map(|(ip, _)| *ip);
                match victim {
                    Some(ip) => buckets.remove(&ip),
                    None => break,
                };
            }
        }
        let bucket = buckets.entry(client).or_insert(Bucket {
            tokens: self.cfg.burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.cfg.per_sec).min(self.cfg.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn burst_is_allowed_then_rate_applies() {
        let rl = RateLimiter::new(RateLimit {
            per_sec: 2.0,
            burst: 3.0,
        });
        let t0 = Instant::now();
        assert!(rl.allow_at(ip(1), t0));
        assert!(rl.allow_at(ip(1), t0));
        assert!(rl.allow_at(ip(1), t0));
        assert!(!rl.allow_at(ip(1), t0), "burst exhausted");
        // Half a second refills one token at 2/s.
        let t1 = t0 + Duration::from_millis(500);
        assert!(rl.allow_at(ip(1), t1));
        assert!(!rl.allow_at(ip(1), t1));
    }

    #[test]
    fn clients_are_isolated() {
        let rl = RateLimiter::new(RateLimit {
            per_sec: 1.0,
            burst: 1.0,
        });
        let t0 = Instant::now();
        assert!(rl.allow_at(ip(1), t0));
        assert!(!rl.allow_at(ip(1), t0));
        assert!(rl.allow_at(ip(2), t0), "a throttled peer must not leak");
    }

    #[test]
    fn refill_is_capped_at_burst() {
        let rl = RateLimiter::new(RateLimit {
            per_sec: 10.0,
            burst: 2.0,
        });
        let t0 = Instant::now();
        assert!(rl.allow_at(ip(7), t0));
        // A long sleep must not bank more than `burst` tokens.
        let t1 = t0 + Duration::from_secs(60);
        assert!(rl.allow_at(ip(7), t1));
        assert!(rl.allow_at(ip(7), t1));
        assert!(!rl.allow_at(ip(7), t1));
    }

    #[test]
    fn per_second_constructor_keeps_a_connectable_floor() {
        let rl = RateLimit::per_second(0.25);
        assert_eq!(rl.burst, 1.0, "burst below one token would reject everyone");
        assert_eq!(RateLimit::per_second(50.0).burst, 100.0);
    }

    #[test]
    fn idle_buckets_are_evicted_under_pressure() {
        let rl = RateLimiter::new(RateLimit {
            per_sec: 100.0,
            burst: 2.0,
        });
        let t0 = Instant::now();
        for i in 0..MAX_TRACKED_CLIENTS {
            let addr = IpAddr::V4(Ipv4Addr::from((i as u32 + 1).to_be_bytes()));
            assert!(rl.allow_at(addr, t0));
        }
        assert_eq!(rl.buckets.lock().len(), MAX_TRACKED_CLIENTS);
        // Much later every tracked bucket is full again, so a new client
        // triggers a sweep instead of unbounded growth.
        let t1 = t0 + Duration::from_secs(3600);
        assert!(rl.allow_at(ip(9), t1));
        assert!(rl.buckets.lock().len() < MAX_TRACKED_CLIENTS);
    }

    #[test]
    fn cap_is_a_hard_bound_even_with_every_client_active() {
        let rl = RateLimiter::new(RateLimit {
            per_sec: 1.0,
            burst: 2.0,
        });
        // Same instant throughout: no bucket ever refills, so the idle
        // sweep frees nothing and only stalest-eviction can make room.
        let t0 = Instant::now();
        for i in 0..MAX_TRACKED_CLIENTS + 64 {
            let addr = IpAddr::V4(Ipv4Addr::from((i as u32 + 1).to_be_bytes()));
            assert!(rl.allow_at(addr, t0), "client {i} must still be admitted");
        }
        assert!(
            rl.buckets.lock().len() <= MAX_TRACKED_CLIENTS,
            "bucket map must never exceed MAX_TRACKED_CLIENTS"
        );
    }

    #[test]
    fn forced_eviction_prefers_idle_over_throttled_clients() {
        let rl = RateLimiter::new(RateLimit {
            per_sec: 100.0,
            burst: 2.0,
        });
        let t0 = Instant::now();
        // A throttled (fully drained, 0 tokens) client…
        assert!(rl.allow_at(ip(1), t0));
        assert!(rl.allow_at(ip(1), t0));
        assert!(!rl.allow_at(ip(1), t0));
        // …then fill the map with fresh clients until evictions start.
        for i in 0..MAX_TRACKED_CLIENTS {
            let addr = IpAddr::V4(Ipv4Addr::from((0x0a00_0000 + i as u32).to_be_bytes()));
            rl.allow_at(addr, t0);
        }
        // The drained bucket survives the evictions, so the throttled
        // client did not get a fresh burst out of the churn.
        assert!(
            !rl.allow_at(ip(1), t0),
            "eviction churn must not reset a throttled client"
        );
    }
}
