//! End-to-end tests of the HTTP/JSON gateway over real loopback sockets:
//! answer parity with in-memory queries, batch bodies, malformed-request
//! robustness, per-client rate limiting, the Prometheus exposition, and
//! zero-drop hot reloads.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tc_data::{generate_coauthor, CoauthorConfig};
use tc_index::{TcTree, TcTreeBuilder};
use tc_serve::{HttpClient, RateLimit, ServeConfig, Server, ServerHandle};
use tc_store::SegmentTcTree;
use tc_util::json::{parse as parse_json, JsonValue};

fn sample_tree(seed: u64, groups: usize) -> TcTree {
    let net = generate_coauthor(&CoauthorConfig {
        groups,
        authors_per_group: 8,
        seed,
        ..CoauthorConfig::default()
    })
    .network;
    TcTreeBuilder::default().build(&net)
}

fn segment_of(tree: &TcTree) -> SegmentTcTree {
    let mut bytes = Vec::new();
    tc_store::save_tree_segment(tree, &mut bytes).unwrap();
    SegmentTcTree::from_bytes(bytes).unwrap()
}

/// Starts a daemon with both front-ends on ephemeral ports; returns the
/// HTTP address, the remote control, and the `run()` join handle.
fn spawn_http_server(
    tree: &TcTree,
    cfg: ServeConfig,
) -> (
    String,
    ServerHandle,
    std::thread::JoinHandle<tc_serve::StatsSnapshot>,
) {
    let cfg = ServeConfig {
        http_addr: Some("127.0.0.1:0".to_string()),
        ..cfg
    };
    let server = Server::bind(segment_of(tree), "127.0.0.1:0", cfg).unwrap();
    let http_addr = server.local_http_addr().unwrap().unwrap().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (http_addr, handle, join)
}

fn num(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_num).unwrap()
}

/// `(pattern, vertices, edges)` triples of a response body, in order.
fn truss_keys(v: &JsonValue) -> Vec<(Vec<u32>, u64, u64)> {
    v.get("trusses")
        .and_then(JsonValue::as_arr)
        .unwrap()
        .iter()
        .map(|t| {
            (
                t.get("pattern")
                    .and_then(JsonValue::as_arr)
                    .unwrap()
                    .iter()
                    .map(|i| i.as_num().unwrap() as u32)
                    .collect(),
                num(t, "vertices") as u64,
                num(t, "edges") as u64,
            )
        })
        .collect()
}

fn local_keys(r: &tc_index::QueryResult) -> Vec<(Vec<u32>, u64, u64)> {
    r.trusses
        .iter()
        .map(|t| {
            (
                t.pattern.iter().map(|i| i.0).collect(),
                t.num_vertices() as u64,
                t.num_edges() as u64,
            )
        })
        .collect()
}

#[test]
fn http_answers_match_local_queries() {
    let tree = sample_tree(11, 3);
    let (addr, handle, join) = spawn_http_server(&tree, ServeConfig::default());
    let mut client = HttpClient::connect(&addr).unwrap();

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let health = parse_json(&health.body).unwrap();
    assert_eq!(num(&health, "nodes") as usize, tree.num_nodes());
    let alpha_star = num(&health, "alpha_star");

    // QBA parity across a threshold sweep, on one keep-alive connection.
    for i in 0..6 {
        let alpha = alpha_star * i as f64 / 5.0;
        let resp = client.get(&format!("/qba?alpha={alpha}")).unwrap();
        assert_eq!(resp.status, 200, "alpha={alpha}: {}", resp.body);
        let body = parse_json(&resp.body).unwrap();
        let local = tree.query_by_alpha(alpha);
        assert_eq!(num(&body, "retrieved") as usize, local.retrieved_nodes);
        assert_eq!(num(&body, "visited") as usize, local.visited_nodes);
        assert_eq!(truss_keys(&body), local_keys(&local), "alpha={alpha}");
    }

    // QBP and QUERY on every node pattern.
    for id in 1..=tree.num_nodes() as u32 {
        let q = tree.node(id).pattern.clone();
        let ids = q
            .iter()
            .map(|i| i.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let resp = client.get(&format!("/qbp?items={ids}")).unwrap();
        assert_eq!(resp.status, 200);
        let body = parse_json(&resp.body).unwrap();
        assert_eq!(truss_keys(&body), local_keys(&tree.query_by_pattern(&q)));

        let alpha = alpha_star / 2.0;
        let resp = client
            .get(&format!("/query?items={ids}&alpha={alpha}"))
            .unwrap();
        assert_eq!(resp.status, 200);
        let body = parse_json(&resp.body).unwrap();
        assert_eq!(truss_keys(&body), local_keys(&tree.query(&q, alpha)));
    }

    // Both spellings of the empty pattern.
    for target in ["/qbp?items=-", "/qbp?items="] {
        let resp = client.get(target).unwrap();
        assert_eq!(resp.status, 200, "{target}");
    }

    // Unknown path and wrong method keep the session alive.
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.post("/qba", "{}").unwrap().status, 405);
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    handle.shutdown();
    let stats = join.join().unwrap();
    assert!(stats.qba >= 6 && stats.qbp >= 1 && stats.query >= 1);
    assert_eq!(stats.rejected_busy, 0);
}

#[test]
fn batch_post_matches_sequential_queries() {
    let tree = sample_tree(7, 2);
    let (addr, handle, join) = spawn_http_server(&tree, ServeConfig::default());
    let mut client = HttpClient::connect(&addr).unwrap();

    let q = tree.node(1).pattern.clone();
    let ids = q.iter().map(|i| i.0).collect::<Vec<_>>();
    let ids_json = ids.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
    let body = format!(
        "[{{\"alpha\":0}},{{\"items\":[{ids_json}]}},{{\"items\":[{ids_json}],\"alpha\":0.1}}]"
    );
    let resp = client.post("/query", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed = parse_json(&resp.body).unwrap();
    assert_eq!(num(&parsed, "count") as usize, 3);
    let results = parsed.get("results").and_then(JsonValue::as_arr).unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(
        truss_keys(&results[0]),
        local_keys(&tree.query_by_alpha(0.0))
    );
    assert_eq!(
        truss_keys(&results[1]),
        local_keys(&tree.query_by_pattern(&q))
    );
    assert_eq!(truss_keys(&results[2]), local_keys(&tree.query(&q, 0.1)));

    // The wrapped shape answers identically.
    let resp = client
        .post("/query", &format!("{{\"queries\":{body}}}"))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(num(&parse_json(&resp.body).unwrap(), "count") as usize, 3);

    // A malformed entry rejects the whole batch with 400 — atomically.
    let resp = client.post("/query", "[{\"alpha\":0},{}]");
    // 400 closes the connection, so the response may arrive before the
    // close or the write may surface the reset; accept either.
    if let Ok(resp) = resp {
        assert_eq!(resp.status, 400, "{}", resp.body);
    }

    handle.shutdown();
    let stats = join.join().unwrap();
    assert_eq!(stats.batch, 2);
    assert!(stats.queries_served() >= 6);
}

/// Writes raw bytes, reads whatever comes back until the peer closes.
fn raw_roundtrip(addr: &str, payload: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    s.write_all(payload).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn endless_unterminated_line_is_cut_off_not_buffered() {
    let tree = sample_tree(3, 2);
    let (addr, handle, join) = spawn_http_server(&tree, ServeConfig::default());

    // Stream newline-less bytes past the line cap: the server must
    // answer 400 and close while the "line" is still arriving, instead
    // of buffering it without bound waiting for a newline.
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let chunk = [b'a'; 2048];
    for _ in 0..5 {
        if s.write_all(&chunk).is_err() {
            break; // already cut off — that's the point
        }
    }
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    let reply = String::from_utf8_lossy(&out);
    assert!(reply.starts_with("HTTP/1.1 400 "), "{reply}");
    assert!(reply.contains("too long"), "{reply}");

    handle.shutdown();
    let stats = join.join().unwrap();
    assert!(stats.protocol_errors >= 1);
}

#[test]
fn malformed_requests_get_json_400_and_never_hang_the_daemon() {
    let tree = sample_tree(3, 2);
    let (addr, handle, join) = spawn_http_server(&tree, ServeConfig::default());

    let cases: Vec<Vec<u8>> = vec![
        b"garbage\r\n\r\n".to_vec(),
        b"GET /qba?alpha=0 SPDY/3\r\n\r\n".to_vec(),
        b"GET /qba HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(),
        b"GET /qba?alpha=nope HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /qba?alpha=-1 HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /qbp?items=1,x HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /query?items=1 HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /qba%3Falpha=0 HTTP/1.1\r\n\r\n".to_vec(),
        b"POST /query HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson".to_vec(),
        b"POST /query HTTP/1.1\r\nContent-Length: x\r\n\r\n".to_vec(),
        b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
        [b"GET /".as_slice(), &vec![b'a'; 9000], b" HTTP/1.1\r\n\r\n"].concat(),
    ];
    for payload in &cases {
        let reply = raw_roundtrip(&addr, payload);
        assert!(
            reply.starts_with("HTTP/1.1 400 "),
            "payload {:?} got: {reply}",
            String::from_utf8_lossy(&payload[..payload.len().min(40)])
        );
        assert!(
            reply.contains("\"status\":\"err\""),
            "no JSON error body: {reply}"
        );
    }
    // An oversized body draws 413 before the server reads any of it.
    let reply = raw_roundtrip(
        &addr,
        b"POST /query HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 413 "), "{reply}");

    // After all that abuse, a fresh connection still answers instantly.
    let mut client = HttpClient::connect(&addr).unwrap();
    let resp = client.get("/qba?alpha=0").unwrap();
    assert_eq!(resp.status, 200);

    handle.shutdown();
    let stats = join.join().unwrap();
    assert!(stats.protocol_errors >= cases.len() as u64);
    assert_eq!(stats.query_failures, 0);
}

#[test]
fn hot_reload_never_drops_a_session_and_answers_are_snapshots() {
    let small = sample_tree(5, 2);
    let big = sample_tree(5, 4);
    let (addr, handle, join) = spawn_http_server(
        &small,
        ServeConfig {
            workers: 4,
            max_inflight: 64,
            ..ServeConfig::default()
        },
    );
    let small_retrieved = small.query_by_alpha(0.0).retrieved_nodes as f64;
    let big_retrieved = big.query_by_alpha(0.0).retrieved_nodes as f64;
    assert_ne!(small_retrieved, big_retrieved, "swap must be observable");

    // Hammer the daemon from several keep-alive sessions while the main
    // thread swaps segments. Every answer must be whole — exactly the old
    // or the new segment's, never an error, never a mix, never a drop.
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(&addr).unwrap();
                let mut answers = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let resp = client.get("/qba?alpha=0").unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    let body = parse_json(&resp.body).unwrap();
                    answers.push(num(&body, "retrieved"));
                }
                answers
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(100));
    handle.swap_tree(segment_of(&big));
    std::thread::sleep(std::time::Duration::from_millis(100));
    handle.swap_tree(segment_of(&small));
    std::thread::sleep(std::time::Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);

    let mut saw = std::collections::BTreeSet::new();
    for h in hammers {
        for answer in h.join().unwrap() {
            assert!(
                answer == small_retrieved || answer == big_retrieved,
                "answer {answer} is neither segment's"
            );
            saw.insert(answer as u64);
        }
    }
    assert!(saw.len() == 2, "both segments must have served: {saw:?}");

    handle.shutdown();
    let stats = join.join().unwrap();
    assert_eq!(stats.reloads, 2);
    assert_eq!(stats.reload_failures, 0);
}

#[test]
fn path_reload_validates_and_survives_a_corrupt_replacement() {
    let dir = std::env::temp_dir().join("tc_serve_http_reload");
    std::fs::create_dir_all(&dir).unwrap();
    let seg_path = dir.join("serving.seg");

    let small = sample_tree(9, 2);
    let big = sample_tree(9, 4);
    let mut bytes = Vec::new();
    tc_store::save_tree_segment(&small, &mut bytes).unwrap();
    std::fs::write(&seg_path, &bytes).unwrap();

    let (addr, handle, join) = spawn_http_server(
        &small,
        ServeConfig {
            reload_path: Some(seg_path.clone()),
            ..ServeConfig::default()
        },
    );
    let mut client = HttpClient::connect(&addr).unwrap();
    let nodes_of = |client: &mut HttpClient| {
        let body = client.get("/healthz").unwrap().body;
        num(&parse_json(&body).unwrap(), "nodes") as usize
    };
    assert_eq!(nodes_of(&mut client), small.num_nodes());

    // Corrupt replacement: rejected at validation, old segment keeps
    // serving, the failure is counted.
    std::fs::write(&seg_path, b"TCSEG01 but not really").unwrap();
    assert!(handle.reload().is_err());
    assert_eq!(nodes_of(&mut client), small.num_nodes());

    // Valid replacement: swapped in, visible to the same session.
    let mut bytes = Vec::new();
    tc_store::save_tree_segment(&big, &mut bytes).unwrap();
    std::fs::write(&seg_path, &bytes).unwrap();
    assert_eq!(handle.reload().unwrap(), big.num_nodes());
    assert_eq!(nodes_of(&mut client), big.num_nodes());

    handle.shutdown();
    let stats = join.join().unwrap();
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.reload_failures, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rate_limit_yields_429_and_exempts_introspection() {
    let tree = sample_tree(2, 2);
    let (addr, handle, join) = spawn_http_server(
        &tree,
        ServeConfig {
            rate_limit: Some(RateLimit {
                per_sec: 0.001, // effectively no refill within the test
                burst: 3.0,
            }),
            ..ServeConfig::default()
        },
    );
    let mut client = HttpClient::connect(&addr).unwrap();
    for i in 0..3 {
        assert_eq!(client.get("/qba?alpha=0").unwrap().status, 200, "req {i}");
    }
    let resp = client.get("/qba?alpha=0").unwrap();
    assert_eq!(resp.status, 429);
    assert!(resp.body.contains("rate limit"), "{}", resp.body);

    // The throttled client can still observe the daemon…
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    // …and the rejection is visible in the exposition.
    assert!(
        metrics
            .body
            .contains("tcserve_connections_total{outcome=\"rate_limited\"} 1"),
        "{}",
        metrics.body
    );

    handle.shutdown();
    let stats = join.join().unwrap();
    assert_eq!(stats.rate_limited, 1);
    assert_eq!(stats.qba, 3);
}

#[test]
fn metrics_exposition_counts_requests_and_parses_cleanly() {
    let tree = sample_tree(4, 2);
    let (addr, handle, join) = spawn_http_server(&tree, ServeConfig::default());
    let mut client = HttpClient::connect(&addr).unwrap();

    let before = client.get("/metrics").unwrap().body;
    assert!(before.contains("tcserve_requests_total{verb=\"qba\"} 0\n"));

    client.get("/qba?alpha=0").unwrap();
    client.get("/qbp?items=-").unwrap();
    client.post("/query", "[{\"alpha\":0}]").unwrap();

    let after = client.get("/metrics").unwrap().body;
    assert!(after.contains("tcserve_requests_total{verb=\"qba\"} 2\n"),);
    assert!(after.contains("tcserve_requests_total{verb=\"qbp\"} 1\n"));
    assert!(after.contains("tcserve_requests_total{verb=\"batch\"} 1\n"));
    assert!(after.contains("tcserve_request_latency_seconds_count{verb=\"qba\"} 2\n"));
    assert!(after.contains("tcserve_http_responses_total{code=\"200\"}"));
    assert!(after.contains(&format!("tcserve_tree_nodes {}\n", tree.num_nodes())));

    // Light grammar pass over every line, like a scraper's parser would.
    for line in after.lines() {
        if line.starts_with("# ") {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "{line}"
            );
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample line");
        assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
    }

    handle.shutdown();
    join.join().unwrap();
}
