//! End-to-end daemon tests over real loopback sockets: correctness
//! against the in-memory tree, admission control, concurrent clients,
//! protocol errors, and graceful shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use tc_data::{generate_coauthor, CoauthorConfig};
use tc_index::{TcTree, TcTreeBuilder};
use tc_serve::{ServeClient, ServeConfig, Server, ServerHandle};
use tc_store::SegmentTcTree;
use tc_txdb::Pattern;

fn sample_tree() -> TcTree {
    let net = generate_coauthor(&CoauthorConfig {
        groups: 3,
        authors_per_group: 8,
        seed: 11,
        ..CoauthorConfig::default()
    })
    .network;
    TcTreeBuilder::default().build(&net)
}

fn segment_of(tree: &TcTree) -> SegmentTcTree {
    let mut bytes = Vec::new();
    tc_store::save_tree_segment(tree, &mut bytes).unwrap();
    SegmentTcTree::from_bytes(bytes).unwrap()
}

/// Starts a daemon on an ephemeral port; returns the address, the remote
/// control, and the join handle for `run()`.
fn spawn_server(
    tree: &TcTree,
    cfg: ServeConfig,
) -> (
    String,
    ServerHandle,
    std::thread::JoinHandle<tc_serve::StatsSnapshot>,
) {
    let server = Server::bind(segment_of(tree), "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

fn truss_key(items: &[u32], vertices: usize, edges: usize) -> (Vec<u32>, usize, usize) {
    (items.to_vec(), vertices, edges)
}

#[test]
fn remote_answers_equal_local_queries() {
    let tree = sample_tree();
    let (addr, handle, join) = spawn_server(&tree, ServeConfig::default());
    let mut client = ServeClient::connect(&addr).unwrap();
    assert_eq!(client.nodes(), tree.num_nodes());
    assert_eq!(client.server_version(), tc_serve::PROTOCOL_VERSION);

    // QBA at a sweep of thresholds.
    let bound = client.alpha_star();
    for i in 0..6 {
        let alpha = bound * i as f64 / 5.0;
        let remote = client.qba(alpha).unwrap();
        let local = tree.query_by_alpha(alpha);
        assert_eq!(remote.retrieved, local.retrieved_nodes, "alpha={alpha}");
        assert_eq!(remote.visited, local.visited_nodes, "alpha={alpha}");
        let got: Vec<_> = remote
            .trusses
            .iter()
            .map(|t| truss_key(&t.items, t.vertices, t.edges))
            .collect();
        let want: Vec<_> = local
            .trusses
            .iter()
            .map(|t| {
                truss_key(
                    &t.pattern.iter().map(|i| i.0).collect::<Vec<_>>(),
                    t.num_vertices(),
                    t.num_edges(),
                )
            })
            .collect();
        assert_eq!(got, want, "alpha={alpha}");
    }

    // QBP and QUERY on every node pattern of the tree.
    for id in 1..=tree.num_nodes() as u32 {
        let q = tree.node(id).pattern.clone();
        let ids: Vec<u32> = q.iter().map(|i| i.0).collect();
        let remote = client.qbp(&ids).unwrap();
        let local = tree.query_by_pattern(&q);
        assert_eq!(remote.retrieved, local.retrieved_nodes, "q={q}");
        let remote = client.query(&ids, bound / 2.0).unwrap();
        let local = tree.query(&q, bound / 2.0);
        assert_eq!(remote.retrieved, local.retrieved_nodes, "q={q}");
    }

    // Empty pattern: QBP over `-`.
    let remote = client.qbp(&[]).unwrap();
    let local = tree.query_by_pattern(&Pattern::empty());
    assert_eq!(remote.retrieved, local.retrieved_nodes);

    client.quit().unwrap();
    handle.shutdown();
    let stats = join.join().unwrap();
    assert_eq!(stats.rejected_busy, 0);
    assert!(stats.qba >= 6 && stats.qbp >= 1 && stats.query >= 1);
}

#[test]
fn overload_yields_busy_and_slot_frees_on_disconnect() {
    let tree = sample_tree();
    let (addr, handle, join) = spawn_server(
        &tree,
        ServeConfig {
            workers: 1,
            max_inflight: 1,
            ..ServeConfig::default()
        },
    );

    // Occupy the only admission slot with a live session.
    let mut holder = ServeClient::connect(&addr).unwrap();
    holder.qba(0.0).unwrap();

    // The next connection must be rejected with BUSY, not queued.
    match ServeClient::connect(&addr) {
        Err(e) if e.is_busy() => {}
        Err(e) => panic!("expected BUSY, got error {e}"),
        Ok(_) => panic!("expected BUSY, got admitted"),
    }

    // Releasing the slot re-opens admission (poll: the server notices the
    // disconnect at its next read tick).
    holder.quit().unwrap();
    let mut admitted = None;
    for _ in 0..100 {
        match ServeClient::connect(&addr) {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(e) if e.is_busy() => std::thread::sleep(std::time::Duration::from_millis(20)),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let mut client = admitted.expect("slot never freed after QUIT");
    client.qba(0.0).unwrap();

    let stats_rows = client.stats().unwrap();
    let get = |key: &str| {
        stats_rows
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("missing stats key {key}"))
            .1
    };
    assert!(get("rejected_busy") >= 1, "busy rejection not counted");
    assert_eq!(get("max_inflight"), 1);
    assert_eq!(get("inflight"), 1, "only this session should be admitted");

    client.quit().unwrap();
    handle.shutdown();
    let stats = join.join().unwrap();
    assert!(stats.rejected_busy >= 1);
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let tree = sample_tree();
    let (addr, handle, join) = spawn_server(
        &tree,
        ServeConfig {
            workers: 4,
            max_inflight: 32,
            ..ServeConfig::default()
        },
    );
    let bound = segment_of(&tree).alpha_upper_bound();
    let expected: Vec<usize> = (0..4)
        .map(|i| tree.query_by_alpha(bound * i as f64 / 4.0).retrieved_nodes)
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..8 {
            let (addr, expected) = (&addr, &expected);
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for round in 0..20 {
                    let i = round % 4;
                    let r = client.qba(bound * i as f64 / 4.0).unwrap();
                    assert_eq!(r.retrieved, expected[i]);
                }
                client.quit().unwrap();
            });
        }
    });

    handle.shutdown();
    let stats = join.join().unwrap();
    assert_eq!(stats.queries_served(), 8 * 20);
    assert_eq!(stats.admitted, 8);
}

#[test]
fn protocol_errors_keep_the_session_alive() {
    let tree = sample_tree();
    let (addr, handle, join) = spawn_server(&tree, ServeConfig::default());

    // Raw socket: drive the wire by hand.
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // greeting
    assert!(line.starts_with("TCSERVE"), "{line}");

    let mut stream = stream;
    for bad in ["FROB\n", "QBA notanumber\n", "QBA -1\n", "QUERY 1,2\n"] {
        stream.write_all(bad.as_bytes()).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR\t"), "request {bad:?} -> {line}");
    }

    // The session still works after the errors.
    stream.write_all(b"QBA 0.0\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("OK\t"), "{line}");
    let (count, _, _) = tc_serve::QueryResponse::parse_tab_header(&line).unwrap();
    for _ in 0..count {
        line.clear();
        reader.read_line(&mut line).unwrap();
    }

    // JSON mode answers a single JSON line.
    stream.write_all(b"QBA 0.0 JSON\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("{\"status\":\"ok\""), "{line}");
    stream.write_all(b"STATS JSON\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"protocol_errors\":4"), "{line}");

    stream.write_all(b"QUIT\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "BYE");

    handle.shutdown();
    let stats = join.join().unwrap();
    assert_eq!(stats.protocol_errors, 4);
}

#[test]
fn endless_unterminated_line_is_cut_off() {
    let tree = sample_tree();
    let (addr, handle, join) = spawn_server(&tree, ServeConfig::default());

    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // greeting
    assert!(line.starts_with("TCSERVE"), "{line}");

    // Stream newline-less bytes past the request-line cap: the server
    // must cut the session off instead of buffering without bound.
    let mut stream = stream;
    let chunk = vec![b'7'; 64 * 1024];
    for _ in 0..20 {
        if stream.write_all(&chunk).is_err() {
            break; // already cut off — that's the point
        }
    }
    line.clear();
    match reader.read_line(&mut line) {
        Ok(0) | Err(_) => {} // closed/reset before the ERR was readable
        Ok(_) => assert!(line.starts_with("ERR\t"), "{line}"),
    }

    handle.shutdown();
    let stats = join.join().unwrap();
    assert!(stats.protocol_errors >= 1, "cut-off was not counted");
}

#[test]
fn shutdown_verb_stops_the_daemon() {
    let tree = sample_tree();
    let (addr, _handle, join) = spawn_server(&tree, ServeConfig::default());
    let client = ServeClient::connect(&addr).unwrap();
    client.shutdown_server().unwrap();
    let stats = join.join().unwrap();
    assert_eq!(stats.admitted, 1);
    // The port is closed: a fresh connect must fail (or be reset before a
    // greeting arrives).
    assert!(
        ServeClient::connect(&addr).is_err(),
        "daemon still serving after SHUTDOWN"
    );
}

#[test]
fn handle_shutdown_drains_inflight_sessions() {
    let tree = sample_tree();
    let (addr, handle, join) = spawn_server(&tree, ServeConfig::default());
    let mut client = ServeClient::connect(&addr).unwrap();
    client.qba(0.0).unwrap();
    handle.shutdown();
    assert!(handle.is_shutting_down());
    // run() returns even though this session never sent QUIT.
    join.join().unwrap();
    // The held session is now dead: the next request fails.
    assert!(client.qba(0.0).is_err());
}

#[test]
fn stalled_sessions_time_out_and_free_their_slot() {
    let tree = sample_tree();
    let (addr, handle, join) = spawn_server(
        &tree,
        ServeConfig {
            workers: 1,
            max_inflight: 1,
            idle_timeout: Some(std::time::Duration::from_millis(400)),
            ..ServeConfig::default()
        },
    );

    // A connect-and-stall client: reads the greeting, then goes silent,
    // holding the only admission slot.
    let staller = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(staller.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("TCSERVE"), "{line}");

    // While the staller holds the slot, admission rejects with BUSY.
    match ServeClient::connect(&addr) {
        Err(e) if e.is_busy() => {}
        Err(e) => panic!("expected BUSY while stalled, got error {e}"),
        Ok(_) => panic!("expected BUSY while stalled, got admitted"),
    }

    // The idle timeout must close the stalled session and free the slot.
    let mut admitted = None;
    for _ in 0..200 {
        match ServeClient::connect(&addr) {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(e) if e.is_busy() => std::thread::sleep(std::time::Duration::from_millis(20)),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let mut client = admitted.expect("stalled session never timed out");
    let rows = client.stats().unwrap();
    let timeouts = rows
        .iter()
        .find(|(k, _)| k == "timeouts")
        .expect("timeouts row missing from STATS")
        .1;
    assert!(timeouts >= 1, "timeout not counted: {rows:?}");

    client.quit().unwrap();
    handle.shutdown();
    let stats = join.join().unwrap();
    assert!(stats.timeouts >= 1);
    drop(staller);
}

#[test]
fn busy_retry_succeeds_once_the_slot_frees() {
    let tree = sample_tree();
    let (addr, handle, join) = spawn_server(
        &tree,
        ServeConfig {
            workers: 1,
            max_inflight: 1,
            ..ServeConfig::default()
        },
    );

    // Occupy the only slot, then release it from another thread while the
    // retrying client is backing off.
    let holder = ServeClient::connect(&addr).unwrap();

    // Fail-fast policy: no retries means the BUSY surfaces immediately.
    let policy = tc_serve::RetryPolicy::default();
    assert_eq!(policy.retries, 0);
    match ServeClient::connect_with_retry(&addr, &policy) {
        Err(e) if e.is_busy() => {}
        Err(e) => panic!("expected immediate BUSY, got error {e}"),
        Ok(_) => panic!("expected immediate BUSY, got admitted"),
    }

    let releaser = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(300));
        holder.quit().unwrap();
    });
    let policy = tc_serve::RetryPolicy {
        retries: 40,
        base_delay: std::time::Duration::from_millis(25),
        max_delay: std::time::Duration::from_millis(200),
    };
    let mut client =
        ServeClient::connect_with_retry(&addr, &policy).expect("retry never got admitted");
    client.qba(0.0).unwrap();
    releaser.join().unwrap();

    client.quit().unwrap();
    handle.shutdown();
    let stats = join.join().unwrap();
    assert!(stats.rejected_busy >= 2, "retries were never rejected");
    assert_eq!(stats.admitted, 2);
}

#[test]
fn zero_worker_config_is_rejected() {
    let tree = sample_tree();
    let seg = segment_of(&tree);
    assert!(Server::bind(
        seg,
        "127.0.0.1:0",
        ServeConfig {
            workers: 0,
            max_inflight: 4,
            ..ServeConfig::default()
        }
    )
    .is_err());
}
