//! Random graph generators.
//!
//! The paper builds its synthetic network with JUNG (a Java library); we
//! substitute standard generators with the same statistical shapes:
//! preferential attachment (scale-free, like social networks), Erdős–Rényi
//! (baseline), and Watts–Strogatz (high clustering — plenty of triangles,
//! which truss algorithms care about).

use rand::seq::SliceRandom;
use rand::Rng;
use tc_graph::{GraphBuilder, UGraph};

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices chosen proportionally to degree.
///
/// Produces a connected scale-free graph with `n` vertices and roughly
/// `m · (n - m)` edges.
///
/// # Panics
/// Panics if `m == 0` or `n < m + 1`.
pub fn preferential_attachment(n: usize, m: usize, rng: &mut impl Rng) -> UGraph {
    assert!(m >= 1, "attachment degree must be positive");
    assert!(n > m, "need more vertices than the attachment degree");
    let mut builder = GraphBuilder::with_capacity(n * m);
    // Repeated-endpoints list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);

    // Seed clique on m + 1 vertices.
    for u in 0..=(m as u32) {
        for v in (u + 1)..=(m as u32) {
            builder.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m as u32 + 1)..(n as u32) {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        // Degenerate fallback (tiny graphs): fill with arbitrary vertices.
        let mut fallback = 0u32;
        while chosen.len() < m {
            if fallback != v && !chosen.contains(&fallback) {
                chosen.push(fallback);
            }
            fallback += 1;
        }
        for &t in &chosen {
            builder.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.ensure_vertex(n as u32 - 1);
    builder.build()
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> UGraph {
    let mut builder = GraphBuilder::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                builder.add_edge(u, v);
            }
        }
    }
    if n > 0 {
        builder.ensure_vertex(n as u32 - 1);
    }
    builder.build()
}

/// Watts–Strogatz small world: ring lattice of degree `k` (even), each edge
/// rewired with probability `beta`. High clustering coefficient — rich in
/// triangles.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut impl Rng) -> UGraph {
    assert!(k.is_multiple_of(2), "lattice degree must be even");
    assert!(n > k, "need n > k");
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * k / 2);
    for u in 0..n as u32 {
        for offset in 1..=(k / 2) as u32 {
            let v = (u + offset) % n as u32;
            edges.push((u, v));
        }
    }
    let all: Vec<u32> = (0..n as u32).collect();
    let mut builder = GraphBuilder::with_capacity(edges.len());
    let mut existing: std::collections::HashSet<(u32, u32)> = edges
        .iter()
        .map(|&(u, v)| tc_graph::edge_key(u, v))
        .collect();
    for (u, v) in edges.clone() {
        if rng.gen_bool(beta.clamp(0.0, 1.0)) {
            // Rewire the far endpoint.
            for _ in 0..20 {
                let &w = all.choose(rng).expect("nonempty");
                let key = tc_graph::edge_key(u, w);
                if w != u && !existing.contains(&key) {
                    existing.remove(&tc_graph::edge_key(u, v));
                    existing.insert(key);
                    break;
                }
            }
        }
    }
    for &(u, v) in &existing {
        builder.add_edge(u, v);
    }
    builder.ensure_vertex(n as u32 - 1);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ba_shape() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = preferential_attachment(200, 3, &mut rng);
        assert_eq!(g.num_vertices(), 200);
        // m*(n-m-1) new edges + seed clique C(m+1,2).
        assert_eq!(g.num_edges(), 3 * (200 - 4) + 6);
        // Connected by construction.
        let c = tc_graph::connected_components(&g);
        assert_eq!(c.num_components, 1);
    }

    #[test]
    fn ba_is_deterministic_per_seed() {
        let g1 = preferential_attachment(100, 2, &mut SmallRng::seed_from_u64(9));
        let g2 = preferential_attachment(100, 2, &mut SmallRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    fn ba_has_hubs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = preferential_attachment(500, 2, &mut rng);
        // Scale-free: the max degree should far exceed the mean (4).
        assert!(
            g.max_degree() > 12,
            "max degree {} too uniform",
            g.max_degree()
        );
    }

    #[test]
    fn er_edge_count_near_expectation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = erdos_renyi(100, 0.1, &mut rng);
        let expected = 0.1 * (100.0 * 99.0 / 2.0);
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < expected * 0.35,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn er_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).num_edges(), 45);
        assert_eq!(erdos_renyi(0, 0.5, &mut rng).num_vertices(), 0);
    }

    #[test]
    fn ws_no_rewire_is_lattice() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = watts_strogatz(20, 4, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 20 * 2);
        for v in 0..20u32 {
            assert_eq!(g.degree(v), 4);
        }
        // A k=4 ring lattice is triangle-rich.
        assert!(tc_graph::count_triangles(&g) > 0);
    }

    #[test]
    fn ws_rewiring_preserves_edge_count() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = watts_strogatz(50, 6, 0.3, &mut rng);
        assert_eq!(g.num_edges(), 50 * 3);
    }
}
