//! Planted theme communities with known ground truth.
//!
//! Not part of the paper's experiments — this generator exists to *validate*
//! the miners: it plants dense communities whose members frequently exhibit
//! a chosen pattern, embeds them in background noise, and reports the
//! ground truth so tests can measure precision/recall (and quantify exactly
//! what the TCS `ε` pre-filter loses).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder};
use tc_txdb::{Item, ItemSpace, Pattern};

/// Configuration for [`generate_planted`].
#[derive(Debug, Clone)]
pub struct PlantedConfig {
    /// Number of planted communities.
    pub communities: usize,
    /// Vertices per community.
    pub community_size: usize,
    /// Vertices shared between community `i` and `i+1` (overlap).
    pub overlap: usize,
    /// Items per planted pattern.
    pub pattern_len: usize,
    /// `|S|` — the item universe (must exceed `communities · pattern_len`).
    pub items: usize,
    /// Frequency of the planted pattern on members (`0 < freq ≤ 1`).
    pub freq: f64,
    /// Transactions per vertex database.
    pub transactions_per_vertex: usize,
    /// Extra background vertices with random databases.
    pub background_vertices: usize,
    /// Edge probability inside a community (1.0 = clique).
    pub intra_edge_prob: f64,
    /// Edge probability elsewhere.
    pub background_edge_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            communities: 4,
            community_size: 8,
            overlap: 0,
            pattern_len: 2,
            items: 120,
            freq: 0.8,
            transactions_per_vertex: 20,
            background_vertices: 30,
            intra_edge_prob: 1.0,
            background_edge_prob: 0.02,
            seed: 42,
        }
    }
}

/// One planted community: the pattern and its member vertices.
#[derive(Debug, Clone)]
pub struct PlantedCommunity {
    /// The planted theme.
    pub pattern: Pattern,
    /// Member vertices, sorted.
    pub vertices: Vec<u32>,
}

/// The generated network with its ground truth.
#[derive(Debug)]
pub struct PlantedNetwork {
    /// The database network.
    pub network: DatabaseNetwork,
    /// The planted communities.
    pub truth: Vec<PlantedCommunity>,
}

/// Generates a network with planted theme communities (see module docs).
pub fn generate_planted(cfg: &PlantedConfig) -> PlantedNetwork {
    assert!(cfg.items > cfg.communities * cfg.pattern_len);
    assert!(cfg.freq > 0.0 && cfg.freq <= 1.0);
    assert!(cfg.overlap < cfg.community_size);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = DatabaseNetworkBuilder::new();
    b.set_item_space(ItemSpace::anonymous(cfg.items));
    let all_items: Vec<Item> = (0..cfg.items as u32).map(Item).collect();

    // Reserve the first communities·pattern_len items for planted patterns
    // so patterns are disjoint; noise draws from the remainder.
    let noise_pool: Vec<Item> = all_items[cfg.communities * cfg.pattern_len..].to_vec();

    let mut truth = Vec::with_capacity(cfg.communities);
    let mut next_vertex = 0u32;
    let mut last_members: Vec<u32> = Vec::new();
    for c in 0..cfg.communities {
        let pattern_items: Vec<Item> =
            all_items[c * cfg.pattern_len..(c + 1) * cfg.pattern_len].to_vec();
        let pattern = Pattern::new(pattern_items.clone());

        // Members: `overlap` carried over from the previous community.
        let mut members: Vec<u32> = last_members
            .iter()
            .rev()
            .take(cfg.overlap)
            .copied()
            .collect();
        while members.len() < cfg.community_size {
            members.push(next_vertex);
            next_vertex += 1;
        }
        members.sort_unstable();

        // Databases: the pattern appears in *exactly* ⌈freq·h⌉ transactions,
        // so every member has the same deterministic planted frequency —
        // this makes TCS's strict ε-threshold behaviour reproducible in
        // the accuracy experiments (Bernoulli planting lets realized
        // frequencies stray across the threshold).
        let planted_count = ((cfg.freq * cfg.transactions_per_vertex as f64).ceil() as usize)
            .clamp(1, cfg.transactions_per_vertex);
        for &v in &members {
            for t_idx in 0..cfg.transactions_per_vertex {
                let mut t: Vec<Item> = Vec::with_capacity(cfg.pattern_len + 2);
                if t_idx < planted_count {
                    t.extend_from_slice(&pattern_items);
                }
                let noise_n = rng.gen_range(1..=2);
                for _ in 0..noise_n {
                    t.push(*noise_pool.choose(&mut rng).expect("noise pool nonempty"));
                }
                t.sort_unstable();
                t.dedup();
                b.add_transaction(v, &t);
            }
        }

        // Intra-community edges.
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if cfg.intra_edge_prob >= 1.0 || rng.gen_bool(cfg.intra_edge_prob) {
                    b.add_edge(members[i], members[j]);
                }
            }
        }
        last_members = members.clone();
        truth.push(PlantedCommunity {
            pattern,
            vertices: members,
        });
    }

    // Background vertices: random noise databases.
    let background_start = next_vertex;
    for _ in 0..cfg.background_vertices {
        let v = next_vertex;
        next_vertex += 1;
        for _ in 0..cfg.transactions_per_vertex {
            let n = rng.gen_range(1..=3);
            let mut t: Vec<Item> = noise_pool.choose_multiple(&mut rng, n).copied().collect();
            t.sort_unstable();
            t.dedup();
            b.add_transaction(v, &t);
        }
    }

    // Background edges over the whole vertex set.
    let n = next_vertex;
    for u in 0..n {
        for v in (u + 1)..n {
            // Skip intra-community pairs (already handled).
            let both_planted = u < background_start && v < background_start;
            let same_community = both_planted
                && truth
                    .iter()
                    .any(|t| t.vertices.contains(&u) && t.vertices.contains(&v));
            if !same_community && rng.gen_bool(cfg.background_edge_prob) {
                b.add_edge(u, v);
            }
        }
    }
    if n > 0 {
        b.ensure_vertex(n - 1);
    }

    PlantedNetwork {
        network: b.build().expect("planted items all interned"),
        truth,
    }
}

/// Precision/recall of a mined vertex set against a planted community.
pub fn vertex_precision_recall(mined: &[u32], truth: &[u32]) -> (f64, f64) {
    if mined.is_empty() {
        return (0.0, 0.0);
    }
    let truth_set: std::collections::HashSet<u32> = truth.iter().copied().collect();
    let hits = mined.iter().filter(|v| truth_set.contains(v)).count();
    (
        hits as f64 / mined.len() as f64,
        hits as f64 / truth.len().max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::{Miner, TcfiMiner};

    #[test]
    fn shape() {
        let cfg = PlantedConfig::default();
        let out = generate_planted(&cfg);
        assert_eq!(out.truth.len(), cfg.communities);
        let planted_vertices = cfg.communities * cfg.community_size;
        assert_eq!(
            out.network.num_vertices(),
            planted_vertices + cfg.background_vertices
        );
    }

    #[test]
    fn miner_recovers_planted_communities() {
        let cfg = PlantedConfig::default();
        let out = generate_planted(&cfg);
        // Planted pattern frequency ≈ 0.8 on members; cliques of size 8
        // give each edge 6 triangles → eco ≈ 6·0.8. Mine well below that.
        let result = TcfiMiner::default().mine(&out.network, 1.0);
        for planted in &out.truth {
            let truss = result
                .truss_of(&planted.pattern)
                .unwrap_or_else(|| panic!("planted pattern {} not found", planted.pattern));
            let (precision, recall) = vertex_precision_recall(&truss.vertices, &planted.vertices);
            assert!(precision >= 0.99, "precision {precision}");
            assert!(recall >= 0.99, "recall {recall}");
        }
    }

    #[test]
    fn overlap_produces_shared_vertices() {
        let cfg = PlantedConfig {
            overlap: 3,
            ..PlantedConfig::default()
        };
        let out = generate_planted(&cfg);
        for w in out.truth.windows(2) {
            let a: std::collections::HashSet<u32> = w[0].vertices.iter().copied().collect();
            let shared = w[1].vertices.iter().filter(|v| a.contains(v)).count();
            assert_eq!(shared, 3);
        }
    }

    #[test]
    fn precision_recall_math() {
        assert_eq!(vertex_precision_recall(&[], &[1, 2]), (0.0, 0.0));
        let (p, r) = vertex_precision_recall(&[1, 2, 3, 9], &[1, 2, 3, 4]);
        assert!((p - 0.75).abs() < 1e-12);
        assert!((r - 0.75).abs() < 1e-12);
        let (p, r) = vertex_precision_recall(&[1], &[1]);
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    fn deterministic() {
        let a = generate_planted(&PlantedConfig::default());
        let b = generate_planted(&PlantedConfig::default());
        assert_eq!(a.network.stats(), b.network.stats());
    }

    #[test]
    fn planted_frequency_is_exact() {
        let cfg = PlantedConfig {
            freq: 0.25,
            transactions_per_vertex: 20,
            ..PlantedConfig::default()
        };
        let out = generate_planted(&cfg);
        for truth in &out.truth {
            for &v in &truth.vertices {
                let f = out.network.frequency(v, &truth.pattern);
                assert!(
                    (f - 0.25).abs() < 1e-12,
                    "member {v}: frequency {f} != 0.25 exactly"
                );
            }
        }
    }

    #[test]
    fn tcs_epsilon_threshold_behaviour_is_crisp() {
        // With exact planted frequencies, the strict ε filter is decisive:
        // ε below the planted frequency keeps the theme, ε at/above drops it.
        let cfg = PlantedConfig {
            freq: 0.25,
            transactions_per_vertex: 20,
            communities: 2,
            ..PlantedConfig::default()
        };
        let out = generate_planted(&cfg);
        use tc_core::{Miner, TcsMiner};
        let kept = TcsMiner::with_epsilon(0.2).mine(&out.network, 0.1);
        let dropped = TcsMiner::with_epsilon(0.25).mine(&out.network, 0.1);
        for truth in &out.truth {
            assert!(kept.truss_of(&truth.pattern).is_some(), "ε=0.2 keeps");
            assert!(
                dropped.truss_of(&truth.pattern).is_none(),
                "ε=0.25 drops (strict inequality)"
            );
        }
    }
}
