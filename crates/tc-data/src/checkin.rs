//! Check-in database network generator — the Brightkite / Gowalla
//! substitute.
//!
//! §7 builds BK and GW from public check-in dumps: the friendship graph is
//! the network; each user's check-in history is cut into 2-day periods and
//! the locations visited within a period form one transaction. Those dumps
//! are not available offline, so we generate the same consumed shape:
//! overlapping friend groups that habitually co-visit a small set of
//! locations (producing themes), occasional random check-ins (noise), and
//! a scale-free backbone of extra friendships.

use crate::vocab;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder};
use tc_txdb::Item;

/// Configuration for [`generate_checkin`].
#[derive(Debug, Clone)]
pub struct CheckinConfig {
    /// Number of users.
    pub users: usize,
    /// Number of friend groups (habitual co-visitors).
    pub groups: usize,
    /// Users per group; users may belong to several groups.
    pub group_size: usize,
    /// Size of the location universe.
    pub locations: usize,
    /// Favourite locations per group.
    pub locations_per_group: usize,
    /// Check-in periods (transactions) per user.
    pub periods: usize,
    /// Probability a group favourite is visited in a period.
    pub visit_prob: f64,
    /// Expected random (noise) locations per period.
    pub noise_rate: f64,
    /// Probability of an edge between two same-group users.
    pub friend_prob: f64,
    /// Extra random friendship edges across the whole network.
    pub extra_edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CheckinConfig {
    fn default() -> Self {
        CheckinConfig {
            users: 120,
            groups: 10,
            group_size: 8,
            locations: 150,
            locations_per_group: 4,
            periods: 30,
            visit_prob: 0.7,
            noise_rate: 1.0,
            friend_prob: 0.7,
            extra_edges: 60,
            seed: 42,
        }
    }
}

/// The generated check-in network plus ground-truth group info.
#[derive(Debug)]
pub struct CheckinNetwork {
    /// The database network (vertices = users, items = locations).
    pub network: DatabaseNetwork,
    /// For each group: member vertices and favourite location items.
    pub groups: Vec<(Vec<u32>, Vec<Item>)>,
}

/// Generates a check-in database network (see module docs).
pub fn generate_checkin(cfg: &CheckinConfig) -> CheckinNetwork {
    assert!(cfg.users >= 2 && cfg.locations >= cfg.locations_per_group);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = DatabaseNetworkBuilder::new();

    let location_items: Vec<Item> = (0..cfg.locations)
        .map(|i| b.intern_item(&vocab::location_name(i)))
        .collect();

    // Groups pick members and favourite locations.
    let all_users: Vec<u32> = (0..cfg.users as u32).collect();
    let mut groups: Vec<(Vec<u32>, Vec<Item>)> = Vec::with_capacity(cfg.groups);
    for _ in 0..cfg.groups {
        let members: Vec<u32> = all_users
            .choose_multiple(&mut rng, cfg.group_size.min(cfg.users))
            .copied()
            .collect();
        let favourites: Vec<Item> = location_items
            .choose_multiple(&mut rng, cfg.locations_per_group)
            .copied()
            .collect();
        groups.push((members, favourites));
    }

    // Per-user membership lists.
    let mut member_of: Vec<Vec<usize>> = vec![Vec::new(); cfg.users];
    for (g, (members, _)) in groups.iter().enumerate() {
        for &u in members {
            member_of[u as usize].push(g);
        }
    }

    // Transactions: one per period; group favourites visited with
    // visit_prob, plus Poisson-ish noise visits.
    for user in 0..cfg.users as u32 {
        for _ in 0..cfg.periods {
            let mut visits: Vec<Item> = Vec::new();
            for &g in &member_of[user as usize] {
                for &loc in &groups[g].1 {
                    if rng.gen_bool(cfg.visit_prob) {
                        visits.push(loc);
                    }
                }
            }
            let noise_count = (cfg.noise_rate * rng.gen::<f64>() * 2.0).round() as usize;
            for _ in 0..noise_count {
                visits.push(*location_items.choose(&mut rng).expect("nonempty"));
            }
            if visits.is_empty() {
                // A quiet period: one random check-in so databases keep the
                // configured number of transactions.
                visits.push(*location_items.choose(&mut rng).expect("nonempty"));
            }
            visits.sort_unstable();
            visits.dedup();
            b.add_transaction(user, &visits);
        }
    }

    // Friendships: dense within groups, sparse globally.
    for (members, _) in &groups {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if members[i] != members[j] && rng.gen_bool(cfg.friend_prob) {
                    b.add_edge(members[i], members[j]);
                }
            }
        }
    }
    for _ in 0..cfg.extra_edges {
        let u = rng.gen_range(0..cfg.users as u32);
        let v = rng.gen_range(0..cfg.users as u32);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.ensure_vertex(cfg.users as u32 - 1);

    CheckinNetwork {
        network: b.build().expect("generator uses interned items only"),
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::{Miner, TcfiMiner};
    use tc_txdb::Pattern;

    #[test]
    fn shape_matches_config() {
        let cfg = CheckinConfig::default();
        let out = generate_checkin(&cfg);
        assert_eq!(out.network.num_vertices(), cfg.users);
        assert!(out.network.num_edges() > 0);
        let stats = out.network.stats();
        assert_eq!(stats.transactions, cfg.users * cfg.periods);
        assert!(stats.items_unique <= cfg.locations);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_checkin(&CheckinConfig::default());
        let b = generate_checkin(&CheckinConfig::default());
        assert_eq!(a.network.stats(), b.network.stats());
        assert_eq!(
            a.network.graph().edges().collect::<Vec<_>>(),
            b.network.graph().edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn group_members_frequent_their_favourites() {
        let cfg = CheckinConfig::default();
        let out = generate_checkin(&cfg);
        let (members, favourites) = &out.groups[0];
        for &m in members {
            for &loc in favourites {
                let f = out.network.frequency(m, &Pattern::singleton(loc));
                assert!(
                    f > cfg.visit_prob * 0.5,
                    "member {m}: favourite frequency {f} suspiciously low"
                );
            }
        }
    }

    #[test]
    fn mining_finds_location_themes() {
        let out = generate_checkin(&CheckinConfig {
            users: 60,
            groups: 5,
            group_size: 8,
            locations: 80,
            periods: 25,
            ..CheckinConfig::default()
        });
        let result = TcfiMiner { max_len: 2 }.mine(&out.network, 0.3);
        assert!(result.np() > 0, "no location themes found");
        // Multi-location habits should appear as length-2 themes.
        assert!(
            result.patterns().iter().any(|p| p.len() == 2),
            "expected a co-visited location pair theme"
        );
    }

    #[test]
    fn transactions_are_nonempty() {
        let out = generate_checkin(&CheckinConfig {
            users: 10,
            groups: 1,
            group_size: 3,
            visit_prob: 0.01,
            noise_rate: 0.0,
            ..CheckinConfig::default()
        });
        // Even with nearly no visits, every period yields one check-in.
        let stats = out.network.stats();
        assert!(stats.items_total >= stats.transactions);
    }
}
