//! Vocabularies for human-readable generated datasets.
//!
//! The case study (§7.4, Table 4, Figure 6) reports communities in terms of
//! research keywords and author names. The generators draw from these fixed
//! vocabularies so that demo output reads like the paper's tables rather
//! than `item_1382`.

/// Research topics with representative keywords, modelled on the themes of
/// the paper's Table 4 (data mining sub-disciplines plus neighbouring
/// areas).
pub const TOPICS: &[(&str, &[&str])] = &[
    (
        "sequential patterns",
        &[
            "data mining",
            "sequential pattern",
            "pattern growth",
            "projected database",
            "prefix span",
            "episode mining",
            "event sequence",
            "temporal pattern",
        ],
    ),
    (
        "intrusion detection",
        &[
            "data mining",
            "intrusion detection",
            "anomaly detection",
            "network security",
            "audit data",
            "misuse detection",
            "alarm correlation",
            "system call",
        ],
    ),
    (
        "frequent patterns",
        &[
            "data mining",
            "search space",
            "complete set",
            "pattern mining",
            "frequent itemset",
            "association rule",
            "candidate generation",
            "minimum support",
        ],
    ),
    (
        "privacy",
        &[
            "data mining",
            "sensitive information",
            "privacy protection",
            "anonymization",
            "k anonymity",
            "data publishing",
            "differential privacy",
            "utility loss",
        ],
    ),
    (
        "dimensionality reduction",
        &[
            "principal component analysis",
            "linear discriminant analysis",
            "dimensionality reduction",
            "component analysis",
            "feature extraction",
            "subspace learning",
            "manifold learning",
            "eigen decomposition",
        ],
    ),
    (
        "image retrieval",
        &[
            "image retrieval",
            "image database",
            "relevance feedback",
            "semantic gap",
            "visual feature",
            "content based",
            "query by example",
            "similarity search",
        ],
    ),
    (
        "graph mining",
        &[
            "graph mining",
            "dense subgraph",
            "community detection",
            "truss decomposition",
            "core decomposition",
            "clique enumeration",
            "graph pattern",
            "cohesive subgraph",
        ],
    ),
    (
        "recommendation",
        &[
            "recommender system",
            "collaborative filtering",
            "matrix factorization",
            "implicit feedback",
            "cold start",
            "rating prediction",
            "user preference",
            "item embedding",
        ],
    ),
];

/// Generic paper keywords that appear across *all* research topics — the
/// "experimental results"-type filler every abstract contains. These create
/// the diffuse cross-community co-occurrence real corpora have: patterns
/// pairing a generic keyword with a topic keyword are frequent on scattered
/// vertices whose trusses do not intersect, which is exactly the candidate
/// population TCFI prunes and TCFA must run MPTD on (§7.1).
pub const GENERIC_KEYWORDS: &[&str] = &[
    "novel approach",
    "experimental results",
    "proposed method",
    "real world",
    "state of the art",
    "evaluation",
];

/// Location names for the check-in generators (BK / GW analogs).
pub const LOCATION_KINDS: &[&str] = &[
    "cafe", "gym", "park", "office", "library", "cinema", "market", "stadium", "museum", "pier",
    "plaza", "bakery", "arcade", "harbor", "garden", "tower",
];

/// District qualifiers combined with [`LOCATION_KINDS`] to name locations.
pub const DISTRICTS: &[&str] = &[
    "north",
    "south",
    "east",
    "west",
    "old-town",
    "riverside",
    "uptown",
    "midtown",
    "harbor",
    "hilltop",
    "lakeside",
    "central",
];

/// Product names for the social e-commerce examples.
pub const PRODUCTS: &[&str] = &[
    "beer",
    "diapers",
    "espresso beans",
    "yoga mat",
    "protein powder",
    "running shoes",
    "board game",
    "graphic novel",
    "mechanical keyboard",
    "webcam",
    "desk lamp",
    "standing desk",
    "noise-cancelling headphones",
    "water bottle",
    "climbing chalk",
    "trail mix",
    "camping stove",
    "sleeping bag",
    "guitar strings",
    "paint brushes",
];

/// Given names for generated authors/users.
pub const GIVEN_NAMES: &[&str] = &[
    "Wei", "Jian", "Lin", "Mei", "Ana", "Ravi", "Sofia", "Omar", "Yuki", "Elena", "Tomas", "Aisha",
    "Noah", "Priya", "Ivan", "Lucia", "Chen", "Maria", "Amir", "Dana",
];

/// Family names for generated authors/users.
pub const FAMILY_NAMES: &[&str] = &[
    "Chu", "Pei", "Wang", "Zhang", "Yang", "Garcia", "Kumar", "Tanaka", "Novak", "Rossi", "Haddad",
    "Okafor", "Silva", "Ivanov", "Larsen", "Moreau", "Nguyen", "Schmidt", "Costa", "Petrov",
];

/// A deterministic person name for index `i` (distinct for `i < 400`).
pub fn person_name(i: usize) -> String {
    let given = GIVEN_NAMES[i % GIVEN_NAMES.len()];
    let family = FAMILY_NAMES[(i / GIVEN_NAMES.len()) % FAMILY_NAMES.len()];
    if i < GIVEN_NAMES.len() * FAMILY_NAMES.len() {
        format!("{given} {family}")
    } else {
        format!(
            "{given} {family} {}",
            i / (GIVEN_NAMES.len() * FAMILY_NAMES.len())
        )
    }
}

/// A deterministic location name for index `i`.
pub fn location_name(i: usize) -> String {
    let kind = LOCATION_KINDS[i % LOCATION_KINDS.len()];
    let district = DISTRICTS[(i / LOCATION_KINDS.len()) % DISTRICTS.len()];
    if i < LOCATION_KINDS.len() * DISTRICTS.len() {
        format!("{district} {kind}")
    } else {
        format!(
            "{district} {kind} {}",
            i / (LOCATION_KINDS.len() * DISTRICTS.len())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topics_have_enough_keywords() {
        assert!(TOPICS.len() >= 6);
        for (name, kws) in TOPICS {
            assert!(kws.len() >= 6, "topic {name} too small");
        }
    }

    #[test]
    fn person_names_distinct_in_range() {
        let names: std::collections::HashSet<String> = (0..400).map(person_name).collect();
        assert_eq!(names.len(), 400);
    }

    #[test]
    fn location_names_distinct_in_range() {
        let n = LOCATION_KINDS.len() * DISTRICTS.len();
        let names: std::collections::HashSet<String> = (0..n).map(location_name).collect();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn names_stable_beyond_range() {
        // Beyond the product range, names disambiguate with a suffix.
        let a = person_name(400);
        let b = person_name(800);
        assert_ne!(a, b);
    }

    #[test]
    fn shared_keyword_across_topics() {
        // "data mining" spans several topics — needed so multi-topic
        // authors create overlapping theme communities like Figure 6.
        let with_dm = TOPICS
            .iter()
            .filter(|(_, kws)| kws.contains(&"data mining"))
            .count();
        assert!(with_dm >= 3);
    }
}
