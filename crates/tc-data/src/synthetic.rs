//! The SYN generator — §7's synthetic database network, reproduced from its
//! textual specification.
//!
//! The paper: (1) generate a network with JUNG (we substitute preferential
//! attachment — any scale-free generator exercises the same code paths);
//! (2) pick `seeds` random seed vertices and fill their databases with
//! random itemsets; (3) BFS outward — each non-seed vertex samples
//! transactions from already-filled neighbour databases and mutates 10% of
//! the items to random items of `S`, so nearby vertices share patterns;
//! (4) vertex `v` gets `⌈e^{0.1·d(v)}⌉` transactions of length
//! `⌈e^{0.13·d(v)}⌉` (capped — the exponential is the paper's rule; caps
//! keep hub databases bounded on laptop-scale runs).

use crate::graphs::preferential_attachment;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder};
use tc_txdb::{Item, ItemSpace};

/// Configuration for [`generate_synthetic`].
#[derive(Debug, Clone)]
pub struct SynConfig {
    /// Number of vertices (paper: 10⁶).
    pub vertices: usize,
    /// Preferential-attachment degree (paper's network has ~10 edges per
    /// vertex; `m = 5` doubles to ≈10).
    pub edges_per_vertex: usize,
    /// Number of seed vertices whose databases are random (paper: 1000).
    pub seeds: usize,
    /// `|S|` — the item universe (paper: 10⁴).
    pub items: usize,
    /// Fraction of items mutated when copying a neighbour transaction
    /// (paper: 0.1).
    pub mutation: f64,
    /// Cap on transactions per vertex (`⌈e^{0.1·d}⌉` grows fast on hubs).
    pub max_transactions: usize,
    /// Cap on items per transaction (`⌈e^{0.13·d}⌉` likewise).
    pub max_transaction_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynConfig {
    fn default() -> Self {
        SynConfig {
            vertices: 2_000,
            edges_per_vertex: 5,
            seeds: 20,
            items: 500,
            mutation: 0.1,
            max_transactions: 64,
            max_transaction_len: 24,
            seed: 42,
        }
    }
}

/// The paper's per-vertex transaction count rule: `⌈e^{0.1·d(v)}⌉`, capped.
pub fn transactions_for_degree(degree: usize, cap: usize) -> usize {
    ((0.1 * degree as f64).exp().ceil() as usize).clamp(1, cap)
}

/// The paper's transaction length rule: `⌈e^{0.13·d(v)}⌉`, capped.
pub fn transaction_len_for_degree(degree: usize, cap: usize) -> usize {
    ((0.13 * degree as f64).exp().ceil() as usize).clamp(1, cap)
}

/// Generates the SYN database network (see module docs).
pub fn generate_synthetic(cfg: &SynConfig) -> DatabaseNetwork {
    assert!(cfg.vertices > cfg.edges_per_vertex);
    assert!(cfg.items >= 2);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let graph = preferential_attachment(cfg.vertices, cfg.edges_per_vertex, &mut rng);

    let mut b = DatabaseNetworkBuilder::new();
    b.set_item_space(ItemSpace::anonymous(cfg.items));
    let all_items: Vec<Item> = (0..cfg.items as u32).map(Item).collect();

    // Horizontal staging: we need neighbour databases before freezing.
    let mut staged: Vec<Vec<Vec<Item>>> = vec![Vec::new(); cfg.vertices];

    // Step 1: seed vertices with random itemset databases.
    let mut order: Vec<u32> = (0..cfg.vertices as u32).collect();
    order.shuffle(&mut rng);
    let seeds: Vec<u32> = order[..cfg.seeds.min(cfg.vertices)].to_vec();
    for &s in &seeds {
        let d = graph.degree(s);
        let num_t = transactions_for_degree(d, cfg.max_transactions);
        let len_t = transaction_len_for_degree(d, cfg.max_transaction_len);
        for _ in 0..num_t {
            let t: Vec<Item> = all_items
                .choose_multiple(&mut rng, len_t.min(all_items.len()))
                .copied()
                .collect();
            staged[s as usize].push(t);
        }
    }

    // Step 2: multi-source BFS; each newly reached vertex samples from
    // already-filled neighbours and mutates `mutation` of the items.
    let mut filled: Vec<bool> = vec![false; cfg.vertices];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for &s in &seeds {
        filled[s as usize] = true;
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if filled[v as usize] {
                continue;
            }
            filled[v as usize] = true;
            queue.push_back(v);

            let d = graph.degree(v);
            let num_t = transactions_for_degree(d, cfg.max_transactions);
            let len_t = transaction_len_for_degree(d, cfg.max_transaction_len);
            // Filled neighbours to copy from (at least `u`).
            let sources: Vec<u32> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| filled[w as usize] && !staged[w as usize].is_empty())
                .collect();
            for _ in 0..num_t {
                let mut t: Vec<Item> = if let Some(&src) = sources.choose(&mut rng) {
                    staged[src as usize]
                        .choose(&mut rng)
                        .expect("source nonempty")
                        .clone()
                } else {
                    all_items
                        .choose_multiple(&mut rng, len_t.min(all_items.len()))
                        .copied()
                        .collect()
                };
                // Mutate ~10% of the items to random items of S.
                for slot in t.iter_mut() {
                    if rng.gen_bool(cfg.mutation.clamp(0.0, 1.0)) {
                        *slot = *all_items.choose(&mut rng).expect("nonempty");
                    }
                }
                t.truncate(len_t);
                t.sort_unstable();
                t.dedup();
                staged[v as usize].push(t);
            }
        }
    }

    // Any vertex unreached by BFS (disconnected leftovers) gets a random db.
    for (v, db) in staged.iter_mut().enumerate() {
        if db.is_empty() {
            let d = graph.degree(v as u32);
            let num_t = transactions_for_degree(d, cfg.max_transactions);
            let len_t = transaction_len_for_degree(d, cfg.max_transaction_len);
            for _ in 0..num_t {
                let t: Vec<Item> = all_items
                    .choose_multiple(&mut rng, len_t.min(all_items.len()))
                    .copied()
                    .collect();
                db.push(t);
            }
        }
    }

    // Freeze: edges then databases.
    for (u, v) in graph.edges() {
        b.add_edge(u, v);
    }
    for (v, db) in staged.into_iter().enumerate() {
        for t in db {
            b.add_transaction(v as u32, &t);
        }
    }
    b.ensure_vertex(cfg.vertices as u32 - 1);
    b.build().expect("synthetic items all interned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_txdb::Pattern;

    fn small() -> SynConfig {
        SynConfig {
            vertices: 300,
            edges_per_vertex: 3,
            seeds: 8,
            items: 100,
            ..SynConfig::default()
        }
    }

    #[test]
    fn shape() {
        let net = generate_synthetic(&small());
        assert_eq!(net.num_vertices(), 300);
        assert!(net.num_edges() >= 3 * (300 - 4));
        let stats = net.stats();
        assert!(stats.transactions >= 300, "every vertex has ≥1 transaction");
        assert!(stats.items_unique <= 100);
    }

    #[test]
    fn deterministic() {
        let a = generate_synthetic(&small());
        let b = generate_synthetic(&small());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn transaction_rules_match_paper_formulas() {
        assert_eq!(transactions_for_degree(0, 100), 1); // ⌈e^0⌉ = 1
        assert_eq!(transactions_for_degree(10, 100), 3); // ⌈e^1⌉ = 3
        assert_eq!(transactions_for_degree(30, 100), 21); // ⌈e^3⌉ = 21
        assert_eq!(transactions_for_degree(100, 64), 64); // capped
        assert_eq!(transaction_len_for_degree(10, 100), 4); // ⌈e^1.3⌉ = 4
        assert_eq!(transaction_len_for_degree(100, 24), 24); // capped
    }

    #[test]
    fn neighbours_share_patterns() {
        // The point of BFS propagation: adjacent vertices' databases overlap
        // far more than random pairs. Compare mean shared-item counts.
        let net = generate_synthetic(&small());
        let g = net.graph();
        let items_of = |v: u32| -> std::collections::HashSet<u32> {
            net.database(v).items().map(|i| i.0).collect()
        };
        let mut adjacent_overlap = 0.0;
        let mut adjacent_pairs = 0;
        for (u, v) in g.edges().take(300) {
            let a = items_of(u);
            let bset = items_of(v);
            adjacent_overlap += a.intersection(&bset).count() as f64;
            adjacent_pairs += 1;
        }
        let mut random_overlap = 0.0;
        let mut random_pairs = 0;
        for i in 0..300u32 {
            let u = i % 300;
            let v = (i * 7 + 123) % 300;
            if u != v && !g.has_edge(u, v) {
                let a = items_of(u);
                let bset = items_of(v);
                random_overlap += a.intersection(&bset).count() as f64;
                random_pairs += 1;
            }
        }
        let adj_mean = adjacent_overlap / adjacent_pairs as f64;
        let rnd_mean = random_overlap / random_pairs as f64;
        assert!(
            adj_mean > rnd_mean,
            "adjacent overlap {adj_mean:.2} should exceed random {rnd_mean:.2}"
        );
    }

    #[test]
    fn some_theme_exists() {
        // The propagation must create at least one item frequent enough
        // somewhere to induce a nontrivial theme network.
        let net = generate_synthetic(&small());
        let any_theme = net.items_in_use().iter().take(50).any(|&item| {
            let theme = tc_core::ThemeNetwork::induce(&net, &Pattern::singleton(item));
            theme.num_edges() > 0
        });
        assert!(any_theme);
    }
}
