//! Dataset generators and I/O for database networks.
//!
//! The paper evaluates on Brightkite (BK), Gowalla (GW), AMINER, and a
//! JUNG-generated synthetic network (SYN). None of those raw dumps are
//! available offline, so this crate generates networks with the same
//! *consumed shape* — what the miners see is only (graph, vertex
//! databases), and each generator reproduces the construction § 7
//! describes:
//!
//! * [`checkin`] — friend groups co-visiting location sets, check-ins cut
//!   into periods (BK / GW substitute);
//! * [`coauthor`] — research groups with topic-keyword papers and
//!   interdisciplinary bridge authors (AMINER substitute);
//! * [`synthetic`] — the paper's own SYN procedure (seed vertices, BFS
//!   propagation, 10% mutation, `⌈e^{0.1·d}⌉` transactions);
//! * [`planted`] — ground-truth communities for accuracy validation (ours,
//!   not the paper's);
//! * [`graphs`] — random graph substrates (preferential attachment,
//!   Erdős–Rényi, Watts–Strogatz);
//! * [`vocab`] — human-readable item vocabularies for case-study output;
//! * [`io`] — a versioned text format for saving and loading networks.

pub mod checkin;
pub mod coauthor;
pub mod graphs;
pub mod io;
pub mod planted;
pub mod synthetic;
pub mod vocab;

pub use checkin::{generate_checkin, CheckinConfig, CheckinNetwork};
pub use coauthor::{generate_coauthor, CoauthorConfig, CoauthorNetwork};
pub use io::{load_network, load_network_from_path, save_network, save_network_to_path};
pub use planted::{generate_planted, PlantedCommunity, PlantedConfig, PlantedNetwork};
pub use synthetic::{generate_synthetic, SynConfig};
