//! Database network persistence — a line-oriented text format.
//!
//! ```text
//! dbnet v1
//! items <m>
//! i <id> <name…>
//! vertices <n>
//! edges <e>
//! e <u> <v>
//! db <vertex> <h>
//! t <item-id> <item-id> …
//! end
//! ```
//!
//! Transactions are reconstructed from the vertical tidsets at save time, so
//! a round trip preserves every frequency exactly (transaction *order*
//! within a database is not semantically meaningful and is normalised).

use std::io::{BufRead, Write};
use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder};
use tc_txdb::Item;

/// Errors raised while reading a persisted network — the shared
/// [`tc_util::LoadError`], re-exported so existing call sites keep
/// compiling unchanged.
pub use tc_util::LoadError;

fn corrupt(msg: impl Into<String>) -> LoadError {
    LoadError::Corrupt(format!("dbnet: {}", msg.into()))
}

/// Writes `network` to `w` in the v1 text format.
pub fn save_network<W: Write>(network: &DatabaseNetwork, w: &mut W) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(w);
    writeln!(w, "dbnet v1")?;
    let items = network.item_space();
    writeln!(w, "items {}", items.len())?;
    for item in items.items() {
        writeln!(w, "i {} {}", item.0, items.name(item).unwrap_or(""))?;
    }
    writeln!(w, "vertices {}", network.num_vertices())?;
    writeln!(w, "edges {}", network.num_edges())?;
    for (u, v) in network.graph().edges() {
        writeln!(w, "e {u} {v}")?;
    }
    for v in 0..network.num_vertices() as u32 {
        let db = network.database(v);
        let h = db.num_transactions();
        if h == 0 {
            continue;
        }
        writeln!(w, "db {v} {h}")?;
        // Reconstruct horizontal transactions from the tidsets.
        let mut transactions: Vec<Vec<u32>> = vec![Vec::new(); h];
        let mut db_items: Vec<Item> = db.items().collect();
        db_items.sort_unstable();
        for item in db_items {
            if let Some(tidset) = db.tidset(item) {
                for tid in tidset.iter() {
                    transactions[tid].push(item.0);
                }
            }
        }
        for t in transactions {
            write!(w, "t")?;
            for id in t {
                write!(w, " {id}")?;
            }
            writeln!(w)?;
        }
    }
    writeln!(w, "end")?;
    w.flush()
}

/// Writes to a file path.
pub fn save_network_to_path(
    network: &DatabaseNetwork,
    path: &std::path::Path,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    save_network(network, &mut f)
}

/// Reads a network in the v1 text format.
pub fn load_network<R: BufRead>(r: R) -> Result<DatabaseNetwork, LoadError> {
    let mut lines = r.lines();
    let mut next_line = || -> Result<String, LoadError> {
        lines
            .next()
            .ok_or_else(|| corrupt("unexpected end of file"))?
            .map_err(LoadError::Io)
    };

    if next_line()?.trim() != "dbnet v1" {
        return Err(corrupt("missing 'dbnet v1' header"));
    }
    let mut b = DatabaseNetworkBuilder::new();

    let m: usize = next_line()?
        .strip_prefix("items ")
        .ok_or_else(|| corrupt("expected 'items <m>'"))?
        .trim()
        .parse()
        .map_err(|_| corrupt("bad item count"))?;
    for expect in 0..m {
        let line = next_line()?;
        let rest = line
            .strip_prefix("i ")
            .ok_or_else(|| corrupt("expected 'i <id> <name>'"))?;
        let (id_str, name) = rest.split_once(' ').unwrap_or((rest, ""));
        let id: u32 = id_str.parse().map_err(|_| corrupt("bad item id"))?;
        if id as usize != expect {
            return Err(corrupt("item ids must be dense and ordered"));
        }
        let interned = b.intern_item(name);
        if interned.0 != id {
            return Err(corrupt(format!("duplicate item name '{name}'")));
        }
    }

    let n: usize = next_line()?
        .strip_prefix("vertices ")
        .ok_or_else(|| corrupt("expected 'vertices <n>'"))?
        .trim()
        .parse()
        .map_err(|_| corrupt("bad vertex count"))?;
    let e: usize = next_line()?
        .strip_prefix("edges ")
        .ok_or_else(|| corrupt("expected 'edges <e>'"))?
        .trim()
        .parse()
        .map_err(|_| corrupt("bad edge count"))?;
    for _ in 0..e {
        let line = next_line()?;
        let rest = line
            .strip_prefix("e ")
            .ok_or_else(|| corrupt("expected 'e <u> <v>'"))?;
        let mut parts = rest.split_whitespace();
        let u: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| corrupt("bad edge endpoint"))?;
        let v: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| corrupt("bad edge endpoint"))?;
        if u as usize >= n || v as usize >= n {
            return Err(corrupt("edge endpoint out of range"));
        }
        b.add_edge(u, v);
    }

    // Database blocks until 'end'.
    loop {
        let line = next_line()?;
        let trimmed = line.trim();
        if trimmed == "end" {
            break;
        }
        let rest = trimmed
            .strip_prefix("db ")
            .ok_or_else(|| corrupt(format!("expected 'db' or 'end', got '{trimmed}'")))?;
        let mut parts = rest.split_whitespace();
        let v: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| corrupt("bad db vertex"))?;
        if v as usize >= n {
            return Err(corrupt("db vertex out of range"));
        }
        let h: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| corrupt("bad transaction count"))?;
        for _ in 0..h {
            let tline = next_line()?;
            let rest = tline
                .strip_prefix('t')
                .ok_or_else(|| corrupt("expected 't …' transaction line"))?;
            let mut items = Vec::new();
            for tok in rest.split_whitespace() {
                let id: u32 = tok
                    .parse()
                    .map_err(|_| corrupt("bad item id in transaction"))?;
                if id as usize >= m {
                    return Err(corrupt("transaction item out of range"));
                }
                items.push(Item(id));
            }
            b.add_transaction(v, &items);
        }
    }
    if n > 0 {
        b.ensure_vertex(n as u32 - 1);
    }
    b.build().map_err(|e| corrupt(e.to_string()))
}

/// Reads from a file path.
pub fn load_network_from_path(path: &std::path::Path) -> Result<DatabaseNetwork, LoadError> {
    let f = std::fs::File::open(path)?;
    load_network(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::{generate_checkin, CheckinConfig};
    use tc_txdb::Pattern;

    fn sample() -> DatabaseNetwork {
        generate_checkin(&CheckinConfig {
            users: 25,
            groups: 3,
            group_size: 6,
            locations: 20,
            periods: 8,
            ..CheckinConfig::default()
        })
        .network
    }

    #[test]
    fn roundtrip_preserves_stats() {
        let net = sample();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let loaded = load_network(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.stats(), net.stats());
        assert_eq!(loaded.num_vertices(), net.num_vertices());
        assert_eq!(loaded.num_edges(), net.num_edges());
    }

    #[test]
    fn roundtrip_preserves_frequencies() {
        let net = sample();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let loaded = load_network(std::io::Cursor::new(&buf)).unwrap();
        for item in net.items_in_use().into_iter().take(10) {
            let p = Pattern::singleton(item);
            for v in 0..net.num_vertices() as u32 {
                assert!(
                    (net.frequency(v, &p) - loaded.frequency(v, &p)).abs() < 1e-12,
                    "frequency mismatch at v={v}, item={item:?}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_preserves_item_names() {
        let net = sample();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let loaded = load_network(std::io::Cursor::new(&buf)).unwrap();
        for item in net.item_space().items() {
            assert_eq!(net.item_space().name(item), loaded.item_space().name(item));
        }
    }

    #[test]
    fn mining_agrees_after_roundtrip() {
        use tc_core::{Miner, TcfiMiner};
        let net = sample();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let loaded = load_network(std::io::Cursor::new(&buf)).unwrap();
        let a = TcfiMiner { max_len: 2 }.mine(&net, 0.2);
        let b = TcfiMiner { max_len: 2 }.mine(&loaded, 0.2);
        assert!(a.same_trusses(&b));
    }

    #[test]
    fn file_roundtrip() {
        let net = sample();
        let dir = std::env::temp_dir().join("tc_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.dbnet");
        save_network_to_path(&net, &path).unwrap();
        let loaded = load_network_from_path(&path).unwrap();
        assert_eq!(loaded.stats(), net.stats());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        assert!(load_network(std::io::Cursor::new(b"garbage" as &[u8])).is_err());
        assert!(load_network(std::io::Cursor::new(b"dbnet v1\nitems zero\n" as &[u8])).is_err());
    }

    #[test]
    fn rejects_out_of_range_edge() {
        let text = "dbnet v1\nitems 1\ni 0 x\nvertices 2\nedges 1\ne 0 5\nend\n";
        assert!(load_network(std::io::Cursor::new(text.as_bytes())).is_err());
    }
}
