//! Co-author database network generator — the AMINER substitute.
//!
//! The paper builds AMINER from a citation dump: authors are vertices,
//! co-authorship is an edge, and each paper contributes a transaction of
//! its abstract keywords to every author's database. That dump is not
//! available offline, so we generate a network with the same consumed
//! shape: research groups (dense collaboration clusters) whose papers draw
//! keywords from their topic's vocabulary, a few *interdisciplinary*
//! authors belonging to two groups (these produce the overlapping
//! communities of Figure 6), and sparse cross-group collaborations.

use crate::vocab;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tc_core::{DatabaseNetwork, DatabaseNetworkBuilder};
use tc_txdb::Item;

/// Configuration for [`generate_coauthor`].
#[derive(Debug, Clone)]
pub struct CoauthorConfig {
    /// Number of research groups; each uses one topic vocabulary (cycled).
    pub groups: usize,
    /// Authors per group (excluding interdisciplinary extras).
    pub authors_per_group: usize,
    /// Authors belonging to two consecutive groups each.
    pub interdisciplinary_authors: usize,
    /// Papers (transactions) per author.
    pub papers_per_author: usize,
    /// Keywords per paper.
    pub keywords_per_paper: usize,
    /// Probability of an edge between two same-group authors.
    pub collab_prob: f64,
    /// Number of random cross-group collaboration edges.
    pub cross_group_edges: usize,
    /// Probability that a paper carries one generic keyword
    /// ([`vocab::GENERIC_KEYWORDS`]) in addition to its topic keywords —
    /// the diffuse cross-topic co-occurrence real abstracts exhibit.
    pub generic_keyword_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoauthorConfig {
    fn default() -> Self {
        CoauthorConfig {
            groups: 6,
            authors_per_group: 12,
            interdisciplinary_authors: 4,
            papers_per_author: 20,
            keywords_per_paper: 4,
            collab_prob: 0.6,
            cross_group_edges: 10,
            generic_keyword_prob: 0.4,
            seed: 42,
        }
    }
}

/// The generated network plus its provenance (who is who).
#[derive(Debug)]
pub struct CoauthorNetwork {
    /// The database network (vertices = authors).
    pub network: DatabaseNetwork,
    /// `author_names[v]` is the display name of vertex `v`.
    pub author_names: Vec<String>,
    /// For each group: `(topic name, member vertices)`.
    pub groups: Vec<(String, Vec<u32>)>,
}

/// Generates a co-author database network (see module docs).
pub fn generate_coauthor(cfg: &CoauthorConfig) -> CoauthorNetwork {
    assert!(cfg.groups >= 1 && cfg.authors_per_group >= 2);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = DatabaseNetworkBuilder::new();

    // Intern every topic's keywords once, plus the shared generic pool.
    let topic_items: Vec<(String, Vec<Item>)> = (0..cfg.groups)
        .map(|g| {
            let (name, kws) = vocab::TOPICS[g % vocab::TOPICS.len()];
            let items = kws.iter().map(|kw| b.intern_item(kw)).collect();
            (name.to_string(), items)
        })
        .collect();
    let generic_items: Vec<Item> = vocab::GENERIC_KEYWORDS
        .iter()
        .map(|kw| b.intern_item(kw))
        .collect();

    // Assign authors to groups.
    let mut groups: Vec<(String, Vec<u32>)> = topic_items
        .iter()
        .map(|(name, _)| (name.clone(), Vec::new()))
        .collect();
    let mut next_author = 0u32;
    for g in 0..cfg.groups {
        for _ in 0..cfg.authors_per_group {
            groups[g].1.push(next_author);
            next_author += 1;
        }
    }
    // Interdisciplinary authors join group g and g+1.
    for i in 0..cfg.interdisciplinary_authors {
        let g = i % cfg.groups.max(1);
        let g2 = (g + 1) % cfg.groups.max(1);
        groups[g].1.push(next_author);
        if g2 != g {
            groups[g2].1.push(next_author);
        }
        next_author += 1;
    }
    let num_authors = next_author as usize;
    let author_names: Vec<String> = (0..num_authors).map(vocab::person_name).collect();

    // Papers: each author writes papers per group membership; keywords
    // sampled from the group's topic.
    let mut memberships: Vec<Vec<usize>> = vec![Vec::new(); num_authors];
    for (g, (_, members)) in groups.iter().enumerate() {
        for &a in members {
            memberships[a as usize].push(g);
        }
    }
    for (author, member_of) in memberships.iter().enumerate() {
        if member_of.is_empty() {
            continue;
        }
        for paper in 0..cfg.papers_per_author {
            let g = member_of[paper % member_of.len()];
            let pool = &topic_items[g].1;
            let mut kws: Vec<Item> = pool
                .choose_multiple(&mut rng, cfg.keywords_per_paper.min(pool.len()))
                .copied()
                .collect();
            if cfg.generic_keyword_prob > 0.0 && rng.gen_bool(cfg.generic_keyword_prob) {
                kws.push(*generic_items.choose(&mut rng).expect("nonempty"));
            }
            kws.sort_unstable();
            kws.dedup();
            b.add_transaction(author as u32, &kws);
        }
    }

    // Collaboration edges inside groups.
    for (_, members) in &groups {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if members[i] != members[j] && rng.gen_bool(cfg.collab_prob) {
                    b.add_edge(members[i], members[j]);
                }
            }
        }
    }
    // Sparse cross-group edges.
    for _ in 0..cfg.cross_group_edges {
        let u = rng.gen_range(0..num_authors as u32);
        let v = rng.gen_range(0..num_authors as u32);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.ensure_vertex(num_authors as u32 - 1);

    CoauthorNetwork {
        network: b.build().expect("generator uses interned items only"),
        author_names,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::{Miner, TcfiMiner};
    use tc_txdb::Pattern;

    #[test]
    fn shape_matches_config() {
        let cfg = CoauthorConfig::default();
        let out = generate_coauthor(&cfg);
        let expected_authors = cfg.groups * cfg.authors_per_group + cfg.interdisciplinary_authors;
        assert_eq!(out.network.num_vertices(), expected_authors);
        assert_eq!(out.author_names.len(), expected_authors);
        assert_eq!(out.groups.len(), cfg.groups);
        assert!(out.network.num_edges() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_coauthor(&CoauthorConfig::default());
        let b = generate_coauthor(&CoauthorConfig::default());
        assert_eq!(a.network.num_edges(), b.network.num_edges());
        assert_eq!(a.network.stats(), b.network.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_coauthor(&CoauthorConfig::default());
        let b = generate_coauthor(&CoauthorConfig {
            seed: 1,
            ..CoauthorConfig::default()
        });
        // Edge sets almost surely differ.
        assert_ne!(
            a.network.graph().edges().collect::<Vec<_>>(),
            b.network.graph().edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn groups_form_theme_communities() {
        // Mining must recover at least one multi-keyword theme community
        // per... at least somewhere: group members share topic keywords.
        let out = generate_coauthor(&CoauthorConfig {
            groups: 3,
            authors_per_group: 8,
            interdisciplinary_authors: 2,
            papers_per_author: 30,
            keywords_per_paper: 4,
            collab_prob: 0.8,
            cross_group_edges: 2,
            generic_keyword_prob: 0.2,
            seed: 7,
        });
        let result = TcfiMiner { max_len: 2 }.mine(&out.network, 0.05);
        assert!(result.np() > 0, "no trusses found at all");
        let has_pair_theme = result.patterns().iter().any(|p| p.len() == 2);
        assert!(has_pair_theme, "expected at least one 2-keyword theme");
    }

    #[test]
    fn interdisciplinary_authors_span_topics() {
        let cfg = CoauthorConfig::default();
        let out = generate_coauthor(&cfg);
        // The last `interdisciplinary_authors` vertices belong to 2 groups.
        let base = cfg.groups * cfg.authors_per_group;
        for i in 0..cfg.interdisciplinary_authors {
            let v = (base + i) as u32;
            let member_count = out.groups.iter().filter(|(_, m)| m.contains(&v)).count();
            assert_eq!(member_count, 2, "author {v} should span two groups");
        }
    }

    #[test]
    fn keyword_frequencies_positive_for_members() {
        let out = generate_coauthor(&CoauthorConfig::default());
        let net = &out.network;
        // Every group member must have positive frequency on some keyword
        // of its topic.
        for (topic, members) in &out.groups {
            let (_, kws) = vocab::TOPICS
                .iter()
                .find(|(name, _)| name == topic)
                .unwrap();
            for &m in members {
                let any_positive = kws.iter().any(|kw| {
                    net.item_space()
                        .get(kw)
                        .map(|item| net.frequency(m, &Pattern::singleton(item)) > 0.0)
                        .unwrap_or(false)
                });
                assert!(any_positive, "member {m} of {topic} has no topic keyword");
            }
        }
    }
}
