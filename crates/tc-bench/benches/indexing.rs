//! Criterion benches for TC-Tree construction and truss decomposition
//! (the microscopic view of Table 3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tc_bench::{build_dataset, Dataset};
use tc_core::{ThemeNetwork, TrussDecomposition};
use tc_index::TcTreeBuilder;
use tc_txdb::Pattern;

fn bench_decompose(c: &mut Criterion) {
    let net = build_dataset(Dataset::Bk, 0.3);
    let item = net
        .items_in_use()
        .into_iter()
        .max_by_key(|&i| net.vertices_with_item(i).len())
        .expect("network has items");
    let theme = ThemeNetwork::induce(&net, &Pattern::singleton(item));

    c.bench_function("truss_decomposition", |b| {
        b.iter(|| black_box(TrussDecomposition::decompose(&theme).num_levels()))
    });
}

fn bench_tree_build(c: &mut Criterion) {
    let net = build_dataset(Dataset::Bk, 0.2);
    let mut group = c.benchmark_group("tctree_build");
    group.sample_size(10);
    group.bench_function("threads_1", |b| {
        b.iter(|| {
            black_box(
                TcTreeBuilder {
                    threads: 1,
                    max_len: usize::MAX,
                }
                .build(&net)
                .num_nodes(),
            )
        })
    });
    group.bench_function("threads_4", |b| {
        b.iter(|| {
            black_box(
                TcTreeBuilder {
                    threads: 4,
                    max_len: usize::MAX,
                }
                .build(&net)
                .num_nodes(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decompose, bench_tree_build);
criterion_main!(benches);
