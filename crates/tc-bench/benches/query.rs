//! Criterion benches for TC-Tree query answering (the microscopic view of
//! Figure 5): QBA at several thresholds and QBP at several pattern lengths.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tc_bench::{build_dataset, Dataset};
use tc_index::{TcTree, TcTreeBuilder};

fn tree() -> TcTree {
    let net = build_dataset(Dataset::Bk, 0.3);
    TcTreeBuilder::default().build(&net)
}

fn bench_qba(c: &mut Criterion) {
    let tree = tree();
    let mut group = c.benchmark_group("qba");
    for alpha in [0.0, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &a| {
            b.iter(|| black_box(tree.query_by_alpha(a).retrieved_nodes))
        });
    }
    group.finish();
}

fn bench_qbp(c: &mut Criterion) {
    let tree = tree();
    let mut group = c.benchmark_group("qbp");
    for len in 1..=tree.max_depth().min(3) {
        let pool = tree.nodes_at_depth(len);
        let Some(&node) = pool.first() else { continue };
        let q = tree.node(node).pattern.clone();
        group.bench_with_input(BenchmarkId::from_parameter(len), &q, |b, q| {
            b.iter(|| black_box(tree.query_by_pattern(q).retrieved_nodes))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qba, bench_qbp);
criterion_main!(benches);
