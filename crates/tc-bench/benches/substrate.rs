//! Criterion micro-benches for the substrates: bitset intersection
//! (frequency computation), triangle counting, and pattern frequency.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tc_data::graphs::preferential_attachment;
use tc_txdb::{Item, Pattern, TransactionDb};
use tc_util::BitSet;

fn bench_bitset(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset_intersection_count");
    for &universe in &[1_000usize, 10_000, 100_000] {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = BitSet::from_iter(
            universe,
            (0..universe / 4).map(|_| rng.gen_range(0..universe)),
        );
        let b = BitSet::from_iter(
            universe,
            (0..universe / 4).map(|_| rng.gen_range(0..universe)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(universe),
            &universe,
            |bch, _| bch.iter(|| black_box(a.intersection_count(&b))),
        );
    }
    group.finish();
}

fn bench_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle_count");
    for &n in &[500usize, 2_000] {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = preferential_attachment(n, 4, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(tc_graph::count_triangles(&g)))
        });
    }
    group.finish();
}

fn bench_frequency(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    // 2,000 transactions over 50 items, avg 6 items each.
    let transactions: Vec<Vec<Item>> = (0..2_000)
        .map(|_| {
            (0..rng.gen_range(3..10))
                .map(|_| Item(rng.gen_range(0..50)))
                .collect()
        })
        .collect();
    let db = TransactionDb::from_transactions(transactions);
    let p1 = Pattern::singleton(Item(7));
    let p2 = Pattern::new(vec![Item(7), Item(13)]);
    let p4 = Pattern::new(vec![Item(7), Item(13), Item(21), Item(34)]);

    let mut group = c.benchmark_group("pattern_frequency");
    group.bench_function("len1", |b| b.iter(|| black_box(db.frequency(&p1))));
    group.bench_function("len2", |b| b.iter(|| black_box(db.frequency(&p2))));
    group.bench_function("len4", |b| b.iter(|| black_box(db.frequency(&p4))));
    group.finish();
}

criterion_group!(benches, bench_bitset, bench_triangles, bench_frequency);
criterion_main!(benches);
