//! Criterion benches for the mining pipeline: MPTD alone and the three
//! miners end to end (the microscopic view of Figures 3-4).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tc_bench::{build_dataset, Dataset};
use tc_core::{maximal_pattern_truss, Miner, TcfaMiner, TcfiMiner, TcsMiner, ThemeNetwork};
use tc_txdb::Pattern;

/// Serial vs parallel TCFI — the level-internal fan-out (results are
/// asserted identical in the test suite; this measures the wall-clock win).
fn bench_parallel_tcfi(c: &mut Criterion) {
    let net = build_dataset(Dataset::Aminer, 0.5);
    let mut group = c.benchmark_group("tcfi_parallelism");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(TcfiMiner::default().mine(&net, 0.0).np()))
    });
    group.bench_function("threads_4", |b| {
        b.iter(|| black_box(TcfiMiner::default().parallel(4).mine(&net, 0.0).np()))
    });
    group.finish();
}

fn bench_mptd(c: &mut Criterion) {
    let net = build_dataset(Dataset::Bk, 0.3);
    // The densest item's theme network.
    let item = net
        .items_in_use()
        .into_iter()
        .max_by_key(|&i| net.vertices_with_item(i).len())
        .expect("network has items");
    let theme = ThemeNetwork::induce(&net, &Pattern::singleton(item));

    let mut group = c.benchmark_group("mptd");
    group.bench_function("alpha_0", |b| {
        b.iter(|| black_box(maximal_pattern_truss(&theme, 0.0)))
    });
    group.bench_function("alpha_0.5", |b| {
        b.iter(|| black_box(maximal_pattern_truss(&theme, 0.5)))
    });
    group.finish();
}

fn bench_miners(c: &mut Criterion) {
    let net = build_dataset(Dataset::Bk, 0.2);
    let mut group = c.benchmark_group("miners_bk_small");
    group.sample_size(10);
    group.bench_function("tcfi_alpha_0.3", |b| {
        b.iter(|| black_box(TcfiMiner::default().mine(&net, 0.3).np()))
    });
    group.bench_function("tcfa_alpha_0.3", |b| {
        b.iter(|| black_box(TcfaMiner::default().mine(&net, 0.3).np()))
    });
    group.bench_function("tcs02_alpha_0.3", |b| {
        b.iter(|| black_box(TcsMiner::with_epsilon(0.2).mine(&net, 0.3).np()))
    });
    group.finish();
}

/// Ablation: the index-accelerated theme-network induction vs the paper's
/// literal full-scan induction (Algorithm 3 line 6). Quantifies the design
/// decision recorded in DESIGN.md §4 ("Baseline fidelity") — the shortcut
/// the TCFA/TCS baselines are deliberately denied.
fn bench_induction_ablation(c: &mut Criterion) {
    let net = build_dataset(Dataset::Gw, 0.5);
    let item = net
        .items_in_use()
        .into_iter()
        .max_by_key(|&i| net.vertices_with_item(i).len())
        .expect("network has items");
    let p = Pattern::singleton(item);

    let mut group = c.benchmark_group("theme_induction");
    group.bench_function("index_accelerated", |b| {
        b.iter(|| black_box(ThemeNetwork::induce(&net, &p).num_edges()))
    });
    group.bench_function("full_scan", |b| {
        b.iter(|| black_box(ThemeNetwork::induce_scan(&net, &p).num_edges()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mptd,
    bench_miners,
    bench_induction_ablation,
    bench_parallel_tcfi
);
criterion_main!(benches);
